//! Unit tests: bucket edges, quantiles, snapshot shape, and the
//! enabled/disabled contract. Tests that flip the global flag or touch the
//! shared probe table serialize on [`LOCK`].

use super::*;
use std::sync::Mutex;

/// Serializes tests that mutate global telemetry state.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn bucket_index_edges() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    // Every power of two starts its own bucket; its predecessor closes the
    // previous one.
    for k in 1..64u32 {
        let p = 1u64 << k;
        assert_eq!(bucket_index(p), k as usize + 1, "2^{k}");
        assert_eq!(bucket_index(p - 1), k as usize, "2^{k}-1");
    }
    assert_eq!(bucket_index(u64::MAX), 64);
    assert!(bucket_index(u64::MAX) < HISTOGRAM_BUCKETS);
}

#[test]
fn bucket_bounds_partition_u64() {
    assert_eq!(bucket_bounds(0), (0, Some(1)));
    assert_eq!(bucket_bounds(1), (1, Some(2)));
    assert_eq!(bucket_bounds(64), (1u64 << 63, None));
    // Consecutive buckets tile the line with no gap or overlap.
    for i in 0..HISTOGRAM_BUCKETS - 1 {
        let (_, hi) = bucket_bounds(i);
        let (lo_next, _) = bucket_bounds(i + 1);
        assert_eq!(hi, Some(lo_next), "bucket {i}");
    }
    // Values land inside their own bucket's bounds.
    for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        assert!(v >= lo, "{v} >= {lo}");
        if let Some(hi) = hi {
            assert!(v < hi, "{v} < {hi}");
        }
    }
}

#[test]
fn histogram_records_edges_and_stats() {
    let _g = lock();
    reset();
    let _e = EnabledGuard::new();
    let h = &probes::GRAPH_COMPONENT_BK_NS;
    for v in [0u64, 1, 1, 2, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let snap = snapshot();
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "graph.component_bk_ns")
        .unwrap();
    assert_eq!(hs.count, 7);
    assert_eq!(hs.min, 0);
    assert_eq!(hs.max, u64::MAX);
    let by_bucket: std::collections::HashMap<usize, u64> = hs.buckets.iter().copied().collect();
    assert_eq!(by_bucket[&bucket_index(0)], 1);
    assert_eq!(by_bucket[&bucket_index(1)], 2);
    assert_eq!(by_bucket[&bucket_index(1023)], 1, "1023 in bucket 10");
    assert_eq!(by_bucket[&bucket_index(1024)], 1, "1024 in bucket 11");
    assert_eq!(by_bucket[&bucket_index(u64::MAX)], 1);
    reset();
}

#[test]
fn quantiles_come_from_bucket_upper_bounds() {
    let snap = HistogramSnapshot {
        name: "t",
        count: 100,
        sum: 0,
        min: 1,
        max: 700,
        // 50 samples in [1,2), 49 in [512,1024), 1 in [1024, 2048).
        buckets: vec![(1, 50), (10, 49), (11, 1)],
    };
    assert_eq!(snap.quantile(50), 1); // 50th sample closes bucket 1
    assert_eq!(snap.quantile(51), 1023);
    assert_eq!(snap.quantile(99), 1023);
    assert_eq!(snap.quantile(100), 2047);
    let empty = HistogramSnapshot {
        name: "e",
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        buckets: vec![],
    };
    assert_eq!(empty.quantile(50), 0);
    assert_eq!(empty.mean(), 0);
}

#[test]
fn disabled_probes_record_nothing() {
    let _g = lock();
    reset();
    set_enabled(false);
    probes::GRAPH_CLIQUES_EMITTED.add(7);
    probes::MONITOR_EPOCH.set(9);
    probes::CORE_PHASE_ENUMERATION_NS.record(123);
    let s = probes::CORE_PHASE_ENUMERATION_NS.span();
    drop(s);
    assert_eq!(probes::GRAPH_CLIQUES_EMITTED.get(), 0);
    assert_eq!(probes::MONITOR_EPOCH.get(), 0);
    assert_eq!(snapshot().active_probes(), 0);
}

#[test]
fn enabled_guard_scopes_recording() {
    let _g = lock();
    reset();
    set_enabled(false);
    {
        let _e = EnabledGuard::new();
        assert!(enabled());
        probes::GRAPH_CLIQUES_EMITTED.incr();
        probes::GOVERNOR_DEGRADATION_RUNG.fetch_max(2);
        probes::GOVERNOR_DEGRADATION_RUNG.fetch_max(1);
    }
    assert!(!enabled());
    assert_eq!(probes::GRAPH_CLIQUES_EMITTED.get(), 1);
    assert_eq!(probes::GOVERNOR_DEGRADATION_RUNG.get(), 2);
    reset();
}

#[test]
fn span_measures_elapsed_time() {
    let _g = lock();
    reset();
    let _e = EnabledGuard::new();
    {
        let s = probes::MONITOR_APPLY_NS.span();
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.finish();
    }
    let snap = snapshot();
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "monitor.apply_ns")
        .unwrap();
    assert_eq!(hs.count, 1);
    assert!(hs.sum >= 2_000_000, "slept 2ms, recorded {}ns", hs.sum);
    reset();
}

#[test]
fn snapshot_json_and_table_render() {
    let _g = lock();
    reset();
    let _e = EnabledGuard::new();
    probes::QUERY_TUPLES_SCANNED.add(41);
    probes::CORE_PHASE_WORLD_CHECKS_NS.record(1500);
    let snap = snapshot();
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"query.tuples_scanned\":41"));
    assert!(json.contains("\"core.phase.world_checks_ns\":{\"count\":1"));
    // Every registered probe appears, fired or not.
    for c in probes::COUNTERS {
        assert!(json.contains(&format!("\"{}\":", c.name())), "{}", c.name());
    }
    // The solver-session probes must be registered and serialized so
    // `bcdb check --telemetry` and the bench report always carry them.
    for name in ["core.solver.clique_reuse", "core.solver.batch_constraints"] {
        assert!(json.contains(&format!("\"{name}\":")), "{name} missing");
    }
    let table = snap.render_table();
    assert!(table.contains("core.phase.world_checks_ns"));
    assert!(table.contains("query.tuples_scanned"));
    assert!(!table.contains("graph.cliques_emitted"), "zero probes hidden");
    reset();
}

#[test]
fn registry_names_are_unique_and_follow_the_scheme() {
    let mut names: Vec<&str> = probes::COUNTERS
        .iter()
        .map(|c| c.name())
        .chain(probes::GAUGES.iter().map(|g| g.name()))
        .chain(probes::HISTOGRAMS.iter().map(|h| h.name()))
        .collect();
    assert!(names.len() >= 12, "probe floor: {}", names.len());
    for n in &names {
        let crate_prefix = n.split('.').next().unwrap();
        assert!(
            ["graph", "query", "core", "governor", "monitor", "storage", "server"]
                .contains(&crate_prefix),
            "probe {n} must be <crate>.<metric>"
        );
    }
    for h in probes::HISTOGRAMS {
        assert!(h.name().ends_with("_ns"), "{} is a latency probe", h.name());
    }
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate probe names");
}

#[test]
fn counters_sum_identically_across_thread_interleavings() {
    let _g = lock();
    reset();
    let _e = EnabledGuard::new();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    probes::GRAPH_CLIQUES_EMITTED.incr();
                    probes::GRAPH_COMPONENT_BK_NS.record(8);
                }
            });
        }
    });
    assert_eq!(probes::GRAPH_CLIQUES_EMITTED.get(), 40_000);
    let snap = snapshot();
    let hs = snap
        .histograms
        .iter()
        .find(|h| h.name == "graph.component_bk_ns")
        .unwrap();
    assert_eq!(hs.count, 40_000);
    assert_eq!(hs.sum, 320_000);
    assert_eq!(hs.buckets, vec![(4, 40_000)]);
    reset();
}
