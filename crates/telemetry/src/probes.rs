//! The central probe table.
//!
//! Every probe in the workspace is declared here so snapshots are complete
//! and deterministically ordered, and so call sites across crates never
//! race on registration. To add a probe: declare the static, add it to the
//! matching registry slice below, then call it from the instrumented site
//! (see the DESIGN.md telemetry section for the naming scheme).

use crate::{Counter, Gauge, Histogram};

// ---- bcdb-graph: Bron–Kerbosch clique enumeration ----

/// Maximal cliques emitted by the governed enumerator.
pub static GRAPH_CLIQUES_EMITTED: Counter = Counter::new("graph.cliques_emitted");
/// Intra-component subproblems split off for the two-level scheduler.
pub static GRAPH_SUBPROBLEMS_SPAWNED: Counter = Counter::new("graph.subproblems_spawned");
/// Candidate vertices skipped because they neighbour the Tomita pivot.
pub static GRAPH_PIVOT_CANDIDATES_PRUNED: Counter = Counter::new("graph.pivot_candidates_pruned");
/// Work units claimed from another worker's deque by the stealing scheduler.
pub static GRAPH_STEAL_COUNT: Counter = Counter::new("graph.steal_count");
/// 64-bit words scanned by the fused AND+popcount enumeration kernels.
pub static GRAPH_KERNEL_WORDS_SCANNED: Counter = Counter::new("graph.kernel_words_scanned");
/// Wall time of one component's (or subproblem's) clique enumeration.
pub static GRAPH_COMPONENT_BK_NS: Histogram = Histogram::new("graph.component_bk_ns");

// ---- bcdb-query: world evaluation ----

/// Boolean query evaluations (one per candidate world checked).
pub static QUERY_WORLDS_EVALUATED: Counter = Counter::new("query.worlds_evaluated");
/// World evaluations answered through a delta-seeded plan.
pub static QUERY_DELTA_SEEDED_EVALS: Counter = Counter::new("query.delta_seeded_evals");
/// World evaluations that had to scan from scratch.
pub static QUERY_COLD_EVALS: Counter = Counter::new("query.cold_evals");
/// Tuples inspected by the join recursion.
pub static QUERY_TUPLES_SCANNED: Counter = Counter::new("query.tuples_scanned");
/// θ-comparisons that failed and cut a join branch.
pub static QUERY_CMP_SHORT_CIRCUITS: Counter = Counter::new("query.cmp_short_circuits");

// ---- bcdb-core: DCSat phases ----

/// GfTd precompute (conflict graph + FD caches) wall time.
pub static CORE_PHASE_PRECOMPUTE_NS: Histogram = Histogram::new("core.phase.precompute_ns");
/// Θq equality derivation + Gq,ind component split wall time.
pub static CORE_PHASE_THETA_NS: Histogram = Histogram::new("core.phase.theta_ns");
/// Constant-cover construction wall time.
pub static CORE_PHASE_COVERS_NS: Histogram = Histogram::new("core.phase.covers_ns");
/// Clique/world enumeration wall time (drive loop).
pub static CORE_PHASE_ENUMERATION_NS: Histogram = Histogram::new("core.phase.enumeration_ns");
/// Per-world constraint check wall time.
pub static CORE_PHASE_WORLD_CHECKS_NS: Histogram = Histogram::new("core.phase.world_checks_ns");
/// Base-verdict cache hits (epoch-tagged hint supplied by the monitor).
pub static CORE_BASE_CACHE_HITS: Counter = Counter::new("core.base_cache_hits");
/// Monotone prechecks that settled the verdict without enumeration.
pub static CORE_PRECHECK_SHORT_CIRCUITS: Counter = Counter::new("core.precheck_short_circuits");
/// Component clique enumerations answered from the batch solver's
/// component-keyed clique cache instead of a fresh Bron–Kerbosch run.
pub static CORE_SOLVER_CLIQUE_REUSE: Counter = Counter::new("core.solver.clique_reuse");
/// Denial constraints submitted through `Solver::check_batch`.
pub static CORE_SOLVER_BATCH_CONSTRAINTS: Counter = Counter::new("core.solver.batch_constraints");
/// Checks answered outright from a shared cache's generation-checked
/// definite-verdict memo (duplicate constraint shapes within one frozen
/// state).
pub static CORE_SOLVER_VERDICT_MEMO: Counter = Counter::new("core.solver.verdict_memo");

// ---- bcdb-governor: budgets and degradation ----

/// Deadline-check ticks consumed across all governed loops.
pub static GOVERNOR_TICKS: Counter = Counter::new("governor.ticks");
/// Tuples charged against budgets.
pub static GOVERNOR_TUPLES_CHARGED: Counter = Counter::new("governor.tuples_charged");
/// Degradation-ladder rung transitions taken after exhaustion.
pub static GOVERNOR_DEGRADATION_TRANSITIONS: Counter =
    Counter::new("governor.degradation_transitions");
/// Deepest degradation rung reached (1-based; 0 = never degraded).
pub static GOVERNOR_DEGRADATION_RUNG: Gauge = Gauge::new("governor.degradation_rung");
/// Retry attempts issued by `RetryPolicy::run`.
pub static GOVERNOR_RETRY_ATTEMPTS: Counter = Counter::new("governor.retry_attempts");

// ---- bcdb-storage: durable snapshots and recovery ----

/// One epoch-snapshot file write (encode + section writes + sync).
pub static STORAGE_SNAPSHOT_WRITE_NS: Histogram = Histogram::new("storage.snapshot_write_ns");
/// Snapshot files persisted.
pub static STORAGE_SNAPSHOTS_PERSISTED: Counter = Counter::new("storage.snapshots_persisted");
/// Bytes written into snapshot files.
pub static STORAGE_SNAPSHOT_BYTES_WRITTEN: Counter =
    Counter::new("storage.snapshot_bytes_written");
/// Unified recovery wall time: journal scan + snapshot load + tail replay.
pub static STORAGE_RECOVERY_NS: Histogram = Histogram::new("storage.recovery_ns");
/// Journal records replayed after the newest loadable snapshot boundary —
/// the WAL tail that bounds cold-start cost.
pub static STORAGE_WAL_TAIL_RECORDS: Gauge = Gauge::new("storage.wal_tail_records");

// ---- bcdb-server: the multi-tenant serving layer ----

/// Live subscriptions across all tenants (admission-controlled).
pub static SERVER_SUBSCRIPTIONS_ACTIVE: Gauge = Gauge::new("server.subscriptions_active");
/// Ingest-to-flip latency: time from a chain event entering the server to
/// a subscription's verdict flip being enqueued for notification.
pub static SERVER_FLIP_LATENCY_NS: Histogram = Histogram::new("server.flip_latency_ns");
/// Work units downgraded by overload shedding (budget reduced along the
/// degradation ladder) plus notifications coalesced by full queues.
pub static SERVER_SHED_TOTAL: Counter = Counter::new("server.shed_total");
/// Re-checks refused because the owning tenant's fair-share budget
/// envelope for the round was already spent (the refusal is per-tenant:
/// other tenants' checks proceed untouched).
pub static SERVER_TENANT_BUDGET_EXHAUSTED: Counter =
    Counter::new("server.tenant_budget_exhausted");
/// Per-check reuse answered from the server's shared enumeration cache —
/// replayed component enumerations plus memoized definite verdicts.
pub static SERVER_CACHE_HITS: Counter = Counter::new("server.cache_hits");
/// Shared-cache entries dropped by targeted (delta-driven) invalidation.
pub static SERVER_CACHE_INVALIDATIONS: Counter = Counter::new("server.cache_invalidations");
/// Worker threads used by the most recent parallel round execution.
pub static SERVER_ROUND_PARALLEL_WORKERS: Gauge = Gauge::new("server.round_parallel_workers");

// ---- bcdb-monitor: epochs and the journal ----

/// Incremental event-apply wall time (TxArrived/TxEvicted).
pub static MONITOR_APPLY_NS: Histogram = Histogram::new("monitor.apply_ns");
/// Snapshot-rebuild wall time (TxMined/Reorg).
pub static MONITOR_REBUILD_NS: Histogram = Histogram::new("monitor.rebuild_ns");
/// Journal record append (write + flush) wall time.
pub static MONITOR_JOURNAL_APPEND_NS: Histogram = Histogram::new("monitor.journal_append_ns");
/// Journal recovery (full replay scan) wall time.
pub static MONITOR_JOURNAL_REPLAY_NS: Histogram = Histogram::new("monitor.journal_replay_ns");
/// Latest chain epoch observed by the monitor.
pub static MONITOR_EPOCH: Gauge = Gauge::new("monitor.epoch");

/// Every counter, in snapshot order.
pub static COUNTERS: &[&Counter] = &[
    &GRAPH_CLIQUES_EMITTED,
    &GRAPH_SUBPROBLEMS_SPAWNED,
    &GRAPH_PIVOT_CANDIDATES_PRUNED,
    &GRAPH_STEAL_COUNT,
    &GRAPH_KERNEL_WORDS_SCANNED,
    &QUERY_WORLDS_EVALUATED,
    &QUERY_DELTA_SEEDED_EVALS,
    &QUERY_COLD_EVALS,
    &QUERY_TUPLES_SCANNED,
    &QUERY_CMP_SHORT_CIRCUITS,
    &CORE_BASE_CACHE_HITS,
    &CORE_PRECHECK_SHORT_CIRCUITS,
    &CORE_SOLVER_CLIQUE_REUSE,
    &CORE_SOLVER_BATCH_CONSTRAINTS,
    &CORE_SOLVER_VERDICT_MEMO,
    &GOVERNOR_TICKS,
    &GOVERNOR_TUPLES_CHARGED,
    &GOVERNOR_DEGRADATION_TRANSITIONS,
    &GOVERNOR_RETRY_ATTEMPTS,
    &STORAGE_SNAPSHOTS_PERSISTED,
    &STORAGE_SNAPSHOT_BYTES_WRITTEN,
    &SERVER_SHED_TOTAL,
    &SERVER_TENANT_BUDGET_EXHAUSTED,
    &SERVER_CACHE_HITS,
    &SERVER_CACHE_INVALIDATIONS,
];

/// Every gauge, in snapshot order.
pub static GAUGES: &[&Gauge] = &[
    &GOVERNOR_DEGRADATION_RUNG,
    &STORAGE_WAL_TAIL_RECORDS,
    &MONITOR_EPOCH,
    &SERVER_SUBSCRIPTIONS_ACTIVE,
    &SERVER_ROUND_PARALLEL_WORKERS,
];

/// Every histogram, in snapshot order.
pub static HISTOGRAMS: &[&Histogram] = &[
    &GRAPH_COMPONENT_BK_NS,
    &CORE_PHASE_PRECOMPUTE_NS,
    &CORE_PHASE_THETA_NS,
    &CORE_PHASE_COVERS_NS,
    &CORE_PHASE_ENUMERATION_NS,
    &CORE_PHASE_WORLD_CHECKS_NS,
    &STORAGE_SNAPSHOT_WRITE_NS,
    &STORAGE_RECOVERY_NS,
    &MONITOR_APPLY_NS,
    &MONITOR_REBUILD_NS,
    &MONITOR_JOURNAL_APPEND_NS,
    &MONITOR_JOURNAL_REPLAY_NS,
    &SERVER_FLIP_LATENCY_NS,
];
