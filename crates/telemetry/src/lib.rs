//! Zero-dependency telemetry for the DCSat pipeline.
//!
//! The registry is a fixed, centrally declared probe table (see
//! [`probes`]): counters, gauges, and log-scale latency histograms, each a
//! `static` built from atomics so hot loops never take a lock. Telemetry is
//! **off by default**; every probe starts with a single relaxed atomic load
//! of the global enable flag and returns immediately when disabled. With the
//! `off` cargo feature the flag check becomes a constant `false` and the
//! optimizer deletes the probes outright.
//!
//! Reading happens through [`snapshot`], which walks the probe table in
//! declaration order (deterministic, including under parallel solvers — the
//! counters are plain atomic adds, so any interleaving sums to the same
//! totals). The snapshot renders to JSON ([`TelemetrySnapshot::to_json`])
//! for BENCH_dcsat.json and friends, and to an aligned phase table
//! ([`TelemetrySnapshot::render_table`]) for `--telemetry` runs.
//!
//! Probe naming: `<crate>.<metric>` for counters and gauges
//! (`graph.cliques_emitted`), `<crate>.phase.<phase>_ns` for phase timers
//! (`core.phase.enumeration_ns`), plain `<crate>.<metric>_ns` for other
//! latency histograms. To add a probe: declare the static in [`probes`],
//! append it to the matching registry slice (`COUNTERS`, `GAUGES`, or
//! `HISTOGRAMS`), and call it from the instrumented site.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub mod probes;

/// The global enable flag. All probes consult this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry currently recording?
///
/// This is the entire disabled-path cost of a probe: one relaxed atomic
/// load. With the `off` feature it is a constant `false`.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        false
    } else {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns recording on or off. Has no effect under the `off` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing event count.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter; declare these as `static`s in [`probes`].
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The probe name (`<crate>.<metric>`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events if telemetry is enabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event if telemetry is enabled.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins level (e.g. the current degradation rung).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A new gauge; declare these as `static`s in [`probes`].
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The probe name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records the current level if telemetry is enabled.
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is below it (enabled only).
    #[inline(always)]
    pub fn fetch_max(&self, v: u64) {
        if enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The last recorded level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Bucket count: slot 0 holds exact zeros, slot `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, so every `u64` has a home (`u64::MAX` lands in 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in nanoseconds by
/// convention for probes named `*_ns`).
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// The bucket a sample falls into: 0 for 0, else `ilog2 + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// The half-open `[lo, hi)` range bucket `i` covers (`hi = None` means the
/// bucket is unbounded above, which only happens for the last one).
pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
    if i == 0 {
        (0, Some(1))
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { None } else { Some(1u64 << i) };
        (lo, hi)
    }
}

impl Histogram {
    /// A new histogram; declare these as `static`s in [`probes`].
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// The probe name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample if telemetry is enabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_always(v);
    }

    fn record_always(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a span whose elapsed nanoseconds land in this histogram when
    /// the guard drops. Disabled telemetry pays one atomic load and takes
    /// no clock reading.
    #[inline(always)]
    pub fn span(&'static self) -> Span {
        Span {
            hist: self,
            start: if enabled() { Some(Instant::now()) } else { None },
        }
    }

    /// Like [`Histogram::span`], but the recorded duration *excludes* any
    /// nanoseconds that accrue to `inner` while the guard is live. Phase
    /// tables want disjoint phases that sum to the run's wall clock; a
    /// plain span around a loop whose body opens `inner` spans would count
    /// that nested time twice. With concurrent workers feeding `inner` the
    /// subtraction is an approximation (it saturates at zero).
    #[inline(always)]
    pub fn span_excluding(&'static self, inner: &'static Histogram) -> ExclusiveSpan {
        ExclusiveSpan {
            hist: self,
            inner,
            start: if enabled() {
                Some((Instant::now(), inner.sum.load(Ordering::Relaxed)))
            } else {
                None
            },
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A live timing guard from [`Histogram::span`].
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Stops the span early (otherwise it stops when dropped).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // The flag may have flipped mid-span; record anyway so spans
            // opened while enabled are never lost.
            self.hist
                .record_always(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// A live timing guard from [`Histogram::span_excluding`].
pub struct ExclusiveSpan {
    hist: &'static Histogram,
    inner: &'static Histogram,
    start: Option<(Instant, u64)>,
}

impl ExclusiveSpan {
    /// Stops the span early (otherwise it stops when dropped).
    pub fn finish(self) {}
}

impl Drop for ExclusiveSpan {
    fn drop(&mut self) {
        if let Some((start, inner0)) = self.start {
            let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let nested = self.inner.sum.load(Ordering::Relaxed).saturating_sub(inner0);
            self.hist.record_always(elapsed.saturating_sub(nested));
        }
    }
}

/// Zeroes every probe in the registry. Call before a measured run so the
/// snapshot covers exactly that run.
pub fn reset() {
    for c in probes::COUNTERS {
        c.reset();
    }
    for g in probes::GAUGES {
        g.reset();
    }
    for h in probes::HISTOGRAMS {
        h.reset();
    }
}

/// A point-in-time copy of one counter or gauge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalarSnapshot {
    /// Probe name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Probe name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in 0..=100); 0 when empty. Log-bucketed, so this is an
    /// order-of-magnitude estimate, which is what phase tables need.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q).div_ceil(100).max(1);
        let mut seen = 0;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return hi.map(|h| h - 1).unwrap_or(lo);
            }
        }
        self.max
    }
}

/// Everything the registry held at one instant, in declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// All counters, including zero ones.
    pub counters: Vec<ScalarSnapshot>,
    /// All gauges, including zero ones.
    pub gauges: Vec<ScalarSnapshot>,
    /// All histograms, including empty ones.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Reads the whole probe table.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: probes::COUNTERS
            .iter()
            .map(|c| ScalarSnapshot {
                name: c.name(),
                value: c.get(),
            })
            .collect(),
        gauges: probes::GAUGES
            .iter()
            .map(|g| ScalarSnapshot {
                name: g.name(),
                value: g.get(),
            })
            .collect(),
        histograms: probes::HISTOGRAMS
            .iter()
            .map(|h| {
                let count = h.count.load(Ordering::Relaxed);
                HistogramSnapshot {
                    name: h.name(),
                    count,
                    sum: h.sum.load(Ordering::Relaxed),
                    min: if count == 0 {
                        0
                    } else {
                        h.min.load(Ordering::Relaxed)
                    },
                    max: h.max.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i, n))
                        })
                        .collect(),
                }
            })
            .collect(),
    }
}

impl TelemetrySnapshot {
    /// Named probes that actually fired (non-zero counters and gauges,
    /// non-empty histograms).
    pub fn active_probes(&self) -> usize {
        self.counters.iter().filter(|c| c.value > 0).count()
            + self.gauges.iter().filter(|g| g.value > 0).count()
            + self.histograms.iter().filter(|h| h.count > 0).count()
    }

    /// Renders the snapshot as one JSON object (probe names are static
    /// identifiers, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name, c.value));
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", g.name, g.value));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                h.name,
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(50),
                h.quantile(99),
            ));
            for (j, &(b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let (lo, _) = bucket_bounds(b);
                out.push_str(&format!("[{lo},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders a human-readable table: phase timings first, then event
    /// counters, skipping probes that never fired.
    pub fn render_table(&self) -> String {
        fn ns(v: u64) -> String {
            if v >= 1_000_000_000 {
                format!("{:.2}s", v as f64 / 1e9)
            } else if v >= 1_000_000 {
                format!("{:.2}ms", v as f64 / 1e6)
            } else if v >= 1_000 {
                format!("{:.1}us", v as f64 / 1e3)
            } else {
                format!("{v}ns")
            }
        }
        let mut out = String::new();
        let hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "phase", "count", "total", "mean", "p50", "p99"
            ));
            for h in hists {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    h.name,
                    h.count,
                    ns(h.sum),
                    ns(h.mean()),
                    ns(h.quantile(50)),
                    ns(h.quantile(99)),
                ));
            }
        }
        let scalars: Vec<_> = self
            .counters
            .iter()
            .filter(|c| c.value > 0)
            .chain(self.gauges.iter().filter(|g| g.value > 0))
            .collect();
        if !scalars.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<32} {:>12}\n", "counter", "value"));
            for s in scalars {
                out.push_str(&format!("{:<32} {:>12}\n", s.name, s.value));
            }
        }
        if out.is_empty() {
            out.push_str("(no probes fired)\n");
        }
        out
    }
}

/// RAII guard: enables telemetry on creation, restores the previous state
/// on drop. Lets tests and CLI runs scope recording without global leaks.
pub struct EnabledGuard {
    was: bool,
}

impl EnabledGuard {
    /// Enables telemetry until the guard drops.
    #[allow(clippy::new_without_default)]
    pub fn new() -> EnabledGuard {
        let was = enabled();
        set_enabled(true);
        EnabledGuard { was }
    }
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        set_enabled(self.was);
    }
}

#[cfg(test)]
mod tests;
