//! Property tests for the WAL codec: the chain-event text encoding and
//! the v2 journal's append/recover cycle, including single-byte tail
//! corruption (recovery must surface exactly a prefix of what was
//! appended — never an invented or mutated record) and the tail-surgery
//! helpers used by the soak harness.
//!
//! Failing cases persist their seeds to `proptest-regressions/` (see the
//! vendored proptest's crate docs); pin a run with `PROPTEST_SEED`.

use bcdb_monitor::{ChainEvent, Journal, JournalRecord, Recovery};
use bcdb_storage::{Tuple, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh journal path per case: recovery truncates files in place, so
/// cases must never share one.
fn scratch_journal() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/monitor-scratch/journal-props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case-{}-{}.journal",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Names that stress the percent-encoded line framing: spaces, percent
/// signs, newlines, separators, non-ASCII.
fn name_strat() -> impl Strategy<Value = String> {
    prop_oneof![
        (0..50usize).prop_map(|i| format!("tx{i}")),
        (0..8usize).prop_map(|i| format!("tx {i} 100% bad\nname|;")),
        Just("päivä 🌑".to_string()),
        Just(String::new()),
    ]
}

fn tuple_strat() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(
        prop_oneof![
            (-100..100i64).prop_map(Value::Int),
            (0..4usize).prop_map(|i| Value::text(format!("v {i}%"))),
            prop::bool::ANY.prop_map(Value::Bool),
        ],
        0..3,
    )
    .prop_map(Tuple::new)
}

fn named_tuples() -> impl Strategy<Value = Vec<(String, Tuple)>> {
    prop::collection::vec(
        ((0..3usize).prop_map(|r| format!("R{r}")), tuple_strat()),
        0..3,
    )
}

fn named_pending() -> impl Strategy<Value = Vec<(String, Vec<(String, Tuple)>)>> {
    prop::collection::vec((name_strat(), named_tuples()), 0..2)
}

fn event_strat() -> impl Strategy<Value = ChainEvent> {
    prop_oneof![
        (name_strat(), named_tuples())
            .prop_map(|(name, tuples)| ChainEvent::TxArrived { name, tuples }),
        name_strat().prop_map(|name| ChainEvent::TxEvicted { name }),
        (
            prop::collection::vec(name_strat(), 0..3),
            named_tuples(),
            named_pending()
        )
            .prop_map(|(mined, base, pending)| ChainEvent::TxMined {
                mined,
                base,
                pending
            }),
        (0..4u64, named_tuples(), named_pending())
            .prop_map(|(depth, base, pending)| ChainEvent::Reorg {
                depth,
                base,
                pending
            }),
    ]
}

/// One appended step: an event, optionally followed by a snapshot
/// boundary record (as the monitor writes after persisting a snapshot).
fn script_strat() -> impl Strategy<Value = Vec<(ChainEvent, bool)>> {
    prop::collection::vec((event_strat(), prop::bool::ANY), 1..8)
}

/// Appends the script to a fresh journal, returning the path and the
/// records recovery is expected to surface.
fn write_script(script: &[(ChainEvent, bool)]) -> (PathBuf, Vec<JournalRecord>) {
    let path = scratch_journal();
    let mut journal = Journal::create(&path).unwrap();
    let mut epoch = 0u64;
    let mut expected = Vec::new();
    for (i, (ev, boundary)) in script.iter().enumerate() {
        let seq = journal.append(epoch, ev).unwrap();
        assert_eq!(seq as usize, expected.len());
        expected.push(JournalRecord {
            seq,
            epoch,
            entry: bcdb_monitor::JournalEntry::Event(ev.clone()),
        });
        if ev.advances_epoch() {
            epoch += 1;
        }
        if *boundary {
            let id = format!("snap-{i:08}.bcs");
            let seq = journal.append_snapshot_boundary(epoch, &id).unwrap();
            expected.push(JournalRecord {
                seq,
                epoch,
                entry: bcdb_monitor::JournalEntry::SnapshotBoundary { snapshot: id },
            });
        }
    }
    (path, expected)
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
}

/// Where the journal's record area begins (just past the header line).
fn header_end(path: &PathBuf) -> usize {
    let bytes = std::fs::read(path).unwrap();
    bytes.iter().position(|&b| b == b'\n').unwrap() + 1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The single-line text codec round-trips every event, however
    /// hostile its names are to the space-delimited framing.
    #[test]
    fn event_text_codec_roundtrips(ev in event_strat()) {
        let line = ev.encode();
        prop_assert!(!line.contains('\n'), "encoding must stay one line: {line:?}");
        let back = ChainEvent::decode(&line).expect("encoded event decodes");
        prop_assert_eq!(back, ev);
    }

    /// A cleanly written journal recovers exactly what was appended —
    /// sequence numbers, epochs, entries — with nothing dropped.
    #[test]
    fn journal_roundtrips_cleanly(script in script_strat()) {
        let (path, expected) = write_script(&script);
        let Recovery { journal, records, dropped_bytes, dropped_lines } =
            Journal::recover(&path).unwrap();
        prop_assert_eq!(dropped_bytes, 0);
        prop_assert_eq!(dropped_lines, 0);
        prop_assert_eq!(&records, &expected);
        prop_assert_eq!(journal.next_seq(), expected.len() as u64);
        cleanup(&path);
    }

    /// Flipping one byte anywhere in the record area surfaces a strict
    /// prefix of the appended records: the damaged record and everything
    /// after it are dropped, and what survives is byte-for-byte what was
    /// written. A second recovery of the truncated file is then clean.
    #[test]
    fn corrupted_tail_recovers_to_a_strict_prefix(
        script in script_strat(),
        offset in 0..1_000_000usize,
        flip in 1..256usize,
    ) {
        let (path, expected) = write_script(&script);
        let start = header_end(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = start + offset % (bytes.len() - start);
        bytes[pos] ^= flip as u8;
        std::fs::write(&path, &bytes).unwrap();

        let rec = Journal::recover(&path).unwrap();
        let surviving = rec.records.len();
        prop_assert!(surviving < expected.len(),
            "flip at {} must cost at least one record", pos);
        prop_assert_eq!(&rec.records[..], &expected[..surviving]);
        prop_assert!(rec.dropped_bytes > 0 || rec.dropped_lines > 0);
        drop(rec);

        // Recovery truncated the damage away: a second pass is clean and
        // sees the identical prefix.
        let again = Journal::recover(&path).unwrap();
        prop_assert_eq!(again.dropped_bytes, 0);
        prop_assert_eq!(again.dropped_lines, 0);
        prop_assert_eq!(&again.records[..], &expected[..surviving]);
        cleanup(&path);
    }

    /// `tear_last_record` (the soak harness's fault injector) always
    /// leaves a journal that recovers to a strict prefix, whatever the
    /// keep length.
    #[test]
    fn torn_journals_recover_to_a_prefix(script in script_strat(), keep in 0..64usize) {
        let (path, expected) = write_script(&script);
        let removed = bcdb_monitor::tear_last_record(&path, keep as u64).unwrap();
        let rec = Journal::recover(&path).unwrap();
        prop_assert!(rec.records.len() <= expected.len());
        prop_assert_eq!(&rec.records[..], &expected[..rec.records.len()]);
        if removed > 0 {
            prop_assert!(rec.records.len() < expected.len());
        }
        cleanup(&path);
    }

    /// `drop_tail_records(n)` sheds at most `n` whole records and the
    /// survivors recover cleanly.
    #[test]
    fn dropped_tails_recover_to_a_prefix(script in script_strat(), n in 0..6usize) {
        let (path, expected) = write_script(&script);
        bcdb_monitor::drop_tail_records(&path, n).unwrap();
        let rec = Journal::recover(&path).unwrap();
        prop_assert_eq!(rec.dropped_bytes, 0);
        prop_assert!(expected.len() - rec.records.len() <= n);
        prop_assert_eq!(&rec.records[..], &expected[..rec.records.len()]);
        cleanup(&path);
    }
}
