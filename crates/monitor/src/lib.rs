//! # bcdb-monitor — a reorg-resilient DCSat monitor
//!
//! The paper's algorithms answer "can this denial constraint be violated
//! by some future of the chain?" for one database snapshot. A deployed
//! checker does not see snapshots — it sees a *stream*: transactions
//! arrive and get evicted, blocks are mined, the chain reorganizes, and
//! the process itself can crash mid-write. This crate turns the snapshot
//! machinery of `bcdb-core` into a long-running monitor:
//!
//! * [`ChainEvent`] — the observed changes, with a single-line text
//!   encoding ([`event`]);
//! * [`Journal`] — an append-only, CRC-checksummed write-ahead log of
//!   events, recoverable to its longest valid prefix after torn writes
//!   or truncated tails ([`journal`]);
//! * [`MonitorSession`] — epoch-versioned incremental maintenance of the
//!   database and its [`Precomputed`](bcdb_core::Precomputed) steady
//!   state, with an epoch-tagged base-verdict cache feeding
//!   `DcSatOptions::base_verdict_hint`, panic containment, and
//!   retry/backoff for transient exhaustion ([`session`]);
//! * [`run_soak`] — seeded fault storms asserting, every epoch, that the
//!   incremental state and all verdicts equal a cold rebuild ([`soak`]).

#![warn(missing_docs)]

pub mod crashstorm;
pub mod diff;
pub mod event;
pub mod journal;
pub mod session;
pub mod soak;
#[cfg(test)]
mod testutil;

pub use crashstorm::{run_crashstorm, CrashStormConfig, CrashStormReport, ScaleStats, TailScaling};
pub use event::{decode_text, encode_text, ChainEvent, DecodeError, UndoOp, UndoRecord};
pub use journal::{
    crc32, drop_tail_records, tear_last_record, Journal, JournalEntry, JournalRecord, Recovery,
};
pub use session::{
    ConstraintVerdict, EpochApply, MonitorConfig, MonitorError, MonitorSession, MonitorStats,
    RecoveryReport, RoundCheck, RoundResult,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
