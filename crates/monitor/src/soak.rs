//! Fault-storm soak testing.
//!
//! [`run_soak`] drives a [`MonitorSession`] through `epochs` rounds of
//! seeded chain faults — conflict floods, eviction storms, replays,
//! reorgs, mined blocks, and journal corruption drills — and after every
//! round asserts that the incrementally maintained state and the verdicts
//! of every registered constraint are **identical** to a cold rebuild
//! from the chain's relational export. Any mismatch is recorded as a
//! divergence; the run is considered failed if there are any.
//!
//! Journal drills corrupt the live journal exactly the way the
//! [`Fault::JournalTornWrite`]/[`Fault::JournalTruncatedTail`] variants
//! describe, then recover it, replay the surviving prefix into a fresh
//! session, verify the replayed steady state is self-consistent, and
//! resync the recovered session to the live chain with a depth-0 reorg
//! snapshot — the same protocol a crashed monitor process would follow.

use crate::diff::{mined_delta_event, pending_diff_events, reorg_event};
use crate::journal::{drop_tail_records, tear_last_record, Journal};
use crate::session::{ConstraintVerdict, MonitorConfig, MonitorSession};
use bcdb_chain::{
    build_block_template, export, generate, inject, Digest, Fault, Keyring, RelationalExport,
    Scenario, ScenarioConfig,
};
use bcdb_core::{BlockchainDb, Precomputed, Solver, Verdict};
use bcdb_query::{parse_denial_constraint, DenialConstraint};
use bcdb_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// Configuration for one soak run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Fault-storm rounds to run.
    pub epochs: u64,
    /// Master seed; every storm, fault, and jitter derives from it.
    pub seed: u64,
    /// Where the live journal lives (created, corrupted, recovered).
    pub journal_path: PathBuf,
    /// When set, the session persists epoch snapshots to a
    /// [`DiskBackend`](bcdb_storage::DiskBackend) in this directory and every journal drill recovers
    /// through the unified snapshot + WAL-tail path
    /// ([`MonitorSession::recover`]) instead of a full journal replay.
    pub storage_dir: Option<PathBuf>,
    /// The generated chain scenario the storms mutate.
    pub scenario: ScenarioConfig,
    /// Session re-check configuration.
    pub monitor: MonitorConfig,
}

impl SoakConfig {
    /// A small, fast scenario suitable for hundreds of epochs.
    pub fn new(epochs: u64, seed: u64, journal_path: impl Into<PathBuf>) -> SoakConfig {
        SoakConfig {
            epochs,
            seed,
            journal_path: journal_path.into(),
            storage_dir: None,
            scenario: ScenarioConfig {
                seed,
                wallets: 12,
                blocks: 10,
                txs_per_block: 6,
                pending_txs: 24,
                contradictions: 4,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            monitor: MonitorConfig::default(),
        }
    }
}

/// What a soak run did and found.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Epochs completed.
    pub epochs: u64,
    /// Events applied to the live session (including resyncs).
    pub events_applied: u64,
    /// Chain faults injected.
    pub faults_injected: u64,
    /// Blocks mined by the harness.
    pub blocks_mined: u64,
    /// Reorg faults injected.
    pub reorgs: u64,
    /// Constraint re-checks performed (live session side).
    pub verdict_checks: u64,
    /// Verdicts that were `Holds`.
    pub holds: u64,
    /// Verdicts that were `Violated`.
    pub violated: u64,
    /// Verdicts that were `Unknown`.
    pub unknown: u64,
    /// Journal corruption drills performed.
    pub crash_drills: u64,
    /// Successful recoveries (always equals `crash_drills` on a pass).
    pub recoveries: u64,
    /// Drill recoveries seeded from a durable snapshot (storage mode).
    pub snapshot_recoveries: u64,
    /// Epoch snapshots persisted by the session (storage mode).
    pub snapshots_persisted: u64,
    /// Journal lines lost to corruption across all drills.
    pub journal_lines_dropped: u64,
    /// Journal bytes lost to corruption across all drills.
    pub journal_bytes_dropped: u64,
    /// Final monitor epoch.
    pub final_epoch: u64,
    /// Epoch-advancing events handled by incremental delta apply
    /// (final-session counter; journal drills reset and re-count the
    /// replayed prefix).
    pub applies: u64,
    /// Epoch-advancing events handled by full snapshot rebuild — the
    /// oracle mode plus any incremental fallbacks.
    pub rebuilds: u64,
    /// Incremental plans rejected (non-append-only mined events) that
    /// fell back to a rebuild.
    pub apply_fallbacks: u64,
    /// Shadow-oracle mismatches seen under
    /// [`EpochApply::IncrementalVerified`](crate::EpochApply).
    pub apply_divergences: u64,
    /// Verified-mode shadow oracle builds.
    pub shadow_builds: u64,
    /// Wall nanoseconds spent in incremental epoch applies.
    pub block_apply_ns: u64,
    /// The subset of `applies` that were O(block) wire deltas (mined
    /// blocks and delta reorgs, no snapshot resolution).
    pub delta_applies: u64,
    /// Wall nanoseconds spent in those delta applies.
    pub delta_apply_ns: u64,
    /// Wall nanoseconds spent in snapshot rebuilds (oracle, fallback,
    /// and shadow-verify builds).
    pub block_rebuild_ns: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub elapsed_ms: u64,
    /// Every incremental-vs-cold-rebuild mismatch, described. Empty on a
    /// passing run.
    pub divergences: Vec<String>,
}

pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One storm step: a chain fault, or an explicit block template mined.
#[derive(Clone, Copy, Debug)]
enum Action {
    Fault(Fault),
    Mine,
}

fn storm(rng: &mut StdRng) -> Vec<Action> {
    let steps = rng.random_range(1..=3usize);
    (0..steps)
        .map(|_| match rng.random_range(0..100u32) {
            0..=29 => Action::Fault(Fault::ConflictFlood {
                count: rng.random_range(2..=5),
            }),
            30..=49 => Action::Fault(Fault::EvictionStorm {
                count: rng.random_range(1..=3),
            }),
            50..=59 => Action::Fault(Fault::DuplicateReplay { count: 3 }),
            60..=69 => Action::Fault(Fault::OrphanReplay { count: 2 }),
            70..=79 => Action::Fault(Fault::Reorg {
                depth: rng.random_range(1..=2),
            }),
            80..=89 => Action::Mine,
            90..=94 => Action::Fault(Fault::JournalTornWrite {
                bytes: rng.random_range(0..=6),
            }),
            _ => Action::Fault(Fault::JournalTruncatedTail {
                records: rng.random_range(1..=2),
            }),
        })
        .collect()
}

/// The denial constraints every soak run watches, parsed against the
/// bitcoin export catalog. The `whale` aggregate is anchored to an
/// address drawn from the scenario so it actually fires.
fn soak_constraints(ex: &RelationalExport) -> Vec<(String, DenialConstraint)> {
    let mut texts = vec![
        (
            "double-spend".to_string(),
            // One address funds two distinct new transactions — satisfiable
            // across worlds whenever non-conflicting pending spends coexist.
            "q() <- TxIn(p1, s1, k, a1, n1, g1), TxIn(p2, s2, k, a2, n2, g2), n1 != n2"
                .to_string(),
        ),
        (
            "chained-spend".to_string(),
            // A pending output consumed by a later transaction.
            "q() <- TxOut(n1, s1, k, a), TxIn(n1, s1, k, a, n2, g)".to_string(),
        ),
    ];
    // Aggregate: some concrete address accumulated at least one satoshi.
    let txout = ex.catalog.resolve("TxOut").expect("bitcoin catalog has TxOut");
    let addr = ex
        .base
        .iter()
        .filter(|(rel, _)| *rel == txout)
        .filter_map(|(_, t)| match t.get(2) {
            Some(Value::Text(s)) => Some(s.to_string()),
            _ => None,
        })
        .next_back();
    if let Some(addr) = addr {
        texts.push((
            "whale".to_string(),
            format!("[q(sum(a)) <- TxOut(ntx, s, '{addr}', a)] >= 1"),
        ));
    }
    texts
        .into_iter()
        .map(|(name, text)| {
            let dc = parse_denial_constraint(&text, &ex.catalog)
                .expect("soak constraints are well-formed");
            (name, dc)
        })
        .collect()
}

/// Builds a cold solver session from an export — the reference the
/// incremental session is compared against. It runs the same options and
/// budget as the live monitor, but starts with an empty base-verdict
/// cache (the "unhinted" side of the comparison).
fn cold_rebuild(
    ex: &RelationalExport,
    config: &MonitorConfig,
) -> Result<Solver, crate::MonitorError> {
    let mut cold = BlockchainDb::new(ex.catalog.clone(), ex.constraints.clone());
    for (rel, tuple) in &ex.base {
        cold.insert_current(*rel, tuple.clone())?;
    }
    for (name, tuples) in &ex.pending {
        cold.add_transaction(name.clone(), tuples.iter().cloned())?;
    }
    Ok(Solver::builder(cold)
        .options(config.opts.clone())
        .budget(config.budget)
        .build())
}

/// Compares the session's incrementally maintained state against a cold
/// rebuild, field by field. Returns human-readable divergences.
fn compare_states(
    epoch: u64,
    session: &MonitorSession,
    cold: &BlockchainDb,
    cold_pre: &Precomputed,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut diverge = |what: String| out.push(format!("epoch {epoch}: {what}"));

    let live_names: Vec<&str> = session.pending_names();
    let cold_names: Vec<&str> = cold.pending().iter().map(|t| t.name.as_str()).collect();
    if live_names != cold_names {
        diverge(format!(
            "pending order differs: live {live_names:?} vs cold {cold_names:?}"
        ));
        return out; // everything downstream is index-shifted noise
    }

    let live_db = session.bcdb().database();
    let cold_db = cold.database();
    for (rel, schema) in live_db.catalog().iter() {
        let rows = |db: &bcdb_storage::Database| -> Vec<_> {
            db.relation(rel)
                .scan_all()
                .map(|(_, row)| (row.tuple.clone(), row.source))
                .collect()
        };
        if rows(live_db) != rows(cold_db) {
            diverge(format!("relation {} rows differ", schema.name()));
        }
    }

    let live_pre = session.precomputed();
    if live_pre.viable != cold_pre.viable {
        diverge(format!(
            "viable differs: live {:?} vs cold {:?}",
            live_pre.viable, cold_pre.viable
        ));
    }
    if live_pre.includable != cold_pre.includable {
        diverge(format!(
            "includable differs: live {:?} vs cold {:?}",
            live_pre.includable, cold_pre.includable
        ));
    }
    let n = live_pre.fd_graph.node_count();
    if n != cold_pre.fd_graph.node_count() {
        diverge(format!(
            "GfTd node count differs: live {n} vs cold {}",
            cold_pre.fd_graph.node_count()
        ));
    } else {
        let mut live_uf = live_pre.ind_uf.clone();
        let mut cold_uf = cold_pre.ind_uf.clone();
        for a in 0..n {
            for b in a + 1..n {
                if live_pre.fd_graph.has_edge(a, b) != cold_pre.fd_graph.has_edge(a, b) {
                    diverge(format!(
                        "GfTd edge ({a},{b}) differs: live {} vs cold {}",
                        live_pre.fd_graph.has_edge(a, b),
                        cold_pre.fd_graph.has_edge(a, b)
                    ));
                }
                if live_uf.connected(a, b) != cold_uf.connected(a, b) {
                    diverge(format!("IND component for ({a},{b}) differs"));
                }
            }
        }
    }
    out
}

fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Compares the live (hinted, retried) verdicts against cold unhinted
/// ones. Two `Unknown`s agree regardless of reason.
fn compare_verdicts(
    epoch: u64,
    live: &[ConstraintVerdict],
    cold: &mut Solver,
    dcs: &[(String, DenialConstraint)],
    report: &mut SoakReport,
) -> Vec<String> {
    let mut out = Vec::new();
    for (cv, (name, dc)) in live.iter().zip(dcs) {
        report.verdict_checks += 1;
        match &cv.verdict {
            Verdict::Holds => report.holds += 1,
            Verdict::Violated(_) => report.violated += 1,
            Verdict::Unknown(_) => report.unknown += 1,
        }
        let cold_outcome = match cold.check(dc) {
            Ok(o) => o,
            Err(e) => {
                out.push(format!("epoch {epoch}: cold check of {name} errored: {e}"));
                continue;
            }
        };
        let agree = match (&cv.verdict, &cold_outcome.verdict) {
            (Verdict::Holds, Verdict::Holds) => true,
            (Verdict::Violated(a), Verdict::Violated(b)) => a == b,
            (Verdict::Unknown(_), Verdict::Unknown(_)) => true,
            _ => false,
        };
        if !agree {
            out.push(format!(
                "epoch {epoch}: verdict for {name} diverged: live {} vs cold {}",
                verdict_label(&cv.verdict),
                verdict_label(&cold_outcome.verdict)
            ));
        }
    }
    out
}

/// Corrupts the live journal per `fault`, recovers it, replays the
/// surviving prefix into a fresh session, checks the replayed steady
/// state against a cold build of its own database, resyncs to the live
/// chain, and returns the recovered session.
#[allow(clippy::too_many_arguments)]
fn journal_drill(
    epoch: u64,
    fault: Fault,
    cfg: &SoakConfig,
    scenario: &Scenario,
    dcs: &[(String, DenialConstraint)],
    ex_catalog: &RelationalExport,
    report: &mut SoakReport,
) -> Result<MonitorSession, crate::MonitorError> {
    report.crash_drills += 1;
    match fault {
        Fault::JournalTornWrite { bytes } => {
            report.journal_bytes_dropped += tear_last_record(&cfg.journal_path, bytes as u64)?;
        }
        Fault::JournalTruncatedTail { records } => {
            drop_tail_records(&cfg.journal_path, records)?;
        }
        _ => unreachable!("journal_drill only handles journal faults"),
    }
    let (mut recovered, recovered_journal) = if let Some(storage_dir) = &cfg.storage_dir {
        // Unified recovery: newest loadable snapshot + WAL tail. The
        // drill's corruption may have destroyed `S` records (or their
        // snapshots may be ahead of the surviving prefix and thus
        // unreachable); recovery transparently falls back as needed.
        let backend = bcdb_storage::DiskBackend::new(storage_dir.join("snapshots"))?;
        let (recovered, rep) = MonitorSession::recover(
            ex_catalog.catalog.clone(),
            ex_catalog.constraints.clone(),
            &cfg.journal_path,
            Box::new(backend),
        )?;
        report.journal_lines_dropped += rep.dropped_lines as u64;
        report.journal_bytes_dropped += rep.dropped_bytes;
        if rep.snapshot_loaded.is_some() {
            report.snapshot_recoveries += 1;
        }
        (recovered, None)
    } else {
        let recovery = Journal::recover(&cfg.journal_path)?;
        report.journal_lines_dropped += recovery.dropped_lines as u64;
        report.journal_bytes_dropped += recovery.dropped_bytes;
        let recovered = MonitorSession::replay_with(
            ex_catalog.catalog.clone(),
            ex_catalog.constraints.clone(),
            &recovery.records,
            cfg.monitor.clone(),
        )?;
        (recovered, Some(recovery.journal))
    };
    // The replayed steady state must equal a cold build of the replayed
    // database — recovery must not corrupt incremental maintenance.
    let rebuilt = Precomputed::build(recovered.bcdb());
    let live_pre = recovered.precomputed();
    if live_pre.viable != rebuilt.viable
        || live_pre.includable != rebuilt.includable
        || live_pre.fd_graph.edge_count() != rebuilt.fd_graph.edge_count()
    {
        report.divergences.push(format!(
            "epoch {epoch}: replayed steady state differs from cold build after recovery"
        ));
    }
    recovered.set_config(cfg.monitor.clone());
    for (name, dc) in dcs {
        recovered.register(name.clone(), dc.clone());
    }
    // Unified recovery re-attached its own journal (and backend); the
    // replay path hands the recovered journal back here.
    if let Some(journal) = recovered_journal {
        recovered.attach_journal(journal);
    }
    // Resync to the live chain: a depth-0 reorg snapshot, journaled like
    // any other event, so the journal stays contiguous past the scar.
    let now = export(scenario)?;
    recovered.apply(&reorg_event(&now, 0))?;
    report.recoveries += 1;
    Ok(recovered)
}

/// Runs the soak. Returns the report; the run passed iff
/// `report.divergences` is empty.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, crate::MonitorError> {
    let started = std::time::Instant::now();
    let mut report = SoakReport::default();
    let mut scenario = generate(&cfg.scenario);
    let ex0 = export(&scenario)?;
    let dcs = soak_constraints(&ex0);

    let mut session = MonitorSession::from_snapshot(
        ex0.catalog.clone(),
        ex0.constraints.clone(),
        &ex0.base,
        &ex0.pending,
    )?;
    session.set_config(cfg.monitor.clone());
    for (name, dc) in &dcs {
        session.register(name.clone(), dc.clone());
    }
    session.attach_journal(Journal::create(&cfg.journal_path)?);
    if let Some(storage_dir) = &cfg.storage_dir {
        // A stale snapshot store would confuse recovery drills.
        let _ = std::fs::remove_dir_all(storage_dir.join("snapshots"));
        session.attach_backend(Box::new(bcdb_storage::DiskBackend::new(
            storage_dir.join("snapshots"),
        )?));
    }

    for epoch in 0..cfg.epochs {
        let mut rng = StdRng::seed_from_u64(mix(cfg.seed, epoch));
        for (i, action) in storm(&mut rng).into_iter().enumerate() {
            let derived = mix(cfg.seed, epoch * 131 + i as u64 + 1);
            match action {
                Action::Fault(fault) if fault.is_journal() => {
                    session = journal_drill(
                        epoch, fault, cfg, &scenario, &dcs, &ex0, &mut report,
                    )?;
                }
                Action::Fault(fault) => {
                    let before = export(&scenario)?;
                    inject(&mut scenario, fault, derived);
                    report.faults_injected += 1;
                    let after = export(&scenario)?;
                    if let Fault::Reorg { depth } = fault {
                        report.reorgs += 1;
                        session.apply(&reorg_event(&after, depth))?;
                    } else {
                        for event in pending_diff_events(&before, &after) {
                            session.apply(&event)?;
                        }
                    }
                }
                Action::Mine => {
                    let before = export(&scenario)?;
                    let keys = scenario.keys.clone();
                    let ring = Keyring::new(&keys);
                    let miner = &keys[(scenario.chain.height() as usize + 1) % keys.len()];
                    let block =
                        build_block_template(&scenario.chain, &scenario.mempool, &ring, miner);
                    let mined: Vec<Digest> =
                        block.transactions[1..].iter().map(|t| t.txid()).collect();
                    scenario
                        .chain
                        .append(block, &ring)
                        .expect("template blocks validate against their own chain");
                    scenario.mempool.purge_after_block(&scenario.chain, &mined);
                    report.blocks_mined += 1;
                    let after = export(&scenario)?;
                    let names = mined.iter().map(|d| d.short()).collect();
                    // O(block) delta, not an O(chain) snapshot — the
                    // production shape of a mined-block notification.
                    session.apply(&mined_delta_event(&before, &after, names))?;
                }
            }
        }

        // Epoch-end audit: state and verdicts vs a cold rebuild.
        let ex = export(&scenario)?;
        let mut cold = cold_rebuild(&ex, &cfg.monitor)?;
        report.divergences.extend(compare_states(
            epoch,
            &session,
            cold.db(),
            cold.precomputed_ref(),
        ));
        let live_verdicts = session.recheck_all();
        let verdict_divergences =
            compare_verdicts(epoch, &live_verdicts, &mut cold, &dcs, &mut report);
        report.divergences.extend(verdict_divergences);
        report.epochs = epoch + 1;
    }

    let stats = session.stats();
    report.events_applied = stats.events_applied;
    report.applies = stats.applies;
    report.rebuilds = stats.rebuilds;
    report.apply_fallbacks = stats.apply_fallbacks;
    report.apply_divergences = stats.apply_divergences;
    report.shadow_builds = stats.shadow_builds;
    report.block_apply_ns = stats.block_apply_ns;
    report.delta_applies = stats.delta_applies;
    report.delta_apply_ns = stats.delta_apply_ns;
    report.block_rebuild_ns = stats.block_rebuild_ns;
    report.final_epoch = session.epoch();
    if let Some(storage_dir) = &cfg.storage_dir {
        report.snapshots_persisted = std::fs::read_dir(storage_dir.join("snapshots"))
            .map(|d| d.count() as u64)
            .unwrap_or(0);
    }
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_path;

    #[test]
    fn soak_smoke_runs_clean() {
        let cfg = SoakConfig::new(8, 3, scratch_path("soak_smoke"));
        let report = run_soak(&cfg).expect("soak runs");
        assert_eq!(report.epochs, 8);
        assert!(report.faults_injected + report.blocks_mined + report.crash_drills > 0);
        assert_eq!(report.crash_drills, report.recoveries);
        assert!(
            report.divergences.is_empty(),
            "divergences: {:#?}",
            report.divergences
        );
        assert!(report.verdict_checks >= 8 * 2);
    }

    #[test]
    fn soak_with_storage_recovers_through_snapshots() {
        let dir = crate::testutil::scratch_dir("soak_storage");
        let mut cfg = SoakConfig::new(8, 3, dir.join("wal.journal"));
        cfg.storage_dir = Some(dir);
        let report = run_soak(&cfg).expect("soak runs");
        assert_eq!(report.epochs, 8);
        assert_eq!(report.crash_drills, report.recoveries);
        assert!(
            report.snapshots_persisted > 0,
            "epoch advances persist snapshots"
        );
        assert!(
            report.divergences.is_empty(),
            "divergences: {:#?}",
            report.divergences
        );
    }

    #[test]
    fn soak_rebuild_oracle_matches_incremental() {
        let inc = SoakConfig::new(6, 11, scratch_path("soak_mode_inc"));
        let mut reb = SoakConfig::new(6, 11, scratch_path("soak_mode_reb"));
        reb.monitor.epoch_apply = crate::session::EpochApply::Rebuild;
        let a = run_soak(&inc).expect("incremental soak runs");
        let b = run_soak(&reb).expect("oracle soak runs");
        assert!(a.divergences.is_empty(), "incremental: {:#?}", a.divergences);
        assert!(b.divergences.is_empty(), "oracle: {:#?}", b.divergences);
        // Same seed, same storm, same chain — so the epoch-end verdicts
        // must agree. (Journal-record counts differ — incremental mode
        // interleaves `U` records — so truncation drills shear different
        // prefixes and event/epoch counters are not comparable.)
        assert_eq!(
            (a.holds, a.violated, a.unknown),
            (b.holds, b.violated, b.unknown)
        );
        assert!(a.applies > 0, "incremental mode applies incrementally");
        assert!(b.rebuilds > 0, "oracle mode rebuilds");
    }

    #[test]
    fn soak_verified_mode_sees_no_shadow_divergence() {
        let mut cfg = SoakConfig::new(6, 11, scratch_path("soak_mode_ver"));
        cfg.monitor.epoch_apply = crate::session::EpochApply::IncrementalVerified;
        let r = run_soak(&cfg).expect("verified soak runs");
        assert!(r.divergences.is_empty(), "{:#?}", r.divergences);
        assert_eq!(r.apply_divergences, 0, "shadow oracle agrees");
        assert!(r.block_apply_ns > 0, "applies were timed");
        assert!(r.block_rebuild_ns > 0, "shadow rebuilds were timed");
    }

    #[test]
    fn soak_is_deterministic_per_seed() {
        let a = run_soak(&SoakConfig::new(4, 9, scratch_path("soak_det_a"))).unwrap();
        let b = run_soak(&SoakConfig::new(4, 9, scratch_path("soak_det_b"))).unwrap();
        assert_eq!(a.events_applied, b.events_applied);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.final_epoch, b.final_epoch);
        assert_eq!((a.holds, a.violated, a.unknown), (b.holds, b.violated, b.unknown));
    }
}
