//! Synthesizing [`ChainEvent`]s from relational exports.
//!
//! The chain substrate reports state as whole [`RelationalExport`]s; the
//! monitor consumes granular events. This module bridges the two:
//! intra-epoch mempool churn becomes eviction/arrival events by diffing
//! the pending sets of two exports, and base mutations become snapshot
//! events carrying the *after* export verbatim.
//!
//! Ordering contract: the mempool preserves survivor order on eviction
//! and appends on admission, so applying "evictions in before-order,
//! then arrivals in after-order" to the monitor's pending list yields
//! exactly the after-export's pending order. The soak harness re-checks
//! this equivalence every epoch.

use crate::event::{ChainEvent, NamedPending, NamedTuples};
use bcdb_chain::RelationalExport;
use bcdb_storage::{Catalog, RelationId, Tuple};
use rustc_hash::FxHashSet;

/// Re-keys id-addressed rows by relation name.
pub fn named_tuples(catalog: &Catalog, rows: &[(RelationId, Tuple)]) -> NamedTuples {
    rows.iter()
        .map(|(rel, t)| (catalog.schema(*rel).name().to_string(), t.clone()))
        .collect()
}

fn named_pending(export: &RelationalExport) -> NamedPending {
    export
        .pending
        .iter()
        .map(|(name, rows)| (name.clone(), named_tuples(&export.catalog, rows)))
        .collect()
}

/// Diffs two pending sets from the same epoch into eviction events (in
/// `before` order) followed by arrival events (in `after` order).
pub fn pending_diff_events(
    before: &RelationalExport,
    after: &RelationalExport,
) -> Vec<ChainEvent> {
    let before_names: FxHashSet<&str> =
        before.pending.iter().map(|(n, _)| n.as_str()).collect();
    let after_names: FxHashSet<&str> = after.pending.iter().map(|(n, _)| n.as_str()).collect();
    let mut events = Vec::new();
    for (name, _) in &before.pending {
        if !after_names.contains(name.as_str()) {
            events.push(ChainEvent::TxEvicted { name: name.clone() });
        }
    }
    for (name, rows) in &after.pending {
        if !before_names.contains(name.as_str()) {
            events.push(ChainEvent::TxArrived {
                name: name.clone(),
                tuples: named_tuples(&after.catalog, rows),
            });
        }
    }
    events
}

/// A mined-block snapshot event from the post-block export.
pub fn mined_event(after: &RelationalExport, mined: Vec<String>) -> ChainEvent {
    ChainEvent::TxMined {
        mined,
        base: named_tuples(&after.catalog, &after.base),
        pending: named_pending(after),
    }
}

/// A mined-block *delta* event: the block's appended base rows plus the
/// names of every pending transaction the block flushed out of the pool
/// — the mined ones and any conflict the purge dropped with them. This
/// is O(block) on the wire and in the monitor, instead of the O(chain)
/// snapshot. Blocks only append, so the after export's base must extend
/// the before export's; if it does not (the exports span more than one
/// block boundary, or the chain was mutated out from under us), this
/// falls back to the full snapshot event.
pub fn mined_delta_event(
    before: &RelationalExport,
    after: &RelationalExport,
    mined: Vec<String>,
) -> ChainEvent {
    let p = before.base.len();
    if after.base.len() >= p && after.base[..p] == before.base[..] {
        let after_names: FxHashSet<&str> = after.pending.iter().map(|(n, _)| n.as_str()).collect();
        let flushed = before
            .pending
            .iter()
            .map(|(n, _)| n)
            .filter(|n| !after_names.contains(n.as_str()))
            .cloned()
            .collect();
        ChainEvent::TxMinedDelta {
            mined: flushed,
            appended: named_tuples(&after.catalog, &after.base[p..]),
        }
    } else {
        mined_event(after, mined)
    }
}

/// A reorg snapshot event from the post-reorg export. `depth` 0 marks a
/// resync (e.g. after journal recovery).
pub fn reorg_event(after: &RelationalExport, depth: u64) -> ChainEvent {
    ChainEvent::Reorg {
        depth,
        base: named_tuples(&after.catalog, &after.base),
        pending: named_pending(after),
    }
}
