//! Chain events and their journal line encoding.
//!
//! A [`ChainEvent`] is the unit of change the monitor observes. The two
//! intra-epoch events ([`TxArrived`](ChainEvent::TxArrived) and
//! [`TxEvicted`](ChainEvent::TxEvicted)) leave the base state `R` alone
//! and are applied incrementally. Epoch-advancing events come in two
//! shapes: the snapshot forms ([`TxMined`](ChainEvent::TxMined) and
//! [`Reorg`](ChainEvent::Reorg)) carry the full post-event relational
//! state, so the monitor can either reconcile incrementally or rebuild
//! from scratch; the delta forms ([`TxMinedDelta`](ChainEvent::TxMinedDelta)
//! and [`ReorgDelta`](ChainEvent::ReorgDelta)) carry only the change and
//! are applied purely incrementally, with reorgs replaying journaled
//! [`UndoRecord`]s.
//!
//! Events serialize to single text lines so the journal can be recovered
//! line-by-line after a torn write. Relations are referenced **by name**
//! (not by [`RelationId`](bcdb_storage::RelationId)) so a journal is
//! self-contained: replaying it needs only a catalog with the same
//! relation names, not identical id assignment.

use bcdb_storage::{Tuple, Value};
use std::fmt;

/// Tuples grouped under the relation *name* they belong to.
pub type NamedTuples = Vec<(String, Tuple)>;

/// A pending set: transaction name plus its named tuples, in issue order.
pub type NamedPending = Vec<(String, NamedTuples)>;

/// One observed change to the chain or its mempool.
#[derive(Clone, Debug, PartialEq)]
pub enum ChainEvent {
    /// A transaction entered the mempool. Intra-epoch: applied
    /// incrementally via `note_transaction_added`.
    TxArrived {
        /// Transaction display name (txid).
        name: String,
        /// The tuples it would append, keyed by relation name.
        tuples: NamedTuples,
    },
    /// A pending transaction left the mempool without being mined
    /// (eviction, replacement). Intra-epoch: applied incrementally via
    /// `note_transaction_removed`.
    TxEvicted {
        /// Name of the departed transaction.
        name: String,
    },
    /// A block was mined: some pending transactions joined `R`. Advances
    /// the epoch; carries the post-block snapshot.
    TxMined {
        /// Names of the transactions accepted into the block.
        mined: Vec<String>,
        /// Full base state after the block.
        base: NamedTuples,
        /// Full pending set after the block.
        pending: NamedPending,
    },
    /// The chain reorganized: `depth` blocks were disconnected and
    /// replaced. Advances the epoch; carries the post-reorg snapshot.
    Reorg {
        /// Number of blocks disconnected (0 marks a pure resync).
        depth: u64,
        /// Full base state after the reorg.
        base: NamedTuples,
        /// Full pending set after the reorg.
        pending: NamedPending,
    },
    /// Delta form of [`TxMined`](ChainEvent::TxMined) for thin wires: the
    /// block is described by what it *changed* — the mined transaction
    /// names (which leave the pending set) and the base rows the block
    /// appended (mined tuples plus coinbase-style rows). Advances the
    /// epoch; applied purely incrementally, there is no snapshot to
    /// rebuild from.
    TxMinedDelta {
        /// Names of the transactions accepted into the block.
        mined: Vec<String>,
        /// The base rows the block appended, in chain order.
        appended: NamedTuples,
    },
    /// Delta form of [`Reorg`](ChainEvent::Reorg): disconnect the last
    /// `depth` blocks by replaying their journaled inverse deltas
    /// ([`UndoRecord`]s). Advances the epoch; requires the session to hold
    /// undo records for at least `depth` epoch-advancing events.
    ReorgDelta {
        /// Number of blocks to disconnect.
        depth: u64,
    },
}

/// One inverse-delta step of an [`UndoRecord`]. Executing the ops of a
/// record in order reverts one epoch-advancing event; relations and
/// transactions are named (not id-addressed) so records survive journal
/// round trips and re-resolution against a fresh catalog.
#[derive(Clone, Debug, PartialEq)]
pub enum UndoOp {
    /// Append these rows to the base state (they were removed).
    AppendBase(NamedTuples),
    /// Remove these rows from the base state (they were appended).
    RemoveBase(NamedTuples),
    /// Re-issue these pending transactions at the given indices, in
    /// ascending index order (they were removed; each insert shifts
    /// larger ids up, so ascending order restores the original layout).
    InsertTxs(Vec<(u64, String, NamedTuples)>),
    /// Remove the named pending transaction (it was inserted).
    RemoveTx {
        /// Name of the transaction to drop.
        name: String,
    },
}

/// The journaled inverse delta of one epoch-advancing event: executing
/// `ops` in order restores the state from before the event. Reorg undo
/// and crash recovery share these records — the undo stack *is* the
/// journal's `U` lines.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct UndoRecord {
    /// Inverse ops, in execution order.
    pub ops: Vec<UndoOp>,
}

/// Why a journal line could not be decoded into a [`ChainEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed event: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Percent-encodes `s` so it survives space-delimited line framing:
/// alphanumerics and `_ . : -` pass through, everything else (including
/// `%`, spaces, and newlines) becomes `%XX`. The empty string encodes as
/// a bare `%` — a token no non-empty input can produce, since a literal
/// `%` is always escaped — so it cannot vanish between two separators.
pub fn encode_text(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b':' | b'-' => {
                out.push(b as char);
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Inverse of [`encode_text`].
pub fn decode_text(s: &str) -> Result<String, DecodeError> {
    if s == "%" {
        return Ok(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| DecodeError(format!("truncated %-escape in {s:?}")))?;
            let hex = std::str::from_utf8(hex)
                .map_err(|_| DecodeError(format!("non-utf8 %-escape in {s:?}")))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| DecodeError(format!("bad %-escape {hex:?} in {s:?}")))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| DecodeError(format!("decoded text not utf8: {s:?}")))
}

fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            out.push('I');
            out.push_str(&i.to_string());
        }
        Value::Text(t) => {
            out.push('T');
            out.push_str(&encode_text(t));
        }
        Value::Bool(b) => out.push_str(if *b { "B1" } else { "B0" }),
    }
}

/// A strict token cursor over one payload line.
struct Tokens<'a> {
    it: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn new(s: &'a str) -> Self {
        Tokens {
            it: s.split_ascii_whitespace(),
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, DecodeError> {
        self.it
            .next()
            .ok_or_else(|| DecodeError(format!("missing {what}")))
    }

    fn next_u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        let tok = self.next(what)?;
        tok.parse()
            .map_err(|_| DecodeError(format!("bad {what}: {tok:?}")))
    }

    fn next_text(&mut self, what: &str) -> Result<String, DecodeError> {
        decode_text(self.next(what)?)
    }

    fn next_value(&mut self) -> Result<Value, DecodeError> {
        let tok = self.next("value")?;
        let rest = &tok[1..];
        match tok.as_bytes().first() {
            Some(b'I') => rest
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| DecodeError(format!("bad int value {tok:?}"))),
            Some(b'T') => Ok(Value::text(decode_text(rest)?)),
            Some(b'B') => match rest {
                "0" => Ok(Value::Bool(false)),
                "1" => Ok(Value::Bool(true)),
                _ => Err(DecodeError(format!("bad bool value {tok:?}"))),
            },
            _ => Err(DecodeError(format!("unknown value tag {tok:?}"))),
        }
    }

    fn finish(mut self) -> Result<(), DecodeError> {
        match self.it.next() {
            Some(extra) => Err(DecodeError(format!("trailing token {extra:?}"))),
            None => Ok(()),
        }
    }
}

fn encode_tuples(tuples: &NamedTuples, out: &mut String) {
    out.push(' ');
    out.push_str(&tuples.len().to_string());
    for (rel, tuple) in tuples {
        out.push(' ');
        out.push_str(&encode_text(rel));
        out.push(' ');
        out.push_str(&tuple.arity().to_string());
        for v in tuple.values() {
            out.push(' ');
            encode_value(v, out);
        }
    }
}

fn decode_tuples(toks: &mut Tokens<'_>) -> Result<NamedTuples, DecodeError> {
    let count = toks.next_u64("tuple count")? as usize;
    let mut tuples = Vec::with_capacity(count);
    for _ in 0..count {
        let rel = toks.next_text("relation name")?;
        let arity = toks.next_u64("arity")? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(toks.next_value()?);
        }
        tuples.push((rel, Tuple::new(values)));
    }
    Ok(tuples)
}

fn encode_pending(pending: &NamedPending, out: &mut String) {
    out.push(' ');
    out.push_str(&pending.len().to_string());
    for (name, tuples) in pending {
        out.push(' ');
        out.push_str(&encode_text(name));
        encode_tuples(tuples, out);
    }
}

fn decode_pending(toks: &mut Tokens<'_>) -> Result<NamedPending, DecodeError> {
    let count = toks.next_u64("pending count")? as usize;
    let mut pending = Vec::with_capacity(count);
    for _ in 0..count {
        let name = toks.next_text("transaction name")?;
        pending.push((name, decode_tuples(toks)?));
    }
    Ok(pending)
}

impl ChainEvent {
    /// Serializes the event payload to one line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        match self {
            ChainEvent::TxArrived { name, tuples } => {
                out.push_str("A ");
                out.push_str(&encode_text(name));
                encode_tuples(tuples, &mut out);
            }
            ChainEvent::TxEvicted { name } => {
                out.push_str("V ");
                out.push_str(&encode_text(name));
            }
            ChainEvent::TxMined {
                mined,
                base,
                pending,
            } => {
                out.push_str("M ");
                out.push_str(&mined.len().to_string());
                for name in mined {
                    out.push(' ');
                    out.push_str(&encode_text(name));
                }
                encode_tuples(base, &mut out);
                encode_pending(pending, &mut out);
            }
            ChainEvent::Reorg {
                depth,
                base,
                pending,
            } => {
                out.push_str("R ");
                out.push_str(&depth.to_string());
                encode_tuples(base, &mut out);
                encode_pending(pending, &mut out);
            }
            ChainEvent::TxMinedDelta { mined, appended } => {
                out.push_str("MD ");
                out.push_str(&mined.len().to_string());
                for name in mined {
                    out.push(' ');
                    out.push_str(&encode_text(name));
                }
                encode_tuples(appended, &mut out);
            }
            ChainEvent::ReorgDelta { depth } => {
                out.push_str("RD ");
                out.push_str(&depth.to_string());
            }
        }
        out
    }

    /// Parses a payload produced by [`encode`](ChainEvent::encode).
    pub fn decode(line: &str) -> Result<ChainEvent, DecodeError> {
        let mut toks = Tokens::new(line);
        let event = match toks.next("event tag")? {
            "A" => ChainEvent::TxArrived {
                name: toks.next_text("transaction name")?,
                tuples: decode_tuples(&mut toks)?,
            },
            "V" => ChainEvent::TxEvicted {
                name: toks.next_text("transaction name")?,
            },
            "M" => {
                let n = toks.next_u64("mined count")? as usize;
                let mut mined = Vec::with_capacity(n);
                for _ in 0..n {
                    mined.push(toks.next_text("mined name")?);
                }
                ChainEvent::TxMined {
                    mined,
                    base: decode_tuples(&mut toks)?,
                    pending: decode_pending(&mut toks)?,
                }
            }
            "R" => ChainEvent::Reorg {
                depth: toks.next_u64("reorg depth")?,
                base: decode_tuples(&mut toks)?,
                pending: decode_pending(&mut toks)?,
            },
            "MD" => {
                let n = toks.next_u64("mined count")? as usize;
                let mut mined = Vec::with_capacity(n);
                for _ in 0..n {
                    mined.push(toks.next_text("mined name")?);
                }
                ChainEvent::TxMinedDelta {
                    mined,
                    appended: decode_tuples(&mut toks)?,
                }
            }
            "RD" => ChainEvent::ReorgDelta {
                depth: toks.next_u64("reorg depth")?,
            },
            tag => return Err(DecodeError(format!("unknown event tag {tag:?}"))),
        };
        toks.finish()?;
        Ok(event)
    }

    /// Whether this event advances the epoch (mutates the base state `R`).
    pub fn advances_epoch(&self) -> bool {
        matches!(
            self,
            ChainEvent::TxMined { .. }
                | ChainEvent::Reorg { .. }
                | ChainEvent::TxMinedDelta { .. }
                | ChainEvent::ReorgDelta { .. }
        )
    }
}

impl UndoRecord {
    /// Serializes the record to one line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.ops.len().to_string());
        for op in &self.ops {
            match op {
                UndoOp::AppendBase(rows) => {
                    out.push_str(" ab");
                    encode_tuples(rows, &mut out);
                }
                UndoOp::RemoveBase(rows) => {
                    out.push_str(" rb");
                    encode_tuples(rows, &mut out);
                }
                UndoOp::InsertTxs(entries) => {
                    out.push_str(" it ");
                    out.push_str(&entries.len().to_string());
                    for (at, name, tuples) in entries {
                        out.push(' ');
                        out.push_str(&at.to_string());
                        out.push(' ');
                        out.push_str(&encode_text(name));
                        encode_tuples(tuples, &mut out);
                    }
                }
                UndoOp::RemoveTx { name } => {
                    out.push_str(" rt ");
                    out.push_str(&encode_text(name));
                }
            }
        }
        out
    }

    /// Parses a payload produced by [`encode`](UndoRecord::encode).
    pub fn decode(line: &str) -> Result<UndoRecord, DecodeError> {
        let mut toks = Tokens::new(line);
        let count = toks.next_u64("undo op count")? as usize;
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let op = match toks.next("undo op tag")? {
                "ab" => UndoOp::AppendBase(decode_tuples(&mut toks)?),
                "rb" => UndoOp::RemoveBase(decode_tuples(&mut toks)?),
                "it" => {
                    let n = toks.next_u64("inserted tx count")? as usize;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        let at = toks.next_u64("tx index")?;
                        let name = toks.next_text("transaction name")?;
                        entries.push((at, name, decode_tuples(&mut toks)?));
                    }
                    UndoOp::InsertTxs(entries)
                }
                "rt" => UndoOp::RemoveTx {
                    name: toks.next_text("transaction name")?,
                },
                tag => return Err(DecodeError(format!("unknown undo op tag {tag:?}"))),
            };
            ops.push(op);
        }
        toks.finish()?;
        Ok(UndoRecord { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::tuple;

    fn roundtrip(e: &ChainEvent) {
        let line = e.encode();
        assert!(!line.contains('\n'), "encoded event must be one line");
        let back = ChainEvent::decode(&line).expect("decode what we encoded");
        assert_eq!(&back, e);
    }

    #[test]
    fn all_variants_round_trip() {
        let tuples = vec![
            ("TxOut".to_string(), tuple!["ab c%", 1_i64, "pk 1", -7_i64]),
            ("TxIn".to_string(), tuple![0_i64, true, false]),
        ];
        roundtrip(&ChainEvent::TxArrived {
            name: "odd name %20\n".to_string(),
            tuples: tuples.clone(),
        });
        roundtrip(&ChainEvent::TxEvicted {
            name: "plain".to_string(),
        });
        roundtrip(&ChainEvent::TxMined {
            mined: vec!["t1".to_string(), "t 2".to_string()],
            base: tuples.clone(),
            pending: vec![
                ("p1".to_string(), tuples.clone()),
                ("p2".to_string(), vec![]),
            ],
        });
        roundtrip(&ChainEvent::Reorg {
            depth: 3,
            base: vec![],
            pending: vec![("solo".to_string(), tuples.clone())],
        });
        roundtrip(&ChainEvent::TxMinedDelta {
            mined: vec!["t1".to_string(), "t 2".to_string()],
            appended: tuples,
        });
        roundtrip(&ChainEvent::TxMinedDelta {
            mined: vec![],
            appended: vec![],
        });
        roundtrip(&ChainEvent::ReorgDelta { depth: 2 });
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "",
            "X 1",
            "A",
            "A name 1 Rel 2 I1",       // arity promises 2 values, 1 given
            "A name 1 Rel 1 Qx",       // unknown value tag
            "V name extra",            // trailing token
            "M 1 t1 0 0 junk",         // trailing token after counts
            "A name 1 Rel 1 I1 extra", // trailing token
            "A na%GGme 0",             // bad escape
            "MD 1 t1 0 junk",          // trailing token
            "MD 2 t1 0",               // mined count promises 2 names
            "RD",                      // missing depth
            "RD 1 extra",              // trailing token
        ] {
            assert!(
                ChainEvent::decode(bad).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn undo_record_round_trips() {
        let rows = vec![
            ("TxOut".to_string(), tuple!["a b", 1_i64]),
            ("TxIn".to_string(), tuple![true]),
        ];
        let rec = UndoRecord {
            ops: vec![
                UndoOp::RemoveTx {
                    name: "odd %name".to_string(),
                },
                UndoOp::InsertTxs(vec![
                    (0, "t0".to_string(), rows.clone()),
                    (2, "t2".to_string(), vec![]),
                ]),
                UndoOp::RemoveBase(rows.clone()),
                UndoOp::AppendBase(rows),
            ],
        };
        let line = rec.encode();
        assert!(!line.contains('\n'));
        assert_eq!(UndoRecord::decode(&line).unwrap(), rec);
        // Empty record round-trips too (a no-op event).
        let empty = UndoRecord::default();
        assert_eq!(UndoRecord::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn undo_decode_rejects_garbage() {
        for bad in [
            "1",              // promises one op, none given
            "1 zz",           // unknown op tag
            "1 rt",           // missing name
            "1 it 1 0 t0",    // missing tuples
            "0 extra",        // trailing token
            "1 ab 1 Rel 1 I1 extra",
        ] {
            assert!(UndoRecord::decode(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn text_encoding_is_line_safe() {
        let nasty = "a b\nc%d\te\u{00e9}";
        let enc = encode_text(nasty);
        assert!(!enc.contains(' ') && !enc.contains('\n') && !enc.contains('\t'));
        assert_eq!(decode_text(&enc).unwrap(), nasty);
    }
}
