//! The crash-point injection harness.
//!
//! [`run_crashstorm`] proves the durable storage stack crash-consistent
//! the brute-force way: it generates a deterministic chain-event script,
//! runs it once on a plain in-memory session (the **control**), once on a
//! durable session to count every [`DurableFile`](bcdb_storage::DurableFile)
//! write boundary, and
//! then — for every write boundary — runs a fresh durable session that is
//! *killed at exactly that boundary* (cycling through the three crash
//! styles: dropped unsynced tail, torn write, reordered flush), recovers
//! it with [`MonitorSession::recover`], resumes the script from what the
//! recovered journal proves was durably applied, and asserts the final
//! state is **byte-identical** to the control's encoded snapshot. Any
//! mismatch — or a crash point that fails to fire, or a recovery error —
//! is a divergence; the storm passed iff there are none.
//!
//! [`tail_scaling`] is the companion cost probe: it runs the same script
//! at two dataset scales and measures unified recovery (snapshot + WAL
//! tail) against full journal replay, asserting that recovery work is
//! bounded by the WAL tail, not by the dataset or the journal length.

use crate::diff::{mined_event, pending_diff_events, reorg_event};
use crate::event::ChainEvent;
use crate::journal::Journal;
use crate::session::{MonitorConfig, MonitorError, MonitorSession, RecoveryReport};
use crate::soak::mix;
use bcdb_chain::{
    build_block_template, export, generate, inject, Digest, Fault, Keyring, RelationalExport,
    ScenarioConfig,
};
use bcdb_storage::durable::{CrashController, CrashPoint, CrashStyle, SyncPolicy};
use bcdb_storage::{encode_snapshot, Catalog, ConstraintSet, DiskBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// Configuration for one crash storm.
#[derive(Clone, Debug)]
pub struct CrashStormConfig {
    /// Storm rounds in the event script (each 1–3 chain actions).
    pub epochs: u64,
    /// Master seed for the scenario and the storm.
    pub seed: u64,
    /// Working directory; wiped at the start of the run. Each crash point
    /// gets a subdirectory, removed again when it passes.
    pub dir: PathBuf,
    /// Cap on crash points actually tested (evenly strided across all
    /// write boundaries). 0 = test **every** write boundary.
    pub max_crash_points: usize,
    /// The generated chain scenario the script mutates.
    pub scenario: ScenarioConfig,
    /// Session configuration (snapshot cadence matters most here).
    pub monitor: MonitorConfig,
}

impl CrashStormConfig {
    /// A compact scenario sized so the full every-boundary matrix stays
    /// tractable even at 100 epochs.
    pub fn new(epochs: u64, seed: u64, dir: impl Into<PathBuf>) -> CrashStormConfig {
        CrashStormConfig {
            epochs,
            seed,
            dir: dir.into(),
            max_crash_points: 0,
            scenario: ScenarioConfig {
                seed,
                wallets: 8,
                blocks: 6,
                txs_per_block: 4,
                pending_txs: 12,
                contradictions: 3,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            monitor: MonitorConfig::default(),
        }
    }
}

/// Recovery-cost measurements at one dataset scale.
#[derive(Clone, Debug, Default)]
pub struct ScaleStats {
    /// Base rows in the final state (the dataset-size axis).
    pub base_rows: usize,
    /// Records in the journal's valid prefix.
    pub total_records: usize,
    /// WAL tail replayed by unified (snapshot-seeded) recovery.
    pub wal_tail_records: usize,
    /// Unified recovery wall time.
    pub recovery_ns: u64,
    /// Full journal replay wall time (no snapshot available).
    pub full_replay_ns: u64,
}

/// The two-scale cost probe's result (see [`tail_scaling`]).
#[derive(Clone, Debug, Default)]
pub struct TailScaling {
    /// The base scenario.
    pub small: ScaleStats,
    /// The same script over a several-times-larger scenario.
    pub large: ScaleStats,
}

/// What a crash storm did and found.
#[derive(Clone, Debug, Default)]
pub struct CrashStormReport {
    /// Storm rounds in the script.
    pub epochs: u64,
    /// Chain events in the script.
    pub events: usize,
    /// Write boundaries one clean durable run crosses.
    pub write_boundaries: u64,
    /// Crash points actually tested (== `write_boundaries` unless capped).
    pub crash_points_tested: u64,
    /// Tested points whose injected crash actually fired.
    pub crashes_fired: u64,
    /// Recoveries performed (one per tested point, plus the clean run's).
    pub recoveries: u64,
    /// Recoveries seeded from a snapshot.
    pub snapshot_recoveries: u64,
    /// Recoveries that fell back to full journal replay.
    pub full_replays: u64,
    /// Snapshot boundaries skipped because their snapshot would not load.
    pub snapshots_rejected: u64,
    /// Longest WAL tail any recovery replayed.
    pub wal_tail_max: usize,
    /// Summed recovery wall time.
    pub recovery_ns_total: u64,
    /// Slowest single recovery.
    pub recovery_ns_max: u64,
    /// The two-scale cost probe, when run.
    pub tail_scaling: Option<TailScaling>,
    /// Wall-clock duration of the whole storm, in milliseconds.
    pub elapsed_ms: u64,
    /// Every byte-identity or protocol violation found. Empty on a pass.
    pub divergences: Vec<String>,
}

/// The canonical state fingerprint: the encoded epoch snapshot of the
/// session's database. Two sessions with equal bytes hold equal base
/// rows (in store order), equal pending sets (in issue order), and equal
/// epochs.
fn state_bytes(s: &MonitorSession) -> Vec<u8> {
    encode_snapshot(&s.bcdb().to_db_snapshot(s.epoch()))
}

/// Generates the deterministic event script: an initial depth-0 reorg
/// carrying the scenario's full starting state (so sessions start empty
/// and the journal alone can always rebuild everything), followed by
/// `epochs` rounds of seeded chain faults and mined blocks. Journal
/// corruption is *not* scripted — the crash injector supplies the damage.
fn event_script(
    cfg: &CrashStormConfig,
) -> Result<(RelationalExport, Vec<ChainEvent>), MonitorError> {
    let mut scenario = generate(&cfg.scenario);
    let ex0 = export(&scenario)?;
    let mut events = vec![reorg_event(&ex0, 0)];
    for epoch in 0..cfg.epochs {
        let mut rng = StdRng::seed_from_u64(mix(cfg.seed, epoch));
        let steps = rng.random_range(1..=3usize);
        for i in 0..steps {
            let derived = mix(cfg.seed, epoch * 131 + i as u64 + 1);
            let fault = match rng.random_range(0..100u32) {
                0..=29 => Some(Fault::ConflictFlood {
                    count: rng.random_range(2..=5),
                }),
                30..=49 => Some(Fault::EvictionStorm {
                    count: rng.random_range(1..=3),
                }),
                50..=59 => Some(Fault::DuplicateReplay { count: 3 }),
                60..=69 => Some(Fault::OrphanReplay { count: 2 }),
                70..=79 => Some(Fault::Reorg {
                    depth: rng.random_range(1..=2),
                }),
                _ => None, // mine a block
            };
            match fault {
                Some(fault) => {
                    let before = export(&scenario)?;
                    inject(&mut scenario, fault, derived);
                    let after = export(&scenario)?;
                    if let Fault::Reorg { depth } = fault {
                        events.push(reorg_event(&after, depth));
                    } else {
                        events.extend(pending_diff_events(&before, &after));
                    }
                }
                None => {
                    let keys = scenario.keys.clone();
                    let ring = Keyring::new(&keys);
                    let miner = &keys[(scenario.chain.height() as usize + 1) % keys.len()];
                    let block =
                        build_block_template(&scenario.chain, &scenario.mempool, &ring, miner);
                    let mined: Vec<Digest> =
                        block.transactions[1..].iter().map(|t| t.txid()).collect();
                    scenario
                        .chain
                        .append(block, &ring)
                        .expect("template blocks validate against their own chain");
                    scenario.mempool.purge_after_block(&scenario.chain, &mined);
                    let after = export(&scenario)?;
                    let names = mined.iter().map(|d| d.short()).collect();
                    events.push(mined_event(&after, names));
                }
            }
        }
    }
    Ok((ex0, events))
}

/// An empty session writing through the durable stack in `dir`: a v2
/// journal at `wal.journal` and a [`DiskBackend`](bcdb_storage::DiskBackend) under `snapshots/`,
/// both routed through `ctl` when crash injection is on.
fn durable_session(
    catalog: &Catalog,
    constraints: &ConstraintSet,
    dir: &Path,
    ctl: Option<CrashController>,
    monitor: &MonitorConfig,
) -> Result<MonitorSession, MonitorError> {
    let mut s = MonitorSession::new(catalog.clone(), constraints.clone());
    s.set_config(monitor.clone());
    s.attach_journal(Journal::create_with(
        dir.join("wal.journal"),
        SyncPolicy::Always,
        ctl.clone(),
    )?)
    ;
    let mut backend = DiskBackend::new(dir.join("snapshots"))?;
    if let Some(ctl) = ctl {
        backend = backend.with_crash_controller(ctl);
    }
    s.attach_backend(Box::new(backend));
    Ok(s)
}

fn recover_from(
    catalog: &Catalog,
    constraints: &ConstraintSet,
    dir: &Path,
) -> Result<(MonitorSession, RecoveryReport), MonitorError> {
    let backend = DiskBackend::new(dir.join("snapshots"))?;
    MonitorSession::recover(
        catalog.clone(),
        constraints.clone(),
        dir.join("wal.journal"),
        Box::new(backend),
    )
}

fn fold_recovery(report: &mut CrashStormReport, rep: &RecoveryReport) {
    report.recoveries += 1;
    if rep.snapshot_loaded.is_some() {
        report.snapshot_recoveries += 1;
    } else {
        report.full_replays += 1;
    }
    report.snapshots_rejected += rep.snapshots_rejected;
    report.wal_tail_max = report.wal_tail_max.max(rep.wal_tail_records);
    report.recovery_ns_total += rep.recovery_ns;
    report.recovery_ns_max = report.recovery_ns_max.max(rep.recovery_ns);
}

/// Runs the crash-point matrix. Returns the report; the storm passed iff
/// `report.divergences` is empty.
pub fn run_crashstorm(cfg: &CrashStormConfig) -> Result<CrashStormReport, MonitorError> {
    let started = std::time::Instant::now();
    let mut report = CrashStormReport {
        epochs: cfg.epochs,
        ..CrashStormReport::default()
    };
    let _ = std::fs::remove_dir_all(&cfg.dir);
    std::fs::create_dir_all(&cfg.dir)?;

    let (ex0, events) = event_script(cfg)?;
    report.events = events.len();
    let catalog = &ex0.catalog;
    let constraints = &ex0.constraints;

    // Control: the never-crashed, purely in-memory run.
    let mut control = MonitorSession::new(catalog.clone(), constraints.clone());
    control.set_config(cfg.monitor.clone());
    for ev in &events {
        control.apply(ev)?;
    }
    let want = state_bytes(&control);
    let want_epoch = control.epoch();
    drop(control);

    // Dry durable run: learns the write-boundary count and proves the
    // durable stack itself changes nothing when no crash fires.
    let dry_dir = cfg.dir.join("dry");
    std::fs::create_dir_all(&dry_dir)?;
    let ctl = CrashController::new();
    let mut dry = durable_session(catalog, constraints, &dry_dir, Some(ctl.clone()), &cfg.monitor)?;
    for ev in &events {
        dry.apply(ev)?;
    }
    if state_bytes(&dry) != want {
        report
            .divergences
            .push("dry durable run diverged from the in-memory control".to_string());
    }
    drop(dry);
    report.write_boundaries = ctl.boundaries();
    // A crash-free journal + snapshot store must also recover identically.
    let (dry_recovered, dry_rep) = recover_from(catalog, constraints, &dry_dir)?;
    fold_recovery(&mut report, &dry_rep);
    if state_bytes(&dry_recovered) != want {
        report
            .divergences
            .push("clean recovery of the dry run diverged from control".to_string());
    }
    drop(dry_recovered);

    // The crash matrix: kill at boundary p, recover, resume, compare.
    let styles = [
        CrashStyle::DropUnsynced,
        CrashStyle::TornWrite,
        CrashStyle::Reorder,
    ];
    let total = report.write_boundaries as usize;
    let stride = if cfg.max_crash_points == 0 || total <= cfg.max_crash_points {
        1
    } else {
        total.div_ceil(cfg.max_crash_points)
    } as u64;
    let mut p = 1u64;
    while p <= report.write_boundaries {
        let style = styles[(p as usize) % styles.len()];
        let cp_dir = cfg.dir.join(format!("cp-{p:06}"));
        std::fs::create_dir_all(&cp_dir)?;
        let ctl = CrashController::new();
        ctl.arm(CrashPoint {
            boundary: p,
            style,
        });
        // Even creating the journal can be the crash point (boundary 1 is
        // the header write), so session construction may itself "die".
        let mut crashed = false;
        match durable_session(catalog, constraints, &cp_dir, Some(ctl.clone()), &cfg.monitor) {
            Ok(mut session) => {
                for ev in &events {
                    match session.apply(ev) {
                        Ok(()) => {}
                        Err(e) if e.is_injected_crash() => {
                            crashed = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) if e.is_injected_crash() => crashed = true,
            Err(e) => return Err(e),
        }
        report.crash_points_tested += 1;
        if crashed {
            report.crashes_fired += 1;
        } else {
            report
                .divergences
                .push(format!("crash point {p} ({style:?}) never fired"));
        }
        ctl.disarm();

        let (mut recovered, rep) = recover_from(catalog, constraints, &cp_dir)?;
        fold_recovery(&mut report, &rep);
        // Resume exactly the events the journal proves were NOT durably
        // applied. (A crash can land *after* a record reached disk but
        // before `apply` returned — e.g. a reordered flush — so progress
        // must come from the recovered journal, never from which apply
        // call happened to error.)
        for ev in &events[rep.total_events..] {
            recovered.apply(ev)?;
        }
        if state_bytes(&recovered) != want {
            report.divergences.push(format!(
                "crash point {p} ({style:?}): resumed state diverges from control \
                 (epoch {} vs {want_epoch}, recovered {} of {} events)",
                recovered.epoch(),
                rep.total_events,
                events.len(),
            ));
        } else {
            // Keep failing crash points on disk for the post-mortem.
            let _ = std::fs::remove_dir_all(&cp_dir);
        }
        p += stride;
    }

    report.tail_scaling = Some(tail_scaling(cfg, &mut report.divergences)?);
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

fn scale_run(
    cfg: &CrashStormConfig,
    subdir: &str,
    divergences: &mut Vec<String>,
) -> Result<ScaleStats, MonitorError> {
    let dir = cfg.dir.join(subdir);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let (ex0, events) = event_script(cfg)?;
    let mut s = durable_session(&ex0.catalog, &ex0.constraints, &dir, None, &cfg.monitor)?;
    for ev in &events {
        s.apply(ev)?;
    }
    let base_rows = s.bcdb().to_db_snapshot(s.epoch()).base_rows();
    let want = state_bytes(&s);
    drop(s);

    // Full replay first: a backend over an empty directory can load no
    // snapshot, forcing the journal-only path over the same file.
    let empty = DiskBackend::new(dir.join("no-snapshots"))?;
    let (full_session, full_rep) = MonitorSession::recover(
        ex0.catalog.clone(),
        ex0.constraints.clone(),
        dir.join("wal.journal"),
        Box::new(empty),
    )?;
    if state_bytes(&full_session) != want {
        divergences.push(format!("{subdir}: full-replay recovery diverged"));
    }
    drop(full_session);
    let (snap_session, rep) = recover_from(&ex0.catalog, &ex0.constraints, &dir)?;
    if state_bytes(&snap_session) != want {
        divergences.push(format!("{subdir}: snapshot recovery diverged"));
    }
    if rep.snapshot_loaded.is_none() {
        divergences.push(format!("{subdir}: no snapshot loadable after a clean run"));
    }
    if rep.wal_tail_records >= rep.total_records && rep.total_records > 0 {
        divergences.push(format!(
            "{subdir}: WAL tail ({}) did not shrink below the full journal ({})",
            rep.wal_tail_records, rep.total_records
        ));
    }
    Ok(ScaleStats {
        base_rows,
        total_records: rep.total_records,
        wal_tail_records: rep.wal_tail_records,
        recovery_ns: rep.recovery_ns,
        full_replay_ns: full_rep.recovery_ns,
    })
}

/// Runs the script at two dataset scales and measures unified recovery
/// against full journal replay. Hard gates (recorded as divergences):
/// each scale must recover from a snapshot with a WAL tail strictly
/// shorter than the journal, and on the large dataset snapshot-seeded
/// recovery must beat full replay outright — cold-start cost tracks the
/// tail, not the dataset.
pub fn tail_scaling(
    cfg: &CrashStormConfig,
    divergences: &mut Vec<String>,
) -> Result<TailScaling, MonitorError> {
    let small = scale_run(cfg, "scale-small", divergences)?;
    let mut large_cfg = cfg.clone();
    large_cfg.scenario = ScenarioConfig {
        wallets: cfg.scenario.wallets * 3,
        blocks: cfg.scenario.blocks * 2,
        txs_per_block: cfg.scenario.txs_per_block * 2,
        pending_txs: cfg.scenario.pending_txs * 2,
        ..cfg.scenario.clone()
    };
    let large = scale_run(&large_cfg, "scale-large", divergences)?;
    if large.base_rows <= small.base_rows {
        divergences.push(format!(
            "scale probe is not probing: large base ({}) <= small base ({})",
            large.base_rows, small.base_rows
        ));
    }
    if large.recovery_ns >= large.full_replay_ns {
        divergences.push(format!(
            "large-scale snapshot recovery ({} ns) not faster than full replay ({} ns)",
            large.recovery_ns, large.full_replay_ns
        ));
    }
    Ok(TailScaling { small, large })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    #[test]
    fn crashstorm_smoke_runs_clean() {
        let mut cfg = CrashStormConfig::new(3, 11, scratch_dir("crashstorm_smoke"));
        cfg.max_crash_points = 12;
        let report = run_crashstorm(&cfg).expect("storm runs");
        assert!(report.write_boundaries > 0);
        assert!(report.crash_points_tested > 0 && report.crash_points_tested <= 12);
        assert_eq!(report.crashes_fired, report.crash_points_tested);
        assert!(report.snapshot_recoveries > 0, "some recoveries use snapshots");
        let ts = report.tail_scaling.as_ref().expect("scaling probe ran");
        assert!(ts.large.base_rows > ts.small.base_rows);
        assert!(
            report.divergences.is_empty(),
            "divergences: {:#?}",
            report.divergences
        );
    }

    #[test]
    fn event_script_is_deterministic() {
        let cfg = CrashStormConfig::new(4, 7, scratch_dir("crashstorm_det"));
        let (_, a) = event_script(&cfg).unwrap();
        let (_, b) = event_script(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.encode(), y.encode());
        }
    }
}
