//! The append-only, checksummed chain-event journal.
//!
//! Format v2: a header line `bcdb-journal v2`, then one record per line:
//!
//! ```text
//! E <seq> <epoch> <payload> <crc32-hex>     — a chain event
//! S <seq> <epoch> <snapshot-id> <crc32-hex> — a snapshot boundary
//! U <seq> <epoch> <payload> <crc32-hex>     — an inverse delta (undo)
//! ```
//!
//! `seq` is dense from 0, `epoch` is non-decreasing, and the CRC covers
//! everything before its own token. A snapshot-boundary record (`S`) is
//! appended only *after* the named epoch snapshot is fully durable in the
//! session's [`StorageBackend`](bcdb_storage::StorageBackend), so the
//! journal is the single recovery log: load the newest loadable snapshot
//! named by an `S` record, then replay only the records after it — the
//! WAL tail. An undo record (`U`) is appended after each incrementally
//! applied epoch-advancing event and carries that event's inverse delta
//! ([`UndoRecord`]); recovery seeds the session's reorg undo stack from
//! the `U` records *before* the WAL tail (tail events regenerate their
//! own undos during replay), so reorg undo and crash recovery share one
//! log. The reader is backward-compatible with `bcdb-journal v1` files
//! (which simply contain no `S` or `U` records).
//!
//! Recovery ([`Journal::recover`]) reads the longest valid prefix —
//! stopping at the first torn line, checksum mismatch, sequence gap, or
//! epoch regression — truncates the file to that prefix, and returns the
//! decoded records. A record is only trusted whole: a partially flushed
//! tail is dropped, never patched.
//!
//! Writes go through a [`DurableFile`], so the crash-point harness can
//! kill the journal mid-line, and a [`SyncPolicy`] decides when the
//! unsynced tail becomes durable: every record, only on epoch-advancing
//! records, or only on explicit [`Journal::sync`] calls.

use crate::event::{ChainEvent, UndoRecord};
use bcdb_storage::durable::{CrashController, DurableFile, SyncPolicy};
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

pub use bcdb_storage::codec::crc32;

/// First line of a v1 journal file (still accepted by the reader).
pub const JOURNAL_HEADER: &str = "bcdb-journal v1";

/// First line of every journal file this crate writes.
pub const JOURNAL_HEADER_V2: &str = "bcdb-journal v2";

/// What one journal record carries.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEntry {
    /// An observed chain event (an `E` line).
    Event(ChainEvent),
    /// A snapshot boundary (an `S` line): the state *after* the preceding
    /// records equals the named, fully-durable snapshot.
    SnapshotBoundary {
        /// The backend snapshot id.
        snapshot: String,
    },
    /// An inverse delta (a `U` line): executing it reverts the
    /// epoch-advancing event most recently applied before it.
    Undo(UndoRecord),
}

/// One validated journal record.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// Dense sequence number, starting at 0.
    pub seq: u64,
    /// The monitor epoch at which the record was written (for events:
    /// *before* any epoch advance the event itself causes; for snapshot
    /// boundaries: the epoch the snapshot captures).
    pub epoch: u64,
    /// The record payload.
    pub entry: JournalEntry,
}

impl JournalRecord {
    /// The chain event, if this is an `E` record.
    pub fn event(&self) -> Option<&ChainEvent> {
        match &self.entry {
            JournalEntry::Event(ev) => Some(ev),
            _ => None,
        }
    }

    /// The inverse delta, if this is a `U` record.
    pub fn undo(&self) -> Option<&UndoRecord> {
        match &self.entry {
            JournalEntry::Undo(undo) => Some(undo),
            _ => None,
        }
    }
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: DurableFile,
    next_seq: u64,
    policy: SyncPolicy,
}

/// The result of [`Journal::recover`]: the valid prefix, what was lost,
/// and the journal reopened for appending after the truncation point.
#[derive(Debug)]
pub struct Recovery {
    /// The journal, truncated to its valid prefix and ready to append.
    pub journal: Journal,
    /// Every record in the valid prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded from the tail (0 for a clean journal).
    pub dropped_bytes: u64,
    /// Newline-terminated lines discarded (a torn final line without a
    /// newline counts as one).
    pub dropped_lines: usize,
}

impl Recovery {
    /// Snapshot-boundary records in the valid prefix, oldest first, as
    /// `(record index, snapshot id)`.
    pub fn snapshot_boundaries(&self) -> impl Iterator<Item = (usize, &str)> {
        self.records.iter().enumerate().filter_map(|(i, r)| match &r.entry {
            JournalEntry::SnapshotBoundary { snapshot } => Some((i, snapshot.as_str())),
            _ => None,
        })
    }
}

fn format_entry(seq: u64, epoch: u64, entry: &JournalEntry) -> String {
    let body = match entry {
        JournalEntry::Event(event) => format!("E {seq} {epoch} {}", event.encode()),
        JournalEntry::SnapshotBoundary { snapshot } => format!("S {seq} {epoch} {snapshot}"),
        JournalEntry::Undo(undo) => format!("U {seq} {epoch} {}", undo.encode()),
    };
    let crc = crc32(body.as_bytes());
    format!("{body} {crc:08x}\n")
}

/// Parses one line as a record; `expected_seq`/`min_epoch` enforce the
/// dense-sequence and monotone-epoch invariants.
fn parse_record(line: &str, expected_seq: u64, min_epoch: u64) -> Option<JournalRecord> {
    let (body, crc_tok) = line.rsplit_once(' ')?;
    let crc = u32::from_str_radix(crc_tok, 16).ok()?;
    if crc_tok.len() != 8 || crc32(body.as_bytes()) != crc {
        return None;
    }
    let (kind, rest) = body.split_once(' ')?;
    let (seq_tok, rest) = rest.split_once(' ')?;
    let (epoch_tok, payload) = rest.split_once(' ')?;
    let seq: u64 = seq_tok.parse().ok()?;
    let epoch: u64 = epoch_tok.parse().ok()?;
    if seq != expected_seq || epoch < min_epoch {
        return None;
    }
    let entry = match kind {
        "E" => JournalEntry::Event(ChainEvent::decode(payload).ok()?),
        "S" if !payload.is_empty() && !payload.contains(char::is_whitespace) => {
            JournalEntry::SnapshotBoundary {
                snapshot: payload.to_string(),
            }
        }
        "U" => JournalEntry::Undo(UndoRecord::decode(payload).ok()?),
        _ => return None,
    };
    Some(JournalRecord { seq, epoch, entry })
}

/// Byte offset just past the header line, if `bytes` starts with a valid
/// v1 or v2 header terminated by a newline.
fn header_end(bytes: &[u8]) -> Option<usize> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let first = &bytes[..nl];
    (first == JOURNAL_HEADER.as_bytes() || first == JOURNAL_HEADER_V2.as_bytes()).then_some(nl + 1)
}

impl Journal {
    /// Creates (or truncates) a journal at `path` with the default
    /// [`SyncPolicy::Always`] and no crash injection.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        Journal::create_with(path, SyncPolicy::Always, None)
    }

    /// Creates (or truncates) a journal at `path`, writing through `ctl`
    /// (if given) for crash-point injection, flushing per `policy`.
    pub fn create_with(
        path: impl Into<PathBuf>,
        policy: SyncPolicy,
        ctl: Option<CrashController>,
    ) -> std::io::Result<Journal> {
        let path = path.into();
        let mut file = DurableFile::create(&path, ctl)?;
        file.write_chunk(format!("{JOURNAL_HEADER_V2}\n").as_bytes())?;
        file.sync()?;
        Ok(Journal {
            path,
            file,
            next_seq: 0,
            policy,
        })
    }

    /// The sequence number the next [`append`](Journal::append) will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The journal's flush policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    fn append_entry(&mut self, epoch: u64, entry: &JournalEntry) -> std::io::Result<u64> {
        let _span = bcdb_telemetry::probes::MONITOR_JOURNAL_APPEND_NS.span();
        let seq = self.next_seq;
        let line = format_entry(seq, epoch, entry);
        self.file.write_chunk(line.as_bytes())?;
        let advances = match entry {
            JournalEntry::Event(ev) => ev.advances_epoch(),
            // Boundaries and undos belong to an epoch edge: sync them.
            JournalEntry::SnapshotBoundary { .. } | JournalEntry::Undo(_) => true,
        };
        match self.policy {
            SyncPolicy::Always => self.file.sync()?,
            SyncPolicy::EpochBoundary if advances => self.file.sync()?,
            SyncPolicy::EpochBoundary | SyncPolicy::Never => {}
        }
        self.next_seq += 1;
        Ok(seq)
    }

    /// Appends one event record observed at `epoch`; returns its sequence
    /// number. The line reaches the OS before returning (a process crash
    /// cannot lose it); whether it is *machine-crash* durable is governed
    /// by the [`SyncPolicy`].
    pub fn append(&mut self, epoch: u64, event: &ChainEvent) -> std::io::Result<u64> {
        self.append_entry(epoch, &JournalEntry::Event(event.clone()))
    }

    /// Appends a snapshot-boundary record naming an (already durable)
    /// backend snapshot of the state at `epoch`. Always synced — a
    /// boundary the recovery path cannot trust is worthless.
    pub fn append_snapshot_boundary(
        &mut self,
        epoch: u64,
        snapshot: &str,
    ) -> std::io::Result<u64> {
        if snapshot.is_empty() || snapshot.contains(char::is_whitespace) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("snapshot id {snapshot:?} must be non-empty and whitespace-free"),
            ));
        }
        let seq = self.append_entry(
            epoch,
            &JournalEntry::SnapshotBoundary {
                snapshot: snapshot.to_string(),
            },
        )?;
        self.file.sync()?;
        Ok(seq)
    }

    /// Appends an undo record: the inverse delta of the epoch-advancing
    /// event applied just before it, written at the *post-advance* epoch.
    /// Synced like an epoch-advancing event (the undo is part of the
    /// block's durability story — a reorg must be able to find it).
    pub fn append_undo(&mut self, epoch: u64, undo: &UndoRecord) -> std::io::Result<u64> {
        self.append_entry(epoch, &JournalEntry::Undo(undo.clone()))
    }

    /// Makes every appended record durable now, regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync()
    }

    /// Opens the journal at `path` with default policy and no crash
    /// injection; see [`recover_with`](Journal::recover_with).
    pub fn recover(path: impl Into<PathBuf>) -> std::io::Result<Recovery> {
        Journal::recover_with(path, SyncPolicy::Always, None)
    }

    /// Opens the journal at `path`, validates it line by line (v1 and v2
    /// headers both accepted), truncates the file to its longest valid
    /// prefix, and returns the prefix's records. A missing or empty file
    /// recovers to a fresh (v2) journal. The reopened journal appends
    /// under `policy` and `ctl`.
    pub fn recover_with(
        path: impl Into<PathBuf>,
        policy: SyncPolicy,
        ctl: Option<CrashController>,
    ) -> std::io::Result<Recovery> {
        let _span = bcdb_telemetry::probes::MONITOR_JOURNAL_REPLAY_NS.span();
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        // The header must be intact; a corrupt header forfeits the file.
        let Some(hdr_end) = header_end(&bytes) else {
            let dropped_bytes = bytes.len() as u64;
            let dropped_lines = String::from_utf8_lossy(&bytes).lines().count();
            return Ok(Recovery {
                journal: Journal::create_with(path, policy, ctl)?,
                records: Vec::new(),
                dropped_bytes,
                dropped_lines,
            });
        };

        let mut records = Vec::new();
        // Byte offset of the end of the valid prefix (starts after the
        // header line and grows per validated record).
        let mut valid_end = hdr_end;
        let mut cursor = valid_end;
        while cursor < bytes.len() {
            // A record is only complete if its newline made it to disk.
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                break; // torn final line
            };
            // Slice the raw bytes, not the lossy text: corruption can
            // inject arbitrary bytes, and lossy replacement shifts byte
            // offsets. A non-UTF-8 line is simply an invalid record.
            let Ok(line) = std::str::from_utf8(&bytes[cursor..cursor + nl]) else {
                break;
            };
            let min_epoch = records.last().map_or(0, |r: &JournalRecord| r.epoch);
            match parse_record(line, records.len() as u64, min_epoch) {
                Some(rec) => {
                    records.push(rec);
                    cursor += nl + 1;
                    valid_end = cursor;
                }
                None => break,
            }
        }

        let dropped_bytes = (bytes.len() - valid_end) as u64;
        let dropped_lines = String::from_utf8_lossy(&bytes[valid_end..]).lines().count();
        if dropped_bytes > 0 {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_end as u64)?;
        }
        let file = DurableFile::open_append(&path, ctl)?;
        Ok(Recovery {
            journal: Journal {
                path,
                file,
                next_seq: records.len() as u64,
                policy,
            },
            records,
            dropped_bytes,
            dropped_lines,
        })
    }
}

/// Simulates a torn write: the final line keeps only its first
/// `keep_bytes` bytes (and loses its newline). Returns the number of
/// bytes removed. Header-only journals (with or without their trailing
/// newline), headerless files, and empty files are left untouched; a
/// file whose final line is already torn tears it further.
pub fn tear_last_record(path: &Path, keep_bytes: u64) -> std::io::Result<u64> {
    let bytes = std::fs::read(path)?;
    let Some(hdr_end) = header_end(&bytes) else {
        return Ok(0);
    };
    if bytes.len() <= hdr_end {
        return Ok(0);
    }
    // Start of the last line: after the last newline that isn't the
    // file-final byte (the final line may already lack its newline).
    let search_end = if bytes[bytes.len() - 1] == b'\n' {
        bytes.len() - 1
    } else {
        bytes.len()
    };
    let last_start = bytes[hdr_end..search_end]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(hdr_end, |p| hdr_end + p + 1);
    let line_len = (bytes.len() - last_start) as u64;
    let new_len = last_start as u64 + keep_bytes.min(line_len.saturating_sub(1));
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(new_len)?;
    Ok(bytes.len() as u64 - new_len)
}

/// Simulates a truncated tail: removes the last `records` complete
/// (newline-terminated) records. A torn trailing fragment is removed
/// first without counting. Returns the number of complete records
/// actually removed (bounded by how many the journal has); header-only
/// and headerless files are left untouched.
pub fn drop_tail_records(path: &Path, records: usize) -> std::io::Result<usize> {
    let bytes = std::fs::read(path)?;
    let Some(hdr_end) = header_end(&bytes) else {
        return Ok(0);
    };
    let mut end = bytes.len();
    // Shed a torn final fragment (no trailing newline) first.
    if end > hdr_end && bytes[end - 1] != b'\n' {
        end = bytes[hdr_end..end]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(hdr_end, |p| hdr_end + p + 1);
    }
    let mut removed = 0;
    while removed < records && end > hdr_end {
        let start = bytes[hdr_end..end - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(hdr_end, |p| hdr_end + p + 1);
        end = start;
        removed += 1;
    }
    if end < bytes.len() {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(end as u64)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_path;
    use std::io::Write;

    fn ev(name: &str) -> ChainEvent {
        ChainEvent::TxEvicted {
            name: name.to_string(),
        }
    }

    fn filled(path: &Path, n: usize) -> Journal {
        let mut j = Journal::create(path).unwrap();
        for i in 0..n {
            // Epochs advance every other record to exercise monotonicity.
            j.append((i / 2) as u64, &ev(&format!("t{i}"))).unwrap();
        }
        j
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_roundtrip_recovers_everything() {
        let path = scratch_path("journal_clean");
        filled(&path, 5);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.dropped_lines, 0);
        assert_eq!(rec.journal.next_seq(), 5);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.event(), Some(&ev(&format!("t{i}"))));
        }
    }

    #[test]
    fn v1_headers_are_still_readable() {
        let path = scratch_path("journal_v1_compat");
        // Hand-write a v1 file: old header, E records only.
        let mut body = format!("{JOURNAL_HEADER}\n");
        for i in 0..3 {
            body.push_str(&format_entry(i, 0, &JournalEntry::Event(ev(&format!("t{i}")))));
        }
        std::fs::write(&path, body).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.dropped_bytes, 0);
        // Appending to the recovered v1 file keeps it readable.
        let mut j = rec.journal;
        j.append(1, &ev("late")).unwrap();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 4);
    }

    #[test]
    fn snapshot_boundaries_roundtrip() {
        let path = scratch_path("journal_boundaries");
        let mut j = Journal::create(&path).unwrap();
        j.append(0, &ev("t0")).unwrap();
        j.append_snapshot_boundary(1, "snap-00000000-e1.bcs").unwrap();
        j.append(1, &ev("t1")).unwrap();
        j.append_snapshot_boundary(2, "snap-00000001-e2.bcs").unwrap();
        j.append(2, &ev("t2")).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 5);
        let boundaries: Vec<_> = rec.snapshot_boundaries().collect();
        assert_eq!(
            boundaries,
            vec![(1, "snap-00000000-e1.bcs"), (3, "snap-00000001-e2.bcs")]
        );
        assert_eq!(rec.records[1].epoch, 1);
        assert!(rec.records[1].event().is_none());
    }

    #[test]
    fn undo_records_roundtrip() {
        use crate::event::UndoOp;
        let path = scratch_path("journal_undo");
        let mut j = Journal::create(&path).unwrap();
        j.append(0, &ev("t0")).unwrap();
        let undo = UndoRecord {
            ops: vec![
                UndoOp::RemoveBase(vec![(
                    "Rel".to_string(),
                    bcdb_storage::tuple![1_i64, "a b"],
                )]),
                UndoOp::InsertTxs(vec![(0, "t0".to_string(), vec![])]),
            ],
        };
        j.append_undo(1, &undo).unwrap();
        j.append(1, &ev("t1")).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[1].epoch, 1);
        assert_eq!(rec.records[1].undo(), Some(&undo));
        assert!(rec.records[1].event().is_none());
        assert!(rec.records[0].undo().is_none());
    }

    #[test]
    fn bad_snapshot_ids_are_rejected_at_append() {
        let path = scratch_path("journal_bad_snap_id");
        let mut j = Journal::create(&path).unwrap();
        assert!(j.append_snapshot_boundary(0, "").is_err());
        assert!(j.append_snapshot_boundary(0, "two words").is_err());
        assert_eq!(j.next_seq(), 0, "rejected appends consume no seq");
    }

    #[test]
    fn recover_continues_the_sequence() {
        let path = scratch_path("journal_continue");
        filled(&path, 3);
        let mut rec = Journal::recover(&path).unwrap();
        rec.journal.append(9, &ev("late")).unwrap();
        let rec2 = Journal::recover(&path).unwrap();
        assert_eq!(rec2.records.len(), 4);
        assert_eq!(rec2.records[3].seq, 3);
        assert_eq!(rec2.records[3].epoch, 9);
    }

    #[test]
    fn torn_write_drops_exactly_the_torn_record() {
        for keep in [0u64, 1, 7, 1000] {
            let path = scratch_path(&format!("journal_torn_{keep}"));
            filled(&path, 4);
            let removed = tear_last_record(&path, keep).unwrap();
            assert!(removed > 0, "keep={keep} should remove at least a byte");
            let rec = Journal::recover(&path).unwrap();
            assert_eq!(rec.records.len(), 3, "keep={keep}");
            assert!(rec.dropped_bytes > 0 || keep == 0);
            // Appending after recovery works and re-reads cleanly.
            let mut j = rec.journal;
            j.append(2, &ev("fresh")).unwrap();
            assert_eq!(Journal::recover(&path).unwrap().records.len(), 4);
        }
    }

    #[test]
    fn tear_is_sane_on_degenerate_journals() {
        // Header-only (fresh journal): nothing to tear.
        let path = scratch_path("journal_tear_headeronly");
        Journal::create(&path).unwrap();
        assert_eq!(tear_last_record(&path, 0).unwrap(), 0);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);

        // Header missing its trailing newline: untouched.
        let path = scratch_path("journal_tear_noheadernl");
        std::fs::write(&path, JOURNAL_HEADER_V2.as_bytes()).unwrap();
        assert_eq!(tear_last_record(&path, 0).unwrap(), 0);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            JOURNAL_HEADER_V2.as_bytes(),
            "degenerate file untouched"
        );

        // Headerless and empty files: untouched.
        let path = scratch_path("journal_tear_headerless");
        std::fs::write(&path, b"not a journal\nE 0 0 x y\n").unwrap();
        assert_eq!(tear_last_record(&path, 0).unwrap(), 0);
        let path = scratch_path("journal_tear_empty");
        std::fs::write(&path, b"").unwrap();
        assert_eq!(tear_last_record(&path, 0).unwrap(), 0);

        // An already-torn final line is torn further, not mis-indexed.
        let path = scratch_path("journal_tear_again");
        filled(&path, 2);
        tear_last_record(&path, 5).unwrap();
        let len_after_first = std::fs::read(&path).unwrap().len();
        tear_last_record(&path, 2).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.len() < len_after_first);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn truncated_tail_drops_whole_records() {
        let path = scratch_path("journal_trunc");
        filled(&path, 5);
        assert_eq!(drop_tail_records(&path, 2).unwrap(), 2);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.dropped_bytes, 0, "truncation leaves a valid file");
        // Dropping more records than exist is bounded.
        assert_eq!(drop_tail_records(&path, 10).unwrap(), 3);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);
    }

    #[test]
    fn drop_tail_is_sane_on_degenerate_journals() {
        // Header-only: nothing to drop.
        let path = scratch_path("journal_drop_headeronly");
        Journal::create(&path).unwrap();
        assert_eq!(drop_tail_records(&path, 3).unwrap(), 0);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);

        // Headerless: untouched.
        let path = scratch_path("journal_drop_headerless");
        std::fs::write(&path, b"garbage\nmore\n").unwrap();
        assert_eq!(drop_tail_records(&path, 1).unwrap(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), b"garbage\nmore\n");

        // A torn final fragment is shed without counting.
        let path = scratch_path("journal_drop_torn");
        filled(&path, 3);
        tear_last_record(&path, 4).unwrap();
        assert_eq!(drop_tail_records(&path, 1).unwrap(), 1);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn never_policy_crash_recovers_a_valid_strict_prefix() {
        use bcdb_storage::durable::{CrashPoint, CrashStyle};
        // Under `SyncPolicy::Never` every record rides in the unsynced
        // tail, so a crash may lose any suffix of the stream — including
        // torn and reordered tails from a volatile write cache. Whatever
        // survives must still parse as a *strict prefix* of what was
        // appended, in order, with nothing corrupt and nothing invented.
        for style in [
            CrashStyle::DropUnsynced,
            CrashStyle::TornWrite,
            CrashStyle::Reorder,
        ] {
            for crash_after in [0usize, 1, 3, 7] {
                let path = scratch_path(&format!(
                    "journal_never_prefix_{style:?}_{crash_after}"
                ));
                let ctl = CrashController::new();
                let mut j =
                    Journal::create_with(&path, SyncPolicy::Never, Some(ctl.clone()))
                        .unwrap();
                // A mid-stream explicit sync pins a prefix: everything
                // through it must survive any later crash.
                let synced = crash_after.min(2);
                for i in 0..synced {
                    j.append((i / 2) as u64, &ev(&format!("t{i}"))).unwrap();
                }
                j.sync().unwrap();
                for i in synced..crash_after {
                    j.append((i / 2) as u64, &ev(&format!("t{i}"))).unwrap();
                }
                ctl.arm(CrashPoint {
                    boundary: ctl.boundaries() + 1,
                    style,
                });
                let err = j
                    .append((crash_after / 2) as u64, &ev(&format!("t{crash_after}")))
                    .unwrap_err();
                assert!(
                    bcdb_storage::durable::is_injected_crash(&err),
                    "{style:?}/{crash_after}: {err}"
                );
                ctl.disarm();
                drop(j);

                let rec = Journal::recover(&path).unwrap();
                let n = rec.records.len();
                assert!(
                    n <= crash_after + 1,
                    "{style:?}/{crash_after}: recovered {n} of {crash_after} appends"
                );
                assert!(
                    n >= synced,
                    "{style:?}/{crash_after}: lost explicitly synced records \
                     ({n} < {synced})"
                );
                for (i, r) in rec.records.iter().enumerate() {
                    assert_eq!(r.seq, i as u64, "{style:?}/{crash_after}");
                    assert_eq!(r.epoch, (i / 2) as u64, "{style:?}/{crash_after}");
                    let event = r.event().expect("event record");
                    assert_eq!(
                        event,
                        &ev(&format!("t{i}")),
                        "{style:?}/{crash_after}: record {i} corrupt"
                    );
                }

                // Recovery truncated the file to that prefix: a second
                // recovery sees exactly the same records, and appending
                // continues the sequence cleanly.
                let mut j = rec.journal;
                j.append(5, &ev("post-crash")).unwrap();
                let rec2 = Journal::recover(&path).unwrap();
                assert_eq!(rec2.records.len(), n + 1, "{style:?}/{crash_after}");
                assert_eq!(rec2.records[n].seq, n as u64);
                assert_eq!(rec2.records[n].event(), Some(&ev("post-crash")));
            }
        }
    }

    #[test]
    fn sync_policies_govern_crash_durability() {
        use bcdb_storage::durable::{CrashPoint, CrashStyle};
        // Never: records ride in the unsynced tail; a crash loses them.
        let path = scratch_path("journal_policy_never");
        let ctl = CrashController::new();
        let mut j =
            Journal::create_with(&path, SyncPolicy::Never, Some(ctl.clone())).unwrap();
        j.append(0, &ev("a")).unwrap();
        j.append(0, &ev("b")).unwrap();
        ctl.arm(CrashPoint {
            boundary: ctl.boundaries() + 1,
            style: CrashStyle::DropUnsynced,
        });
        assert!(j.append(0, &ev("c")).is_err());
        ctl.disarm();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);

        // Always: every record survives any later crash.
        let path = scratch_path("journal_policy_always");
        let ctl = CrashController::new();
        let mut j =
            Journal::create_with(&path, SyncPolicy::Always, Some(ctl.clone())).unwrap();
        j.append(0, &ev("a")).unwrap();
        j.append(0, &ev("b")).unwrap();
        ctl.arm(CrashPoint {
            boundary: ctl.boundaries() + 1,
            style: CrashStyle::DropUnsynced,
        });
        assert!(j.append(0, &ev("c")).is_err());
        ctl.disarm();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 2);

        // EpochBoundary: the advancing record syncs everything before it.
        let path = scratch_path("journal_policy_epoch");
        let ctl = CrashController::new();
        let mut j =
            Journal::create_with(&path, SyncPolicy::EpochBoundary, Some(ctl.clone())).unwrap();
        j.append(0, &ev("a")).unwrap();
        j.append(0, &ev("b")).unwrap();
        // A mined block advances the epoch -> synced through here.
        j.append(
            0,
            &ChainEvent::TxMined {
                mined: vec![],
                base: vec![],
                pending: vec![],
            },
        )
        .unwrap();
        j.append(1, &ev("d")).unwrap(); // unsynced tail
        ctl.arm(CrashPoint {
            boundary: ctl.boundaries() + 1,
            style: CrashStyle::DropUnsynced,
        });
        assert!(j.append(1, &ev("e")).is_err());
        ctl.disarm();
        assert_eq!(
            Journal::recover(&path).unwrap().records.len(),
            3,
            "everything up to the epoch boundary survives; the tail is lost"
        );
    }

    #[test]
    fn corrupt_middle_byte_truncates_from_there() {
        let path = scratch_path("journal_flip");
        filled(&path, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside record 1's line (header + record 0 precede it).
        let mut starts = vec![];
        let mut pos = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                starts.push(pos);
                pos = i + 1;
            }
        }
        let target = starts[2] + 5; // inside the second record
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "everything after the flip is dropped");
        assert!(rec.dropped_bytes > 0);
        assert!(rec.dropped_lines >= 3);
    }

    #[test]
    fn missing_empty_and_headerless_files_recover_fresh() {
        let path = scratch_path("journal_missing");
        let _ = std::fs::remove_file(&path);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert_eq!(rec.journal.next_seq(), 0);

        std::fs::write(&path, b"").unwrap();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);

        std::fs::write(&path, b"not a journal\nE 0 0 V x deadbeef\n").unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert!(rec.dropped_bytes > 0);
        // The file was reset to a usable journal.
        let mut j = rec.journal;
        j.append(0, &ev("x")).unwrap();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn sequence_gaps_and_epoch_regressions_invalidate_the_tail() {
        let path = scratch_path("journal_seqgap");
        filled(&path, 2);
        // Append a record with a gapped seq (3 instead of 2) — valid CRC.
        let line = format_entry(3, 1, &JournalEntry::Event(ev("gap")));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(line.as_bytes()).unwrap();
        drop(f);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 2);

        let path = scratch_path("journal_epochback");
        let mut j = Journal::create(&path).unwrap();
        j.append(5, &ev("a")).unwrap();
        let line = format_entry(1, 4, &JournalEntry::Event(ev("back"))); // epoch regressed
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(line.as_bytes()).unwrap();
        drop(f);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }
}
