//! The append-only, checksummed chain-event journal.
//!
//! Format: a header line `bcdb-journal v1`, then one record per line:
//!
//! ```text
//! E <seq> <epoch> <payload> <crc32-hex>
//! ```
//!
//! `seq` is dense from 0, `epoch` is non-decreasing, and the CRC covers
//! everything before its own token. Recovery ([`Journal::recover`]) reads
//! the longest valid prefix — stopping at the first torn line, checksum
//! mismatch, sequence gap, or epoch regression — truncates the file to
//! that prefix, and returns the decoded records so a
//! [`MonitorSession`](crate::MonitorSession) can be rebuilt by replay.
//! A record is only trusted whole: a partially flushed tail is dropped,
//! never patched.

use crate::event::ChainEvent;
use std::fs::{File, OpenOptions};
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

/// First line of every journal file.
pub const JOURNAL_HEADER: &str = "bcdb-journal v1";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise — no
/// table, no external crate. Journal lines are short; speed is irrelevant
/// next to the `fsync`-free append itself.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One validated journal record.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalRecord {
    /// Dense sequence number, starting at 0.
    pub seq: u64,
    /// The monitor epoch *at which the event was observed* (before any
    /// epoch advance the event itself causes).
    pub epoch: u64,
    /// The event.
    pub event: ChainEvent,
}

/// An open journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    next_seq: u64,
}

/// The result of [`Journal::recover`]: the valid prefix, what was lost,
/// and the journal reopened for appending after the truncation point.
#[derive(Debug)]
pub struct Recovery {
    /// The journal, truncated to its valid prefix and ready to append.
    pub journal: Journal,
    /// Every record in the valid prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded from the tail (0 for a clean journal).
    pub dropped_bytes: u64,
    /// Newline-terminated lines discarded (a torn final line without a
    /// newline counts as one).
    pub dropped_lines: usize,
}

fn format_record(seq: u64, epoch: u64, event: &ChainEvent) -> String {
    let body = format!("E {seq} {epoch} {}", event.encode());
    let crc = crc32(body.as_bytes());
    format!("{body} {crc:08x}\n")
}

/// Parses one line as a record; `expected_seq`/`min_epoch` enforce the
/// dense-sequence and monotone-epoch invariants.
fn parse_record(line: &str, expected_seq: u64, min_epoch: u64) -> Option<JournalRecord> {
    let (body, crc_tok) = line.rsplit_once(' ')?;
    let crc = u32::from_str_radix(crc_tok, 16).ok()?;
    if crc_tok.len() != 8 || crc32(body.as_bytes()) != crc {
        return None;
    }
    let rest = body.strip_prefix("E ")?;
    let (seq_tok, rest) = rest.split_once(' ')?;
    let (epoch_tok, payload) = rest.split_once(' ')?;
    let seq: u64 = seq_tok.parse().ok()?;
    let epoch: u64 = epoch_tok.parse().ok()?;
    if seq != expected_seq || epoch < min_epoch {
        return None;
    }
    let event = ChainEvent::decode(payload).ok()?;
    Some(JournalRecord { seq, epoch, event })
}

impl Journal {
    /// Creates (or truncates) a journal at `path` and writes the header.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        let mut file = File::create(&path)?;
        file.write_all(JOURNAL_HEADER.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(Journal {
            path,
            file,
            next_seq: 0,
        })
    }

    /// The sequence number the next [`append`](Journal::append) will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record observed at `epoch`; returns its sequence
    /// number. The line is flushed to the OS before returning, so a
    /// process crash (as opposed to a machine crash) cannot lose it.
    pub fn append(&mut self, epoch: u64, event: &ChainEvent) -> std::io::Result<u64> {
        let _span = bcdb_telemetry::probes::MONITOR_JOURNAL_APPEND_NS.span();
        let seq = self.next_seq;
        let line = format_record(seq, epoch, event);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Opens the journal at `path`, validates it line by line, truncates
    /// the file to its longest valid prefix, and returns the prefix's
    /// records. A missing or empty file recovers to a fresh journal.
    pub fn recover(path: impl Into<PathBuf>) -> std::io::Result<Recovery> {
        let _span = bcdb_telemetry::probes::MONITOR_JOURNAL_REPLAY_NS.span();
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);

        // The header must be intact; a corrupt header forfeits the file.
        let header_ok = text
            .split_once('\n')
            .is_some_and(|(first, _)| first == JOURNAL_HEADER);
        if !header_ok {
            let dropped_bytes = bytes.len() as u64;
            let dropped_lines = text.lines().count();
            return Ok(Recovery {
                journal: Journal::create(path)?,
                records: Vec::new(),
                dropped_bytes,
                dropped_lines,
            });
        }

        let mut records = Vec::new();
        // Byte offset of the end of the valid prefix (starts after the
        // header line and grows per validated record).
        let mut valid_end = JOURNAL_HEADER.len() + 1;
        let mut cursor = valid_end;
        while cursor < bytes.len() {
            // A record is only complete if its newline made it to disk.
            let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') else {
                break; // torn final line
            };
            let line = &text[cursor..cursor + nl];
            let min_epoch = records.last().map_or(0, |r: &JournalRecord| r.epoch);
            match parse_record(line, records.len() as u64, min_epoch) {
                Some(rec) => {
                    records.push(rec);
                    cursor += nl + 1;
                    valid_end = cursor;
                }
                None => break,
            }
        }

        let dropped_bytes = (bytes.len() - valid_end) as u64;
        let dropped_lines = text[valid_end..].lines().count();
        if dropped_bytes > 0 {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_end as u64)?;
        }
        let mut file = OpenOptions::new().append(true).open(&path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Recovery {
            journal: Journal {
                path,
                file,
                next_seq: records.len() as u64,
            },
            records,
            dropped_bytes,
            dropped_lines,
        })
    }
}

/// Simulates a torn write: the final record keeps only its first
/// `keep_bytes` bytes (and loses its newline). Returns the number of
/// bytes removed; a journal with no records is left untouched.
pub fn tear_last_record(path: &Path, keep_bytes: u64) -> std::io::Result<u64> {
    let bytes = std::fs::read(path)?;
    let header_end = JOURNAL_HEADER.len() + 1;
    if bytes.len() <= header_end {
        return Ok(0);
    }
    // Start of the last record: after the second-to-last newline.
    let body = &bytes[header_end..bytes.len() - 1]; // drop trailing newline
    let last_start = header_end
        + body
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
    let line_len = (bytes.len() - last_start) as u64;
    let new_len = last_start as u64 + keep_bytes.min(line_len.saturating_sub(1));
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(new_len)?;
    Ok(bytes.len() as u64 - new_len)
}

/// Simulates a truncated tail: removes the last `records` complete
/// records. Returns the number actually removed (bounded by how many the
/// journal has).
pub fn drop_tail_records(path: &Path, records: usize) -> std::io::Result<usize> {
    let bytes = std::fs::read(path)?;
    let header_end = JOURNAL_HEADER.len() + 1;
    let mut end = bytes.len();
    let mut removed = 0;
    while removed < records && end > header_end {
        let body = &bytes[header_end..end - 1];
        let start = header_end + body.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        end = start;
        removed += 1;
    }
    if removed > 0 {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(end as u64)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_path;

    fn ev(name: &str) -> ChainEvent {
        ChainEvent::TxEvicted {
            name: name.to_string(),
        }
    }

    fn filled(path: &Path, n: usize) -> Journal {
        let mut j = Journal::create(path).unwrap();
        for i in 0..n {
            // Epochs advance every other record to exercise monotonicity.
            j.append((i / 2) as u64, &ev(&format!("t{i}"))).unwrap();
        }
        j
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_roundtrip_recovers_everything() {
        let path = scratch_path("journal_clean");
        filled(&path, 5);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.dropped_bytes, 0);
        assert_eq!(rec.dropped_lines, 0);
        assert_eq!(rec.journal.next_seq(), 5);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.event, ev(&format!("t{i}")));
        }
    }

    #[test]
    fn recover_continues_the_sequence() {
        let path = scratch_path("journal_continue");
        filled(&path, 3);
        let mut rec = Journal::recover(&path).unwrap();
        rec.journal.append(9, &ev("late")).unwrap();
        let rec2 = Journal::recover(&path).unwrap();
        assert_eq!(rec2.records.len(), 4);
        assert_eq!(rec2.records[3].seq, 3);
        assert_eq!(rec2.records[3].epoch, 9);
    }

    #[test]
    fn torn_write_drops_exactly_the_torn_record() {
        for keep in [0u64, 1, 7, 1000] {
            let path = scratch_path(&format!("journal_torn_{keep}"));
            filled(&path, 4);
            let removed = tear_last_record(&path, keep).unwrap();
            assert!(removed > 0, "keep={keep} should remove at least a byte");
            let rec = Journal::recover(&path).unwrap();
            assert_eq!(rec.records.len(), 3, "keep={keep}");
            assert!(rec.dropped_bytes > 0 || keep == 0);
            // Appending after recovery works and re-reads cleanly.
            let mut j = rec.journal;
            j.append(2, &ev("fresh")).unwrap();
            assert_eq!(Journal::recover(&path).unwrap().records.len(), 4);
        }
    }

    #[test]
    fn truncated_tail_drops_whole_records() {
        let path = scratch_path("journal_trunc");
        filled(&path, 5);
        assert_eq!(drop_tail_records(&path, 2).unwrap(), 2);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.dropped_bytes, 0, "truncation leaves a valid file");
        // Dropping more records than exist is bounded.
        assert_eq!(drop_tail_records(&path, 10).unwrap(), 3);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);
    }

    #[test]
    fn corrupt_middle_byte_truncates_from_there() {
        let path = scratch_path("journal_flip");
        filled(&path, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside record 1's line (header + record 0 precede it).
        let mut starts = vec![];
        let mut pos = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                starts.push(pos);
                pos = i + 1;
            }
        }
        let target = starts[2] + 5; // inside the second record
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "everything after the flip is dropped");
        assert!(rec.dropped_bytes > 0);
        assert!(rec.dropped_lines >= 3);
    }

    #[test]
    fn missing_empty_and_headerless_files_recover_fresh() {
        let path = scratch_path("journal_missing");
        let _ = std::fs::remove_file(&path);
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert_eq!(rec.journal.next_seq(), 0);

        std::fs::write(&path, b"").unwrap();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 0);

        std::fs::write(&path, b"not a journal\nE 0 0 V x deadbeef\n").unwrap();
        let rec = Journal::recover(&path).unwrap();
        assert_eq!(rec.records.len(), 0);
        assert!(rec.dropped_bytes > 0);
        // The file was reset to a usable journal.
        let mut j = rec.journal;
        j.append(0, &ev("x")).unwrap();
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn sequence_gaps_and_epoch_regressions_invalidate_the_tail() {
        let path = scratch_path("journal_seqgap");
        filled(&path, 2);
        // Append a record with a gapped seq (3 instead of 2) — valid CRC.
        let line = format_record(3, 1, &ev("gap"));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(line.as_bytes()).unwrap();
        drop(f);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 2);

        let path = scratch_path("journal_epochback");
        let mut j = Journal::create(&path).unwrap();
        j.append(5, &ev("a")).unwrap();
        let line = format_record(1, 4, &ev("back")); // epoch regressed
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(line.as_bytes()).unwrap();
        drop(f);
        assert_eq!(Journal::recover(&path).unwrap().records.len(), 1);
    }
}
