//! Test-only helpers.

use std::path::PathBuf;

/// A scratch file path under the workspace `target/` directory (kept
/// inside the repository tree), unique per `name`. The parent directory
/// is created; any stale file from a previous run is removed.
pub fn scratch_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/monitor-scratch");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}.journal"));
    let _ = std::fs::remove_file(&path);
    path
}

/// A scratch *directory* under `target/`, unique per `name`, wiped of any
/// contents from a previous run.
pub fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/monitor-scratch")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
