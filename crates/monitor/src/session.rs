//! The long-running monitor session.
//!
//! A [`MonitorSession`] holds a [`Solver`] session over a
//! [`BlockchainDb`] and keeps it true under a stream of [`ChainEvent`]s:
//!
//! * **Intra-epoch** events (arrival, eviction) are applied
//!   *incrementally* — [`Solver::add_transaction`] /
//!   [`Solver::remove_transaction`] — never rebuilding from scratch.
//! * **Epoch-advancing** events (mined block, reorg) mutate the base
//!   state `R`. Under the default [`EpochApply::Incremental`] policy the
//!   session treats the event as a batch of deltas — base rows appended
//!   or retracted, pending transactions removed or re-issued — applied
//!   in place through the solver's batch mutators, then advances the
//!   epoch once via [`Solver::advance_epoch`]. Each applied event leaves
//!   an inverse delta ([`UndoRecord`]) on the session's undo stack and
//!   in the journal (`U` records), so a depth-`d` reorg can pop and
//!   replay `d` undos instead of rebuilding. [`EpochApply::Rebuild`]
//!   keeps the old full-rebuild path ([`Solver::replace_db`]) as an
//!   oracle, and [`EpochApply::IncrementalVerified`] runs both and
//!   counts divergences.
//!
//! The monitor *watches* its registered constraints: each event marks
//! dirty only the constraints whose verdict may actually have changed,
//! so [`recheck_dirty`](MonitorSession::recheck_dirty) skips the rest.
//! The dirty rules are conservative and rest on two facts: possible
//! worlds are *consistent subsets* of the pending set (arrival only adds
//! worlds, eviction only removes them), and a constraint's matches can
//! only involve interactions inside the delta transaction's refined
//! `Gq,ind` component. Concretely:
//!
//! * **Arrival**: a cached definite verdict stays clean unless the new
//!   transaction's component contains a transaction writing a relation
//!   the constraint mentions.
//! * **Eviction**: `Holds` stays clean (worlds only disappear); a cached
//!   violation's witness may have vanished, so `Violated` goes dirty.
//! * **Mined / reorg**: the base state changed — everything goes dirty.
//!
//! Re-checks never take the monitor down: a panicking check is caught
//! and reported as [`Verdict::Unknown`], and transient exhaustion
//! (deadline, cancellation, lost worker) is retried under the session's
//! [`RetryPolicy`].

use crate::event::{ChainEvent, NamedPending, NamedTuples, UndoOp, UndoRecord};
use crate::journal::{Journal, JournalRecord};
use bcdb_core::{
    query_components, BlockchainDb, CoreError, DcSatOptions, DcSatStats, GovernedOutcome,
    Precomputed, SharedEnumCache, Solver, SolverStats, Verdict,
};
use bcdb_governor::{BudgetSpec, ExhaustionReason, RetryPolicy};
use bcdb_graph::StealScheduler;
use bcdb_query::DenialConstraint;
use bcdb_storage::{Catalog, ConstraintSet, RelationId, StorageBackend, Tuple, TxId};
use bcdb_telemetry::probes;
use rustc_hash::FxHashSet;
use std::fmt;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What went wrong while applying an event or journaling it.
#[derive(Debug)]
pub enum MonitorError {
    /// An event referenced a relation name absent from the catalog.
    UnknownRelation(String),
    /// An eviction named a transaction that is not pending.
    UnknownTransaction(String),
    /// A delta-form reorg asked for more undo depth than the session
    /// holds journaled inverse deltas for.
    UndoUnavailable {
        /// The requested reorg depth.
        depth: u64,
        /// How many undo records the session holds.
        available: usize,
    },
    /// The underlying database rejected the change.
    Core(CoreError),
    /// The journal could not be written or read.
    Io(std::io::Error),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
            MonitorError::UnknownTransaction(n) => write!(f, "unknown transaction {n:?}"),
            MonitorError::UndoUnavailable { depth, available } => write!(
                f,
                "reorg depth {depth} exceeds the {available} journaled undo record(s)"
            ),
            MonitorError::Core(e) => write!(f, "core error: {e}"),
            MonitorError::Io(e) => write!(f, "journal i/o error: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<CoreError> for MonitorError {
    fn from(e: CoreError) -> Self {
        MonitorError::Core(e)
    }
}

impl From<std::io::Error> for MonitorError {
    fn from(e: std::io::Error) -> Self {
        MonitorError::Io(e)
    }
}

impl From<bcdb_storage::StorageError> for MonitorError {
    fn from(e: bcdb_storage::StorageError) -> Self {
        MonitorError::Core(e.into())
    }
}

impl MonitorError {
    /// Whether this error is a crash injected by the crash-point harness
    /// (see [`bcdb_storage::CrashController`]). A session that hits one
    /// is "dead": discard it and run [`MonitorSession::recover`].
    pub fn is_injected_crash(&self) -> bool {
        match self {
            MonitorError::Io(e) => bcdb_storage::is_injected_crash(e),
            MonitorError::Core(CoreError::Storage(e)) => e.is_injected_crash(),
            _ => false,
        }
    }
}

/// How the session applies epoch-advancing events (mined blocks and
/// reorgs) to its solver state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EpochApply {
    /// Treat the event as a batch of deltas applied in place, advancing
    /// the epoch without rebuilding. The default.
    #[default]
    Incremental,
    /// Rebuild the solver state from the event's full snapshot via
    /// [`Solver::replace_db`] — the oracle the incremental path is
    /// checked against. Delta-form events carry no snapshot and are
    /// applied incrementally regardless.
    Rebuild,
    /// Apply incrementally, then also run the snapshot rebuild as a
    /// shadow oracle and compare: a mismatch increments
    /// [`MonitorStats::apply_divergences`] (the incremental state is
    /// kept). Measures both `block_apply_ns` and `block_rebuild_ns` in
    /// one run.
    IncrementalVerified,
}

/// Tunables for a session's re-checks.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// DCSat options used for every check (the solver supplies its own
    /// epoch-tagged base-verdict hint per check).
    pub opts: DcSatOptions,
    /// Budget for each individual check attempt (and for the base-verdict
    /// probe that fills the cache).
    pub budget: BudgetSpec,
    /// Retry schedule for *transient* failures: deadline exhaustion,
    /// cancellation, and lost or panicked workers. Deterministic limits
    /// (clique/world/tuple) are never retried — the same budget would die
    /// the same way.
    pub retry: RetryPolicy,
    /// Persist an epoch snapshot (and journal its boundary) every N
    /// epoch-advancing events, when a storage backend is attached.
    /// 1 = every advance (the default); 0 = never snapshot.
    pub snapshot_every: u64,
    /// How epoch-advancing events reach the solver state (see
    /// [`EpochApply`]).
    pub epoch_apply: EpochApply,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            opts: DcSatOptions::default(),
            budget: BudgetSpec::UNLIMITED,
            retry: RetryPolicy::NONE,
            snapshot_every: 1,
            epoch_apply: EpochApply::Incremental,
        }
    }
}

/// Counters describing a session's life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events applied, of any kind.
    pub events_applied: u64,
    /// Intra-epoch events applied incrementally.
    pub incremental_applies: u64,
    /// Epoch-advancing events applied as in-place batch deltas.
    pub applies: u64,
    /// Epoch-advancing events that rebuilt the solver state from a full
    /// snapshot — the [`EpochApply::Rebuild`] oracle path plus any
    /// incremental-path fallbacks. *Not* incremented by incremental
    /// applies.
    pub rebuilds: u64,
    /// Incremental epoch applies that bailed out to a snapshot rebuild
    /// (e.g. a mined event whose base was not append-only). Each one also
    /// counts in `rebuilds`.
    pub apply_fallbacks: u64,
    /// Verified-mode epoch applies whose incremental state differed from
    /// the shadow rebuild oracle. Should be zero, always.
    pub apply_divergences: u64,
    /// Verified-mode shadow oracle builds (each timed into
    /// `block_rebuild_ns` without counting as a `rebuilds` state change).
    pub shadow_builds: u64,
    /// Wall nanoseconds spent applying epoch-advancing events as batch
    /// deltas.
    pub block_apply_ns: u64,
    /// Wall nanoseconds spent rebuilding epoch state from snapshots
    /// (oracle path, fallbacks, and verified-mode shadow rebuilds).
    pub block_rebuild_ns: u64,
    /// The subset of `applies` that were wire deltas
    /// ([`ChainEvent::TxMinedDelta`]/[`ChainEvent::ReorgDelta`]) — O(block)
    /// work, no snapshot resolution or reconcile planning.
    pub delta_applies: u64,
    /// Wall nanoseconds spent in those delta applies (also included in
    /// `block_apply_ns`).
    pub delta_apply_ns: u64,
    /// Individual constraint re-checks performed.
    pub rechecks: u64,
    /// Retry attempts beyond each check's first try.
    pub retries: u64,
    /// Checks whose panic was contained into `Verdict::Unknown`.
    pub panics_contained: u64,
    /// Checks that ran with a cached base verdict supplied as a hint.
    pub base_hints_supplied: u64,
    /// Base-verdict probes that filled the cache.
    pub base_probes: u64,
    /// Final verdicts that were `Unknown` after retries.
    pub unknown_verdicts: u64,
    /// Constraints left alone by [`MonitorSession::recheck_dirty`]
    /// because no event since their last check could have changed their
    /// verdict.
    pub rechecks_skipped: u64,
    /// Epoch snapshots persisted to the attached storage backend.
    pub snapshots_persisted: u64,
}

/// What unified recovery ([`MonitorSession::recover`]) found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot the session was seeded from, if any loaded.
    pub snapshot_loaded: Option<String>,
    /// Epoch captured by the loaded snapshot (0 on full replay).
    pub snapshot_epoch: u64,
    /// Snapshot boundaries whose snapshot failed to load (corrupt,
    /// missing, or torn by a crash) and were skipped.
    pub snapshots_rejected: u64,
    /// Records in the journal's valid prefix.
    pub total_records: usize,
    /// Event (`E`) records in the valid prefix — how many events the
    /// crashed session had durably applied.
    pub total_events: usize,
    /// Records replayed after the snapshot boundary: the WAL tail. This —
    /// not `total_records` and not the dataset size — bounds recovery work
    /// beyond the single snapshot load.
    pub wal_tail_records: usize,
    /// Bytes the journal scan discarded from a torn/corrupt tail.
    pub dropped_bytes: u64,
    /// Lines the journal scan discarded.
    pub dropped_lines: usize,
    /// Wall time of the whole recovery: scan + snapshot load + replay.
    pub recovery_ns: u64,
}

/// Outcome of re-checking one registered constraint.
#[derive(Clone, Debug)]
pub struct ConstraintVerdict {
    /// The label given at registration.
    pub name: String,
    /// The (possibly indefinite) answer.
    pub verdict: Verdict,
    /// Degraded-mode algorithm that produced the answer, if any.
    pub degraded_to: Option<&'static str>,
    /// Attempts made (1 = no retries needed).
    pub attempts: u32,
    /// Whether an epoch-valid cached base verdict was supplied.
    pub base_hint_used: bool,
}

/// One scheduled check of a batched round (see
/// [`recheck_round`](MonitorSession::recheck_round)): which slot to
/// re-check and under whose envelope. The serving layer builds one of
/// these per due subscription after its fair-share scheduling pass.
#[derive(Clone, Copy, Debug)]
pub struct RoundCheck {
    /// Registration slot of the constraint to re-check.
    pub slot: usize,
    /// Per-attempt budget for this check (the tenant's envelope).
    pub budget: BudgetSpec,
    /// Retry schedule for transient exhaustion.
    pub retry: RetryPolicy,
}

/// Outcome of one [`RoundCheck`], with the cost and cache attribution
/// the serving layer needs to reconcile its fair-share clocks and
/// per-tenant counters after the round.
#[derive(Clone, Debug)]
pub struct RoundResult {
    /// The slot this result answers (mirrors the input check).
    pub slot: usize,
    /// The per-constraint outcome, as [`recheck`](MonitorSession::recheck)
    /// would have reported it.
    pub verdict: ConstraintVerdict,
    /// Wall-clock cost of the check (all attempts), in nanoseconds.
    pub cost_ns: u64,
    /// Enumerations this check answered from cache: component replays
    /// plus generation-checked verdict-memo hits.
    pub cache_hits: u64,
    /// Components this check had to enumerate fresh.
    pub cache_misses: u64,
}

/// A registered denial constraint under watch.
struct Registered {
    name: String,
    dc: DenialConstraint,
    /// Relations the constraint mentions (positive and negated atoms of
    /// its body) — the footprint used by the arrival dirty rule.
    relations: Vec<RelationId>,
    /// The verdict from the last re-check, if any.
    last: Option<Verdict>,
    /// Whether an event since the last re-check may have changed the
    /// verdict. Freshly registered constraints start dirty.
    dirty: bool,
    /// Unregistered slots stay in place (indices handed out by
    /// [`MonitorSession::register`] must remain stable) but are skipped
    /// by every dirty walk and re-check sweep, and reused by the next
    /// registration.
    retired: bool,
}

/// Base rows resolved against the live catalog.
type ResolvedRows = Vec<(RelationId, Tuple)>;

/// A monitor over one evolving blockchain database. See the module docs.
pub struct MonitorSession {
    solver: Solver,
    constraints: Vec<Registered>,
    journal: Option<Journal>,
    config: MonitorConfig,
    stats: MonitorStats,
    /// Epoch advances since the last persisted snapshot (see
    /// [`MonitorConfig::snapshot_every`]).
    advances_since_snapshot: u64,
    /// Inverse deltas of incrementally-applied epoch events, newest last.
    /// A depth-`d` reorg pops and replays the top `d`; recovery reseeds
    /// the stack from the journal's `U` records.
    undo_stack: Vec<UndoRecord>,
}

impl MonitorSession {
    fn with_solver(solver: Solver) -> MonitorSession {
        MonitorSession {
            solver,
            constraints: Vec::new(),
            journal: None,
            config: MonitorConfig::default(),
            stats: MonitorStats::default(),
            advances_since_snapshot: 0,
            undo_stack: Vec::new(),
        }
    }

    /// A session over an empty database with the given schema.
    pub fn new(catalog: Catalog, constraints: ConstraintSet) -> MonitorSession {
        let bcdb = BlockchainDb::new(catalog, constraints);
        MonitorSession::with_solver(Solver::builder(bcdb).build())
    }

    /// A session seeded from a full snapshot (base rows by id, pending
    /// transactions in issue order).
    pub fn from_snapshot(
        catalog: Catalog,
        constraints: ConstraintSet,
        base: &[(RelationId, Tuple)],
        pending: &[(String, Vec<(RelationId, Tuple)>)],
    ) -> Result<MonitorSession, MonitorError> {
        let mut bcdb = BlockchainDb::new(catalog, constraints);
        for (rel, tuple) in base {
            bcdb.insert_current(*rel, tuple.clone())?;
        }
        for (name, tuples) in pending {
            bcdb.add_transaction(name.clone(), tuples.iter().cloned())?;
        }
        Ok(MonitorSession::with_solver(Solver::builder(bcdb).build()))
    }

    /// Rebuilds a session by replaying journal `records` (e.g. from
    /// [`Journal::recover`](crate::Journal)). No journaling happens
    /// during the replay; attach the recovered journal afterwards with
    /// [`attach_journal`](MonitorSession::attach_journal).
    pub fn replay(
        catalog: Catalog,
        constraints: ConstraintSet,
        records: &[JournalRecord],
    ) -> Result<MonitorSession, MonitorError> {
        MonitorSession::replay_with(catalog, constraints, records, MonitorConfig::default())
    }

    /// [`replay`](MonitorSession::replay) under an explicit config, so
    /// the replayed events run the same [`EpochApply`] policy (and
    /// budget) the crashed session did.
    pub fn replay_with(
        catalog: Catalog,
        constraints: ConstraintSet,
        records: &[JournalRecord],
        config: MonitorConfig,
    ) -> Result<MonitorSession, MonitorError> {
        let mut s = MonitorSession::new(catalog, constraints);
        s.set_config(config);
        for rec in records {
            if let Some(ev) = rec.event() {
                s.apply(ev)?;
            }
        }
        Ok(s)
    }

    /// Unified crash recovery: scans the journal at `journal_path`
    /// (truncating any torn tail), walks its snapshot boundaries newest
    /// first, seeds the session from the first snapshot `backend` can
    /// still load, and replays only the records after that boundary — the
    /// WAL tail. If no boundary survives (or none loads), falls back to a
    /// full replay from the journal alone. The recovered journal and the
    /// backend are attached to the returned session, so it resumes
    /// journaling and snapshotting where the crashed one stopped.
    pub fn recover(
        catalog: Catalog,
        constraints: ConstraintSet,
        journal_path: impl Into<std::path::PathBuf>,
        backend: Box<dyn StorageBackend>,
    ) -> Result<(MonitorSession, RecoveryReport), MonitorError> {
        let t0 = Instant::now();
        let recovery = Journal::recover(journal_path)?;
        let boundaries: Vec<(usize, String)> = recovery
            .snapshot_boundaries()
            .map(|(i, id)| (i, id.to_string()))
            .collect();
        let mut snapshots_rejected = 0u64;
        let mut seed = None;
        for (idx, id) in boundaries.into_iter().rev() {
            match backend.load_snapshot(&id) {
                Ok(snap) => {
                    seed = Some((idx, id, snap));
                    break;
                }
                Err(_) => snapshots_rejected += 1,
            }
        }
        let (mut session, tail_start, snapshot_loaded, snapshot_epoch) = match seed {
            Some((idx, id, snap)) => {
                let epoch = snap.epoch;
                let bcdb = BlockchainDb::from_db_snapshot(catalog, constraints, &snap)?;
                let solver = Solver::builder(bcdb).starting_epoch(epoch).build();
                (MonitorSession::with_solver(solver), idx + 1, Some(id), epoch)
            }
            None => (MonitorSession::new(catalog, constraints), 0, None, 0),
        };
        // Seed the reorg undo stack from the `U` records before the tail:
        // the tail's events regenerate their own undos during replay, but
        // the pre-snapshot inverse deltas exist only in the journal.
        for rec in &recovery.records[..tail_start] {
            if let Some(undo) = rec.undo() {
                session.undo_stack.push(undo.clone());
            }
        }
        let mut wal_tail_records = 0usize;
        for rec in &recovery.records[tail_start..] {
            wal_tail_records += 1;
            if let Some(ev) = rec.event() {
                session.apply(ev)?;
            }
        }
        let report = RecoveryReport {
            snapshot_loaded,
            snapshot_epoch,
            snapshots_rejected,
            total_records: recovery.records.len(),
            total_events: recovery.records.iter().filter(|r| r.event().is_some()).count(),
            wal_tail_records,
            dropped_bytes: recovery.dropped_bytes,
            dropped_lines: recovery.dropped_lines,
            recovery_ns: t0.elapsed().as_nanos() as u64,
        };
        probes::STORAGE_RECOVERY_NS.record(report.recovery_ns);
        probes::STORAGE_WAL_TAIL_RECORDS.set(report.wal_tail_records as u64);
        session.attach_journal(recovery.journal);
        session.attach_backend(backend);
        Ok((session, report))
    }

    /// Journals every subsequent event to `journal` (write-ahead: the
    /// record is durable before the state changes).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Persists epoch snapshots through `backend` on epoch-advancing
    /// events (per [`MonitorConfig::snapshot_every`]), journaling each
    /// snapshot boundary after the snapshot is durable.
    pub fn attach_backend(&mut self, backend: Box<dyn StorageBackend>) {
        self.solver.attach_backend(backend);
    }

    /// The attached storage backend's kind, if any.
    pub fn backend_kind(&self) -> Option<&'static str> {
        self.solver.backend_kind()
    }

    /// Replaces the re-check configuration and syncs it into the solver
    /// session (the per-check budget doubles as the solver's base-probe
    /// budget).
    pub fn set_config(&mut self, config: MonitorConfig) {
        let mut opts = config.opts.clone();
        opts.budget = config.budget;
        self.solver.set_options(opts);
        self.config = config;
    }

    /// Registers a denial constraint for re-checking; returns its index.
    /// New constraints start dirty — they have never been checked. A slot
    /// freed by [`unregister`](MonitorSession::unregister) is reused, so
    /// long-running subscription churn does not grow the table.
    pub fn register(&mut self, name: impl Into<String>, dc: DenialConstraint) -> usize {
        let mut relations: Vec<RelationId> = dc
            .body()
            .positive
            .iter()
            .chain(dc.body().negated.iter())
            .map(|a| a.relation)
            .collect();
        relations.sort();
        relations.dedup();
        let slot = Registered {
            name: name.into(),
            dc,
            relations,
            last: None,
            dirty: true,
            retired: false,
        };
        if let Some(idx) = self.constraints.iter().position(|c| c.retired) {
            self.constraints[idx] = slot;
            idx
        } else {
            self.constraints.push(slot);
            self.constraints.len() - 1
        }
    }

    /// Retires a registered constraint. Its index is excluded from every
    /// subsequent sweep and will be handed out again by the next
    /// [`register`](MonitorSession::register).
    pub fn unregister(&mut self, idx: usize) {
        let c = &mut self.constraints[idx];
        c.retired = true;
        c.dirty = false;
        c.last = None;
    }

    /// The current epoch (bumped by every mined block or reorg).
    pub fn epoch(&self) -> u64 {
        self.solver.epoch()
    }

    /// How many journaled inverse deltas the session holds — the maximum
    /// depth a delta-form reorg can rewind right now.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// The underlying solver session's counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.session_stats()
    }

    /// The monitored database.
    pub fn bcdb(&self) -> &BlockchainDb {
        self.solver.db()
    }

    /// The incrementally maintained steady state.
    pub fn precomputed(&self) -> &Precomputed {
        self.solver.precomputed_ref()
    }

    /// Names of the pending transactions, in issue order.
    pub fn pending_names(&self) -> Vec<&str> {
        self.solver
            .db()
            .pending()
            .iter()
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Indices of the constraints currently marked dirty.
    pub fn dirty_indices(&self) -> Vec<usize> {
        self.constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dirty && !c.retired)
            .map(|(i, _)| i)
            .collect()
    }

    /// Live (non-retired) registered constraints.
    pub fn registered_count(&self) -> usize {
        self.constraints.iter().filter(|c| !c.retired).count()
    }

    /// Flushes the attached journal to durable storage (a no-op without
    /// one). Graceful shutdown calls this before persisting the final
    /// snapshot so the WAL tail is complete on disk.
    pub fn sync_journal(&mut self) -> Result<(), MonitorError> {
        if let Some(journal) = &mut self.journal {
            journal.sync()?;
        }
        Ok(())
    }

    /// Persists a snapshot of the current state immediately, regardless of
    /// the [`MonitorConfig::snapshot_every`] cadence, and journals its
    /// boundary. Returns the snapshot id, or `None` without a backend.
    pub fn persist_snapshot_now(&mut self) -> Result<Option<String>, MonitorError> {
        if self.solver.backend_kind().is_none() {
            return Ok(None);
        }
        let id = self.solver.persist_snapshot()?;
        if let Some(id) = &id {
            self.advances_since_snapshot = 0;
            self.stats.snapshots_persisted += 1;
            if let Some(journal) = &mut self.journal {
                journal.append_snapshot_boundary(self.solver.epoch(), id)?;
            }
        }
        Ok(id)
    }

    fn resolve(&self, tuples: &[(String, Tuple)]) -> Result<Vec<(RelationId, Tuple)>, MonitorError> {
        let cat = self.solver.db().database().catalog();
        tuples
            .iter()
            .map(|(name, tuple)| {
                cat.resolve(name)
                    .map(|rel| (rel, tuple.clone()))
                    .ok_or_else(|| MonitorError::UnknownRelation(name.clone()))
            })
            .collect()
    }

    /// Applies one event: journals it (write-ahead), then updates the
    /// database and the steady state — incrementally for intra-epoch
    /// events, by snapshot rebuild for epoch-advancing ones.
    pub fn apply(&mut self, event: &ChainEvent) -> Result<(), MonitorError> {
        if let Some(journal) = &mut self.journal {
            journal.append(self.solver.epoch(), event)?;
        }
        match event {
            ChainEvent::TxArrived { name, tuples } => {
                let _span = probes::MONITOR_APPLY_NS.span();
                let tuples = self.resolve(tuples)?;
                let tx = self.solver.add_transaction(name.clone(), tuples)?;
                self.mark_dirty_after_arrival(tx);
                self.stats.incremental_applies += 1;
            }
            ChainEvent::TxEvicted { name } => {
                let _span = probes::MONITOR_APPLY_NS.span();
                let idx = self
                    .solver
                    .db()
                    .pending()
                    .iter()
                    .position(|t| &t.name == name)
                    .ok_or_else(|| MonitorError::UnknownTransaction(name.clone()))?;
                self.solver.remove_transaction(TxId(idx as u32));
                // Worlds only disappear: a universally-quantified `Holds`
                // survives, but a cached violation's witness might be gone.
                for c in &mut self.constraints {
                    if !c.retired && !matches!(c.last, Some(Verdict::Holds)) {
                        c.dirty = true;
                    }
                }
                self.stats.incremental_applies += 1;
            }
            ChainEvent::TxMined { .. }
            | ChainEvent::Reorg { .. }
            | ChainEvent::TxMinedDelta { .. }
            | ChainEvent::ReorgDelta { .. } => {
                self.apply_epoch_event(event)?;
                // The base state changed, so every watched constraint is
                // dirty regardless of which apply path ran.
                for c in &mut self.constraints {
                    if !c.retired {
                        c.dirty = true;
                    }
                }
                self.maybe_persist_snapshot()?;
            }
        }
        probes::MONITOR_EPOCH.set(self.solver.epoch());
        self.stats.events_applied += 1;
        Ok(())
    }

    /// Routes one epoch-advancing event through the configured
    /// [`EpochApply`] policy. Either path leaves the solver exactly one
    /// epoch further with current steady-state structures and an empty
    /// base-verdict cache.
    fn apply_epoch_event(&mut self, event: &ChainEvent) -> Result<(), MonitorError> {
        // Snapshot-form events can take the rebuild oracle; delta-form
        // events carry no snapshot and are always applied incrementally.
        let snapshot = match event {
            ChainEvent::TxMined { base, pending, .. } => Some((base, pending, true)),
            ChainEvent::Reorg { base, pending, .. } => Some((base, pending, false)),
            _ => None,
        };
        if self.config.epoch_apply == EpochApply::Rebuild {
            if let Some((base, pending, _)) = snapshot {
                return self.rebuild_from_snapshot(base, pending);
            }
        }
        let t0 = Instant::now();
        let undo = match (event, snapshot) {
            (_, Some((base, pending, append_only))) => {
                self.try_reconcile_to_snapshot(base, pending, append_only)?
            }
            (ChainEvent::TxMinedDelta { mined, appended }, _) => {
                Some(self.apply_mined_delta(mined, appended)?)
            }
            (ChainEvent::ReorgDelta { depth }, _) => Some(self.apply_reorg_delta(*depth)?),
            _ => unreachable!("apply_epoch_event sees only epoch-advancing events"),
        };
        let Some(undo) = undo else {
            // The incremental plan was rejected (a mined event whose base
            // was not append-only): take the oracle path.
            let (base, pending, _) = snapshot.expect("only snapshot events can fall back");
            self.stats.apply_fallbacks += 1;
            return self.rebuild_from_snapshot(base, pending);
        };
        self.solver.advance_epoch();
        let ns = t0.elapsed().as_nanos() as u64;
        probes::MONITOR_APPLY_NS.record(ns);
        self.stats.block_apply_ns += ns;
        self.stats.applies += 1;
        if snapshot.is_none() {
            self.stats.delta_applies += 1;
            self.stats.delta_apply_ns += ns;
        }
        if let Some(journal) = &mut self.journal {
            journal.append_undo(self.solver.epoch(), &undo)?;
        }
        self.undo_stack.push(undo);
        if self.config.epoch_apply == EpochApply::IncrementalVerified {
            match snapshot {
                Some((base, pending, _)) => self.shadow_verify(base, pending)?,
                // Delta events carry no authoritative snapshot; verify
                // the incrementally maintained steady state against a
                // cold build over the live database instead.
                None => self.shadow_verify_steady(),
            }
        }
        Ok(())
    }

    /// The oracle path: rebuilds the solver state from the event's full
    /// snapshot via [`Solver::replace_db`], which rebuilds the steady
    /// state, advances the epoch, and drops the base-verdict cache.
    fn rebuild_from_snapshot(
        &mut self,
        base: &NamedTuples,
        pending: &NamedPending,
    ) -> Result<(), MonitorError> {
        let t0 = Instant::now();
        let next = {
            let _span = probes::MONITOR_REBUILD_NS.span();
            self.build_snapshot_db(base, pending)?
        };
        self.solver.replace_db(next);
        self.stats.block_rebuild_ns += t0.elapsed().as_nanos() as u64;
        self.stats.rebuilds += 1;
        Ok(())
    }

    /// Builds a fresh [`BlockchainDb`] holding exactly the snapshot.
    fn build_snapshot_db(
        &self,
        base: &NamedTuples,
        pending: &NamedPending,
    ) -> Result<BlockchainDb, MonitorError> {
        let catalog = self.solver.db().database().catalog().clone();
        let cs = self.solver.db().constraints().clone();
        let mut next = BlockchainDb::new(catalog, cs);
        for (rel_name, tuple) in base {
            let rel = next
                .database()
                .catalog()
                .resolve(rel_name)
                .ok_or_else(|| MonitorError::UnknownRelation(rel_name.clone()))?;
            next.insert_current(rel, tuple.clone())?;
        }
        for (name, tuples) in pending {
            let resolved: Result<Vec<_>, MonitorError> = tuples
                .iter()
                .map(|(rn, t)| {
                    next.database()
                        .catalog()
                        .resolve(rn)
                        .map(|rel| (rel, t.clone()))
                        .ok_or_else(|| MonitorError::UnknownRelation(rn.clone()))
                })
                .collect();
            next.add_transaction(name.clone(), resolved?)?;
        }
        Ok(next)
    }

    /// Verified mode's shadow oracle: rebuild from the snapshot on the
    /// side, time it as the rebuild cost, and compare against the live
    /// incremental state. Divergences are counted, never adopted — the
    /// incremental path is what is under test, and the soak gate requires
    /// the counter to stay zero.
    fn shadow_verify(
        &mut self,
        base: &NamedTuples,
        pending: &NamedPending,
    ) -> Result<(), MonitorError> {
        let t0 = Instant::now();
        let oracle_db = self.build_snapshot_db(base, pending)?;
        let oracle_pre = Precomputed::build(&oracle_db);
        let ns = t0.elapsed().as_nanos() as u64;
        probes::MONITOR_REBUILD_NS.record(ns);
        self.stats.block_rebuild_ns += ns;
        self.stats.shadow_builds += 1;
        if !self.matches_oracle(&oracle_db, &oracle_pre) {
            self.stats.apply_divergences += 1;
        }
        Ok(())
    }

    /// The verified-mode shadow for *delta* events, which carry no
    /// authoritative snapshot: rebuild the steady state cold over the
    /// live database and demand it match the incrementally maintained
    /// one. (Row contents can't be cross-checked without a snapshot; the
    /// soak's epoch-end audit covers those against the chain export.)
    fn shadow_verify_steady(&mut self) {
        let t0 = Instant::now();
        let oracle_pre = Precomputed::build(self.solver.db());
        let ns = t0.elapsed().as_nanos() as u64;
        probes::MONITOR_REBUILD_NS.record(ns);
        self.stats.block_rebuild_ns += ns;
        self.stats.shadow_builds += 1;
        let live_pre = self.solver.precomputed_ref();
        let n = oracle_pre.fd_graph.node_count();
        let mut agree = live_pre.viable == oracle_pre.viable
            && live_pre.includable == oracle_pre.includable
            && live_pre.fd_graph.node_count() == n;
        if agree {
            let mut live_uf = live_pre.ind_uf.clone();
            let mut oracle_uf = oracle_pre.ind_uf.clone();
            'scan: for a in 0..n {
                for b in a + 1..n {
                    if live_pre.fd_graph.has_edge(a, b) != oracle_pre.fd_graph.has_edge(a, b)
                        || live_uf.connected(a, b) != oracle_uf.connected(a, b)
                    {
                        agree = false;
                        break 'scan;
                    }
                }
            }
        }
        if !agree {
            self.stats.apply_divergences += 1;
        }
    }

    /// Whether the live state is observably identical to the oracle's:
    /// same per-relation row sequences (tuple and source), same pending
    /// names, same steady-state verdict inputs.
    fn matches_oracle(&self, oracle_db: &BlockchainDb, oracle_pre: &Precomputed) -> bool {
        let live_db = self.solver.db();
        let cat = live_db.database().catalog();
        for (rel, _) in cat.iter() {
            let live: Vec<_> = live_db
                .database()
                .relation(rel)
                .scan_all()
                .map(|(_, row)| (row.tuple.clone(), row.source))
                .collect();
            let oracle: Vec<_> = oracle_db
                .database()
                .relation(rel)
                .scan_all()
                .map(|(_, row)| (row.tuple.clone(), row.source))
                .collect();
            if live != oracle {
                return false;
            }
        }
        let live_names: Vec<_> = live_db.pending().iter().map(|t| &t.name).collect();
        let oracle_names: Vec<_> = oracle_db.pending().iter().map(|t| &t.name).collect();
        if live_names != oracle_names {
            return false;
        }
        let live_pre = self.solver.precomputed_ref();
        if live_pre.viable != oracle_pre.viable || live_pre.includable != oracle_pre.includable {
            return false;
        }
        let n = oracle_pre.fd_graph.node_count();
        if live_pre.fd_graph.node_count() != n {
            return false;
        }
        let mut live_uf = live_pre.ind_uf.clone();
        let mut oracle_uf = oracle_pre.ind_uf.clone();
        for a in 0..n {
            for b in a + 1..n {
                if live_pre.fd_graph.has_edge(a, b) != oracle_pre.fd_graph.has_edge(a, b)
                    || live_uf.connected(a, b) != oracle_uf.connected(a, b)
                {
                    return false;
                }
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Incremental epoch apply: recorded batch deltas.
    //
    // Each primitive below mutates through the solver's batch delta
    // mutators and pushes the *inverse* op onto `rec` (in apply order);
    // `finish_undo` reverses the list so executing the resulting record's
    // ops front-to-back reverts the event.
    // ------------------------------------------------------------------

    fn rel_name(&self, rel: RelationId) -> String {
        self.solver
            .db()
            .database()
            .catalog()
            .schema(rel)
            .name()
            .to_string()
    }

    fn name_rows(&self, rows: &[(RelationId, Tuple)]) -> NamedTuples {
        rows.iter()
            .map(|(rel, t)| (self.rel_name(*rel), t.clone()))
            .collect()
    }

    fn rec_append_base(
        &mut self,
        rows: Vec<(RelationId, Tuple)>,
        rec: &mut Vec<UndoOp>,
    ) -> Result<(), MonitorError> {
        if rows.is_empty() {
            return Ok(());
        }
        let added = self.solver.append_base_rows(&rows)?;
        if !added.is_empty() {
            let named = self.name_rows(&added);
            rec.push(UndoOp::RemoveBase(named));
        }
        Ok(())
    }

    fn rec_remove_base(&mut self, rows: Vec<(RelationId, Tuple)>, rec: &mut Vec<UndoOp>) {
        if rows.is_empty() {
            return;
        }
        let named = self.name_rows(&rows);
        self.solver.remove_base_rows(&rows);
        rec.push(UndoOp::AppendBase(named));
    }

    fn rec_remove_txs(&mut self, mut ids: Vec<TxId>, rec: &mut Vec<UndoOp>) {
        if ids.is_empty() {
            return;
        }
        ids.sort_unstable();
        ids.dedup();
        let entries: Vec<(u64, String, NamedTuples)> = ids
            .iter()
            .map(|id| {
                let t = &self.solver.db().pending()[id.index()];
                (id.0 as u64, t.name.clone(), self.name_rows(&t.tuples))
            })
            .collect();
        self.solver.remove_transactions(&ids);
        rec.push(UndoOp::InsertTxs(entries));
    }

    fn rec_insert_tx(
        &mut self,
        at: TxId,
        name: String,
        tuples: Vec<(RelationId, Tuple)>,
        rec: &mut Vec<UndoOp>,
    ) -> Result<(), MonitorError> {
        self.solver.insert_transaction_at(at, name.clone(), tuples)?;
        rec.push(UndoOp::RemoveTx { name });
        Ok(())
    }

    fn finish_undo(mut rec: Vec<UndoOp>) -> UndoRecord {
        rec.reverse();
        UndoRecord { ops: rec }
    }

    /// Executes one undo record through the recorded primitives, so the
    /// *current* event's recorder captures the inverse (undoing an undo
    /// re-applies the block — a reorg's own undo record is its redo).
    ///
    /// Tolerates mempool churn since the record was captured: arrivals
    /// and evictions between the block and its reorg can shift or remove
    /// pending entries, so insert indices are clamped to the live pending
    /// length and removing an already-evicted name is a no-op. With no
    /// intervening intra-epoch events the record is an exact inverse.
    fn execute_undo(&mut self, undo: &UndoRecord, rec: &mut Vec<UndoOp>) -> Result<(), MonitorError> {
        for op in &undo.ops {
            match op {
                UndoOp::AppendBase(rows) => {
                    let rows = self.resolve(rows)?;
                    self.rec_append_base(rows, rec)?;
                }
                UndoOp::RemoveBase(rows) => {
                    let rows = self.resolve(rows)?;
                    self.rec_remove_base(rows, rec);
                }
                UndoOp::InsertTxs(entries) => {
                    for (at, name, tuples) in entries {
                        let tuples = self.resolve(tuples)?;
                        let len = self.solver.db().pending().len() as u64;
                        let at = (*at).min(len);
                        self.rec_insert_tx(TxId(at as u32), name.clone(), tuples, rec)?;
                    }
                }
                UndoOp::RemoveTx { name } => {
                    let idx = self
                        .solver
                        .db()
                        .pending()
                        .iter()
                        .position(|t| &t.name == name);
                    if let Some(idx) = idx {
                        self.rec_remove_txs(vec![TxId(idx as u32)], rec);
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves the snapshot's base rows and collapses duplicates to
    /// first occurrence per relation — exactly the sequence a cold
    /// rebuild's deduplicating `insert_current` loop would store.
    fn resolve_base(&self, base: &NamedTuples) -> Result<Vec<(RelationId, Tuple)>, MonitorError> {
        let rows = self.resolve(base)?;
        let mut seen: FxHashSet<(RelationId, &Tuple)> = FxHashSet::default();
        let mut keep = Vec::with_capacity(rows.len());
        for (i, (rel, tuple)) in rows.iter().enumerate() {
            if seen.insert((*rel, tuple)) {
                keep.push(i);
            }
        }
        if keep.len() == rows.len() {
            return Ok(rows);
        }
        Ok(keep.into_iter().map(|i| rows[i].clone()).collect())
    }

    /// Longest-common-prefix base plan: per relation, keep the shared
    /// prefix of the current base rows and the (deduplicated) target,
    /// remove the current suffix past it, append the target remainder.
    /// Base rows are unique per relation, so removing a suffix by content
    /// never touches a kept prefix row.
    fn base_reconcile_plan(&self, target: &[(RelationId, Tuple)]) -> (ResolvedRows, ResolvedRows) {
        let db = self.solver.db().database();
        let nrel = db.catalog().relation_count();
        let mut per_rel_target: Vec<Vec<&Tuple>> = vec![Vec::new(); nrel];
        for (rel, tuple) in target {
            per_rel_target[rel.index()].push(tuple);
        }
        let mut to_remove = Vec::new();
        let mut to_append = Vec::new();
        for (rel, _) in db.catalog().iter() {
            let current: Vec<&Tuple> = db.relation(rel).base_tuples().collect();
            let tgt = &per_rel_target[rel.index()];
            let mut p = 0;
            while p < current.len() && p < tgt.len() && current[p] == tgt[p] {
                p += 1;
            }
            for t in &current[p..] {
                to_remove.push((rel, (*t).clone()));
            }
            for t in &tgt[p..] {
                to_append.push((rel, (*t).clone()));
            }
        }
        (to_remove, to_append)
    }

    /// Brings the pending set to exactly `target` (names, tuples, order)
    /// with a batch removal of entries not in the target, then ordered
    /// re-insertions of entries not currently present. Greedy
    /// subsequence matching keeps every entry that survives unchanged.
    fn reconcile_pending(
        &mut self,
        target: &[(String, Vec<(RelationId, Tuple)>)],
        rec: &mut Vec<UndoOp>,
    ) -> Result<(), MonitorError> {
        let current: Vec<(String, Vec<(RelationId, Tuple)>)> = self
            .solver
            .db()
            .pending()
            .iter()
            .map(|t| (t.name.clone(), t.tuples.clone()))
            .collect();
        let mut matched = vec![false; target.len()];
        let mut keep = vec![false; current.len()];
        let mut ti = 0usize;
        for (ci, entry) in current.iter().enumerate() {
            if let Some(j) = (ti..target.len()).find(|&j| &target[j] == entry) {
                matched[j] = true;
                keep[ci] = true;
                ti = j + 1;
            }
        }
        let removals: Vec<TxId> = (0..current.len())
            .filter(|&i| !keep[i])
            .map(|i| TxId(i as u32))
            .collect();
        self.rec_remove_txs(removals, rec);
        // Ascending target order: when slot j is filled, slots 0..j
        // already hold exactly target[0..j] (matched survivors plus
        // earlier insertions), so each insert lands at its final index.
        for (j, (name, tuples)) in target.iter().enumerate() {
            if !matched[j] {
                self.rec_insert_tx(TxId(j as u32), name.clone(), tuples.clone(), rec)?;
            }
        }
        Ok(())
    }

    /// The incremental path for snapshot-form epoch events. The snapshot
    /// carries the full authoritative target state, so it reconciles
    /// directly — no undo rewind (that is the delta-form reorg's job,
    /// where no target exists). Returns `None` — plan rejected, nothing
    /// mutated — when `append_only` (a mined event) and the base would
    /// have to shrink: a block never retracts rows, so the stream
    /// disagrees with our state and the snapshot oracle should take over.
    fn try_reconcile_to_snapshot(
        &mut self,
        base: &NamedTuples,
        pending: &NamedPending,
        append_only: bool,
    ) -> Result<Option<UndoRecord>, MonitorError> {
        let target_base = self.resolve_base(base)?;
        let target_pending: Vec<(String, Vec<(RelationId, Tuple)>)> = pending
            .iter()
            .map(|(name, tuples)| Ok((name.clone(), self.resolve(tuples)?)))
            .collect::<Result<_, MonitorError>>()?;
        if append_only {
            let (to_remove, _) = self.base_reconcile_plan(&target_base);
            if !to_remove.is_empty() {
                return Ok(None);
            }
        }
        let mut rec = Vec::new();
        let (to_remove, to_append) = self.base_reconcile_plan(&target_base);
        self.rec_remove_base(to_remove, &mut rec);
        self.rec_append_base(to_append, &mut rec)?;
        self.reconcile_pending(&target_pending, &mut rec)?;
        Ok(Some(Self::finish_undo(rec)))
    }

    /// The purely incremental mined-block delta: append the block's base
    /// rows, drop the mined transactions from the pending set.
    fn apply_mined_delta(
        &mut self,
        mined: &[String],
        appended: &NamedTuples,
    ) -> Result<UndoRecord, MonitorError> {
        let rows = self.resolve(appended)?;
        let ids: Vec<TxId> = mined
            .iter()
            .map(|name| {
                self.solver
                    .db()
                    .pending()
                    .iter()
                    .position(|t| &t.name == name)
                    .map(|i| TxId(i as u32))
                    .ok_or_else(|| MonitorError::UnknownTransaction(name.clone()))
            })
            .collect::<Result<_, MonitorError>>()?;
        let mut rec = Vec::new();
        self.rec_append_base(rows, &mut rec)?;
        self.rec_remove_txs(ids, &mut rec);
        Ok(Self::finish_undo(rec))
    }

    /// The delta-form reorg: pop `depth` undo records and replay them.
    /// The recorded inverse of the rewind is the reorg's own undo — so a
    /// later `ReorgDelta` can *redo* the disconnected blocks.
    fn apply_reorg_delta(&mut self, depth: u64) -> Result<UndoRecord, MonitorError> {
        if (self.undo_stack.len() as u64) < depth {
            return Err(MonitorError::UndoUnavailable {
                depth,
                available: self.undo_stack.len(),
            });
        }
        let mut rec = Vec::new();
        for _ in 0..depth {
            let undo = self.undo_stack.pop().expect("checked above");
            self.execute_undo(&undo, &mut rec)?;
        }
        Ok(Self::finish_undo(rec))
    }

    /// After an epoch advance: persist a snapshot of the new state and
    /// journal its boundary, if a backend is attached and the cadence is
    /// due. The `S` record is appended only once the snapshot is fully
    /// durable, so recovery can trust every boundary it reads.
    fn maybe_persist_snapshot(&mut self) -> Result<(), MonitorError> {
        if self.solver.backend_kind().is_none() || self.config.snapshot_every == 0 {
            return Ok(());
        }
        self.advances_since_snapshot += 1;
        if self.advances_since_snapshot < self.config.snapshot_every {
            return Ok(());
        }
        if let Some(id) = self.solver.persist_snapshot()? {
            self.advances_since_snapshot = 0;
            self.stats.snapshots_persisted += 1;
            if let Some(journal) = &mut self.journal {
                journal.append_snapshot_boundary(self.solver.epoch(), &id)?;
            }
        }
        Ok(())
    }

    /// Arrival dirty rule: worlds only *appear*, and every new world
    /// contains the new transaction, so a cached definite verdict can only
    /// change through matches interacting with `tx`. Those interactions
    /// stay inside `tx`'s refined `Gq,ind` component, so the constraint
    /// stays clean unless that component contains a transaction writing
    /// one of the constraint's relations. (Cached `Unknown` and
    /// never-checked constraints are always dirty.)
    fn mark_dirty_after_arrival(&mut self, tx: TxId) {
        let db = self.solver.db();
        let pre = self.solver.precomputed_ref();
        for c in &mut self.constraints {
            if c.dirty || c.retired {
                continue;
            }
            match &c.last {
                Some(Verdict::Holds) | Some(Verdict::Violated(_)) => {
                    let components = query_components(db, pre, c.dc.body());
                    let touched = components
                        .iter()
                        .find(|comp| comp.contains(&(tx.0 as usize)))
                        .map(|comp| {
                            comp.iter().any(|&i| {
                                db.pending()[i]
                                    .tuples
                                    .iter()
                                    .any(|(rel, _)| c.relations.contains(rel))
                            })
                        })
                        .unwrap_or(true);
                    if touched {
                        c.dirty = true;
                    }
                }
                _ => c.dirty = true,
            }
        }
    }

    /// Re-checks one registered constraint, retrying transient failures
    /// and containing panics. Never panics itself. The retry schedule is
    /// bound to the constraint's slot as its attempt site, so constraints
    /// sharing one configured seed still back off decorrelated.
    pub fn recheck(&mut self, idx: usize) -> ConstraintVerdict {
        let retry = self.config.retry.for_site(idx as u64);
        self.recheck_with(idx, self.config.budget, retry)
    }

    /// [`recheck`](MonitorSession::recheck) under an explicit per-attempt
    /// budget and retry schedule instead of the session config — the
    /// serving layer's entry point, where each check runs under its
    /// tenant's fair-share envelope.
    pub fn recheck_with(
        &mut self,
        idx: usize,
        spec: BudgetSpec,
        retry: RetryPolicy,
    ) -> ConstraintVerdict {
        debug_assert!(!self.constraints[idx].retired, "recheck of a retired slot");
        let dc = self.constraints[idx].dc.clone();
        let name = self.constraints[idx].name.clone();
        let before = self.solver.session_stats();
        let raw = run_check(&mut self.solver, &dc, spec, retry);
        let delta = diff_stats(&self.solver.session_stats(), &before);
        self.merge_check(idx, name, raw, &delta)
    }

    /// Folds one raw check result into the session: mirrors the solver's
    /// stat deltas into the monitor stats, records the verdict on the
    /// slot, and shapes the public [`ConstraintVerdict`]. Shared by the
    /// serial path and the post-round merge of the parallel path, so both
    /// account identically.
    fn merge_check(
        &mut self,
        idx: usize,
        name: String,
        raw: RawCheck,
        delta: &SolverStats,
    ) -> ConstraintVerdict {
        self.stats.panics_contained += raw.panics;
        self.stats.base_probes += delta.base_probes;
        self.stats.base_hints_supplied += delta.base_hints_supplied;
        self.stats.rechecks += 1;
        self.stats.retries += u64::from(raw.attempts.saturating_sub(1));
        if !raw.outcome.verdict.is_definite() {
            self.stats.unknown_verdicts += 1;
        }
        self.constraints[idx].last = Some(raw.outcome.verdict.clone());
        self.constraints[idx].dirty = false;
        ConstraintVerdict {
            name,
            verdict: raw.outcome.verdict,
            degraded_to: raw.outcome.degraded_to,
            attempts: raw.attempts,
            base_hint_used: delta.base_hints_supplied > 0,
        }
    }

    /// Attaches a cross-session [`SharedEnumCache`] to the underlying
    /// solver, so this session's checks reuse (and feed) enumerations
    /// from every other solver on the same cache. The cache's sharing
    /// contract applies: all attached sessions must observe the same
    /// logical database state (see [`bcdb_core::cache`]).
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedEnumCache>) {
        self.solver.set_shared_cache(Some(cache));
    }

    /// The attached shared cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedEnumCache>> {
        self.solver.shared_cache()
    }

    /// Re-checks a batch of constraints as one round, on up to `threads`
    /// workers, and returns one [`RoundResult`] per check **in input
    /// order** regardless of thread count or scheduling.
    ///
    /// With `threads <= 1` this is exactly a loop of
    /// [`recheck_with`](MonitorSession::recheck_with). With more, each
    /// worker runs checks against its own read-only
    /// [fork](Solver::fork_for_read) of the solver, claiming work through
    /// a [`StealScheduler`]; the forks share the session's
    /// [`SharedEnumCache`] (when attached), so one worker's enumeration
    /// still answers another's duplicate shape. Checks are logically
    /// read-only, so a fork returns the verdict the parent would have —
    /// which is what makes the merge deterministic: results, stat
    /// mirroring, and slot updates are applied serially in input order
    /// after all workers finish, and fork stats are absorbed back into
    /// the parent session.
    ///
    /// Panics inside a check are contained per-item exactly as in the
    /// serial path; a panicking check costs its worker nothing beyond
    /// that item.
    pub fn recheck_round(&mut self, checks: &[RoundCheck], threads: usize) -> Vec<RoundResult> {
        let workers = threads.max(1).min(checks.len());
        if workers <= 1 {
            return checks
                .iter()
                .map(|check| {
                    let before = self.solver.session_stats();
                    let start = Instant::now();
                    let verdict = self.recheck_with(check.slot, check.budget, check.retry);
                    let delta = diff_stats(&self.solver.session_stats(), &before);
                    RoundResult {
                        slot: check.slot,
                        verdict,
                        cost_ns: start.elapsed().as_nanos() as u64,
                        cache_hits: delta.components_reused + delta.verdict_memo_hits,
                        cache_misses: delta.components_enumerated,
                    }
                })
                .collect();
        }
        struct Partial {
            raw: RawCheck,
            cost_ns: u64,
            delta: SolverStats,
        }
        for check in checks {
            debug_assert!(
                !self.constraints[check.slot].retired,
                "round check of a retired slot"
            );
        }
        let dcs: Vec<DenialConstraint> = checks
            .iter()
            .map(|check| self.constraints[check.slot].dc.clone())
            .collect();
        let slots: Vec<Mutex<Option<Partial>>> =
            checks.iter().map(|_| Mutex::new(None)).collect();
        let scheduler = StealScheduler::new(workers, 0..checks.len());
        let mut forks: Vec<Solver> = (0..workers).map(|_| self.solver.fork_for_read()).collect();
        std::thread::scope(|scope| {
            for (worker, fork) in forks.iter_mut().enumerate() {
                let scheduler = &scheduler;
                let slots = &slots;
                let dcs = &dcs;
                scope.spawn(move || {
                    while let Some(i) = scheduler.pop(worker) {
                        let check = &checks[i];
                        let before = fork.session_stats();
                        let start = Instant::now();
                        let raw = run_check(fork, &dcs[i], check.budget, check.retry);
                        let cost_ns = start.elapsed().as_nanos() as u64;
                        let delta = diff_stats(&fork.session_stats(), &before);
                        *slots[i].lock().unwrap() = Some(Partial {
                            raw,
                            cost_ns,
                            delta,
                        });
                    }
                });
            }
        });
        // Serial merge in input order: identical bookkeeping to the
        // 1-thread path, applied in the same sequence every run.
        let mut absorbed = SolverStats::default();
        let results = checks
            .iter()
            .zip(slots)
            .map(|(check, slot)| {
                let partial = slot
                    .into_inner()
                    .unwrap()
                    .expect("scheduler drained every index");
                add_stats(&mut absorbed, &partial.delta);
                let name = self.constraints[check.slot].name.clone();
                let verdict =
                    self.merge_check(check.slot, name, partial.raw, &partial.delta);
                RoundResult {
                    slot: check.slot,
                    verdict,
                    cost_ns: partial.cost_ns,
                    cache_hits: partial.delta.components_reused
                        + partial.delta.verdict_memo_hits,
                    cache_misses: partial.delta.components_enumerated,
                }
            })
            .collect();
        self.solver.absorb_fork_stats(&absorbed);
        results
    }

    /// Re-checks every live registered constraint, in registration order.
    pub fn recheck_all(&mut self) -> Vec<ConstraintVerdict> {
        (0..self.constraints.len())
            .filter(|&i| !self.constraints[i].retired)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|i| self.recheck(i))
            .collect()
    }

    /// Re-checks only the constraints marked dirty (in registration
    /// order), skipping — and counting as skipped — every constraint whose
    /// cached verdict is still known to be current.
    pub fn recheck_dirty(&mut self) -> Vec<ConstraintVerdict> {
        let mut out = Vec::new();
        for i in 0..self.constraints.len() {
            if self.constraints[i].retired {
                continue;
            }
            if self.constraints[i].dirty {
                out.push(self.recheck(i));
            } else {
                self.stats.rechecks_skipped += 1;
            }
        }
        out
    }
}

/// The raw product of one retried, panic-contained check — everything
/// [`merge_check`](MonitorSession::merge_check) needs that came from the
/// solver rather than the session.
struct RawCheck {
    outcome: GovernedOutcome,
    attempts: u32,
    panics: u64,
}

/// The retry/containment core of a re-check, runnable against any solver
/// — the session's own or a per-worker read fork. Never panics.
fn run_check(
    solver: &mut Solver,
    dc: &DenialConstraint,
    spec: BudgetSpec,
    retry: RetryPolicy,
) -> RawCheck {
    // The retry loop gets its own overall deadline: enough for every
    // allowed attempt to spend its full per-attempt budget, so the
    // schedule is bounded even if each attempt runs to exhaustion.
    let deadline = spec
        .timeout
        .map(|t| Instant::now() + t.saturating_mul(retry.max_retries + 1));
    let mut attempts = 0u32;
    let mut panics = 0u64;
    let outcome = retry.run(deadline, |attempt| {
        attempts = attempt + 1;
        let budget = spec.start();
        let checked = catch_unwind(AssertUnwindSafe(|| solver.check_with_budget(dc, &budget)));
        let elapsed = budget.elapsed();
        match checked {
            Ok(Ok(out)) => match &out.verdict {
                // Transient exhaustion: the next attempt may win the
                // race (or the backoff may let an event batch drain).
                Verdict::Unknown(
                    ExhaustionReason::DeadlineExceeded { .. }
                    | ExhaustionReason::Cancelled
                    | ExhaustionReason::WorkerPanicked { .. },
                ) => ControlFlow::Continue(out),
                // Definite verdicts and deterministic limits are final.
                _ => ControlFlow::Break(out),
            },
            // A configuration error (invalid constraint) will not
            // improve with retries.
            Ok(Err(err)) => ControlFlow::Break(unknown_outcome(err.to_string(), elapsed)),
            Err(panic) => {
                panics += 1;
                let message = panic_message(panic.as_ref());
                ControlFlow::Continue(unknown_outcome(message, elapsed))
            }
        }
    });
    RawCheck {
        outcome,
        attempts,
        panics,
    }
}

/// Field-wise `after - before` over session stats (both cumulative
/// snapshots of the same solver, so every subtraction is non-negative).
fn diff_stats(after: &SolverStats, before: &SolverStats) -> SolverStats {
    SolverStats {
        checks: after.checks - before.checks,
        batches: after.batches - before.batches,
        batch_constraints: after.batch_constraints - before.batch_constraints,
        base_probes: after.base_probes - before.base_probes,
        base_cache_hits: after.base_cache_hits - before.base_cache_hits,
        base_hints_supplied: after.base_hints_supplied - before.base_hints_supplied,
        components_enumerated: after.components_enumerated - before.components_enumerated,
        components_reused: after.components_reused - before.components_reused,
        verdict_memo_hits: after.verdict_memo_hits - before.verdict_memo_hits,
        epoch_invalidations: after.epoch_invalidations - before.epoch_invalidations,
    }
}

/// Field-wise `into += delta`.
fn add_stats(into: &mut SolverStats, delta: &SolverStats) {
    into.checks += delta.checks;
    into.batches += delta.batches;
    into.batch_constraints += delta.batch_constraints;
    into.base_probes += delta.base_probes;
    into.base_cache_hits += delta.base_cache_hits;
    into.base_hints_supplied += delta.base_hints_supplied;
    into.components_enumerated += delta.components_enumerated;
    into.components_reused += delta.components_reused;
    into.verdict_memo_hits += delta.verdict_memo_hits;
    into.epoch_invalidations += delta.epoch_invalidations;
}

fn unknown_outcome(message: String, elapsed: std::time::Duration) -> GovernedOutcome {
    GovernedOutcome {
        verdict: Verdict::Unknown(ExhaustionReason::WorkerPanicked {
            component: 0,
            message,
        }),
        stats: DcSatStats::default(),
        degraded_to: None,
        elapsed,
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_path;
    use bcdb_core::Algorithm;
    use bcdb_query::parse_denial_constraint;
    use bcdb_storage::{tuple, Fd, RelationSchema, ValueType};

    fn setup() -> (Catalog, ConstraintSet) {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Pay", [("id", ValueType::Int), ("to", ValueType::Text)]).unwrap(),
        )
        .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
        (cat, cs)
    }

    fn arrival(name: &str, id: i64, to: &str) -> ChainEvent {
        ChainEvent::TxArrived {
            name: name.to_string(),
            tuples: vec![("Pay".to_string(), tuple![id, to])],
        }
    }

    fn evict(name: &str) -> ChainEvent {
        ChainEvent::TxEvicted {
            name: name.to_string(),
        }
    }

    /// Asserts the incrementally maintained steady state equals a cold
    /// rebuild of the session's own database.
    fn assert_self_consistent(s: &MonitorSession) {
        let rebuilt = Precomputed::build(s.bcdb());
        let live = s.precomputed();
        assert_eq!(live.viable, rebuilt.viable, "viable");
        assert_eq!(live.includable, rebuilt.includable, "includable");
        let n = rebuilt.fd_graph.node_count();
        assert_eq!(live.fd_graph.node_count(), n, "GfTd node count");
        let mut live_uf = live.ind_uf.clone();
        let mut cold_uf = rebuilt.ind_uf.clone();
        for a in 0..n {
            for b in a + 1..n {
                assert_eq!(
                    live.fd_graph.has_edge(a, b),
                    rebuilt.fd_graph.has_edge(a, b),
                    "GfTd edge ({a},{b})"
                );
                assert_eq!(
                    live_uf.connected(a, b),
                    cold_uf.connected(a, b),
                    "IND component ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn incremental_stream_matches_cold_rebuild() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        for (name, id, to) in [
            ("t0", 1, "ann"),
            ("t1", 1, "bob"), // conflicts with t0 on the key
            ("t2", 2, "bob"),
            ("t3", 3, "cam"),
        ] {
            s.apply(&arrival(name, id, to)).unwrap();
            assert_self_consistent(&s);
        }
        s.apply(&evict("t1")).unwrap();
        assert_self_consistent(&s);
        s.apply(&arrival("t4", 4, "ann")).unwrap();
        s.apply(&evict("t0")).unwrap();
        assert_self_consistent(&s);
        assert_eq!(s.pending_names(), ["t2", "t3", "t4"]);
        assert_eq!(s.epoch(), 0, "intra-epoch events never advance the epoch");
        assert_eq!(s.stats().incremental_applies, 7);
        assert_eq!(s.stats().rebuilds, 0);
    }

    #[test]
    fn mined_event_applies_incrementally_and_advances_epoch() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "bob")).unwrap();
        // t0 gets mined: its tuple moves to the base snapshot.
        s.apply(&ChainEvent::TxMined {
            mined: vec!["t0".to_string()],
            base: vec![("Pay".to_string(), tuple![1i64, "ann"])],
            pending: vec![("t1".to_string(), vec![("Pay".to_string(), tuple![2i64, "bob"])])],
        })
        .unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.pending_names(), ["t1"]);
        assert_self_consistent(&s);
        let pay = s.bcdb().database().catalog().resolve("Pay").unwrap();
        let base_rows: Vec<_> = s
            .bcdb()
            .database()
            .relation(pay)
            .scan_all()
            .filter(|(_, row)| row.source == bcdb_storage::Source::Base)
            .collect();
        assert_eq!(base_rows.len(), 1);
        // The default policy applies the block as a batch delta: no
        // snapshot rebuild, one inverse delta on the undo stack.
        assert_eq!(s.stats().applies, 1);
        assert_eq!(s.stats().rebuilds, 0);
        assert_eq!(s.undo_depth(), 1);
    }

    #[test]
    fn rebuild_oracle_mode_still_rebuilds() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        s.set_config(MonitorConfig {
            epoch_apply: EpochApply::Rebuild,
            ..MonitorConfig::default()
        });
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&ChainEvent::TxMined {
            mined: vec!["t0".to_string()],
            base: vec![("Pay".to_string(), tuple![1i64, "ann"])],
            pending: vec![],
        })
        .unwrap();
        assert_eq!(s.epoch(), 1);
        assert_self_consistent(&s);
        assert_eq!(s.stats().rebuilds, 1);
        assert_eq!(s.stats().applies, 0);
        assert_eq!(s.undo_depth(), 0, "the oracle path records no undos");
    }

    #[test]
    fn verified_mode_times_both_paths_and_sees_no_divergence() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        s.set_config(MonitorConfig {
            epoch_apply: EpochApply::IncrementalVerified,
            ..MonitorConfig::default()
        });
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "bob")).unwrap();
        s.apply(&ChainEvent::TxMined {
            mined: vec!["t0".to_string()],
            base: vec![("Pay".to_string(), tuple![1i64, "ann"])],
            pending: vec![(
                "t1".to_string(),
                vec![("Pay".to_string(), tuple![2i64, "bob"])],
            )],
        })
        .unwrap();
        s.apply(&ChainEvent::Reorg {
            depth: 1,
            base: vec![],
            pending: vec![(
                "t1".to_string(),
                vec![("Pay".to_string(), tuple![2i64, "bob"])],
            )],
        })
        .unwrap();
        let st = s.stats();
        assert_eq!(st.applies, 2);
        assert_eq!(st.apply_divergences, 0);
        assert!(st.block_apply_ns > 0, "incremental path was timed");
        assert!(st.block_rebuild_ns > 0, "shadow oracle was timed");
        assert_self_consistent(&s);
    }

    #[test]
    fn delta_events_mine_and_reorg_without_snapshots() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs.clone());
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "bob")).unwrap();
        // Delta-form block: t0 mined, its row (plus a coinbase-style row)
        // appended — no snapshot anywhere.
        s.apply(&ChainEvent::TxMinedDelta {
            mined: vec!["t0".to_string()],
            appended: vec![
                ("Pay".to_string(), tuple![100i64, "miner"]),
                ("Pay".to_string(), tuple![1i64, "ann"]),
            ],
        })
        .unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.pending_names(), ["t1"]);
        assert_self_consistent(&s);
        let before = state_bytes(&s);

        // Mine a second delta block, then rewind it with a delta reorg.
        s.apply(&ChainEvent::TxMinedDelta {
            mined: vec!["t1".to_string()],
            appended: vec![("Pay".to_string(), tuple![2i64, "bob"])],
        })
        .unwrap();
        assert_eq!(s.undo_depth(), 2);
        s.apply(&ChainEvent::ReorgDelta { depth: 1 }).unwrap();
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.pending_names(), ["t1"]);
        assert_self_consistent(&s);
        // State (modulo the epoch tag) is exactly the pre-block state.
        assert_eq!(
            bcdb_storage::encode_snapshot(&s.bcdb().to_db_snapshot(1)),
            before
        );
        // The reorg's own undo is a redo: rewinding it re-mines t1.
        s.apply(&ChainEvent::ReorgDelta { depth: 1 }).unwrap();
        assert_eq!(s.pending_names(), Vec::<&str>::new());
        assert_self_consistent(&s);

        // Rewinding deeper than the stack is an error, applied atomically.
        let err = s.apply(&ChainEvent::ReorgDelta { depth: 99 }).unwrap_err();
        assert!(matches!(err, MonitorError::UndoUnavailable { .. }));
    }

    #[test]
    fn non_append_only_mined_event_falls_back_to_rebuild() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&mined("t0", vec![("Pay".to_string(), tuple![1i64, "ann"])]))
            .unwrap();
        assert_eq!(s.stats().applies, 1);
        // A mined event whose base *dropped* a row contradicts the
        // append-only contract: the snapshot oracle takes over.
        s.apply(&mined("t1", vec![("Pay".to_string(), tuple![9i64, "zed"])]))
            .unwrap();
        let st = s.stats();
        assert_eq!(st.apply_fallbacks, 1);
        assert_eq!(st.rebuilds, 1);
        assert_eq!(s.epoch(), 2);
        assert_self_consistent(&s);
    }

    #[test]
    fn base_verdict_cache_is_epoch_tagged() {
        let (cat, cs) = setup();
        let dc = parse_denial_constraint(
            "q() <- Pay(i, x), Pay(j, x), i != j",
            &cat,
        )
        .unwrap();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "ann")).unwrap();
        s.register("dup-payee", dc);

        let v1 = s.recheck(0);
        assert!(v1.base_hint_used);
        assert_eq!(s.stats().base_probes, 1);
        // Same epoch: the cache answers, no second probe.
        let _ = s.recheck(0);
        assert_eq!(s.stats().base_probes, 1);
        assert_eq!(s.stats().base_hints_supplied, 2);
        // Two pending payments to ann can coexist -> violable.
        assert_eq!(v1.verdict.satisfied(), Some(false));

        // An epoch advance invalidates the cache.
        s.apply(&ChainEvent::Reorg {
            depth: 1,
            base: vec![("Pay".to_string(), tuple![7i64, "zed"])],
            pending: vec![],
        })
        .unwrap();
        let v2 = s.recheck(0);
        assert_eq!(s.stats().base_probes, 2, "new epoch needs a fresh probe");
        assert_eq!(v2.verdict.satisfied(), Some(true));
    }

    #[test]
    fn journal_replay_reproduces_session() {
        let (cat, cs) = setup();
        let path = scratch_path("session_replay");
        let mut s = MonitorSession::new(cat.clone(), cs.clone());
        s.attach_journal(Journal::create(&path).unwrap());
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 1, "bob")).unwrap();
        s.apply(&evict("t0")).unwrap();
        s.apply(&ChainEvent::TxMined {
            mined: vec!["t1".to_string()],
            base: vec![("Pay".to_string(), tuple![1i64, "bob"])],
            pending: vec![],
        })
        .unwrap();
        s.apply(&arrival("t2", 2, "cam")).unwrap();

        let recovery = Journal::recover(&path).unwrap();
        assert_eq!(recovery.records.len(), 6, "5 events + 1 undo record");
        assert_eq!(recovery.dropped_bytes, 0);
        let replayed = MonitorSession::replay(cat, cs, &recovery.records).unwrap();
        assert_eq!(replayed.epoch(), s.epoch());
        assert_eq!(replayed.pending_names(), s.pending_names());
        assert_self_consistent(&replayed);
        // Replaying the mined event regenerated its inverse delta, and it
        // matches the journaled one byte for byte.
        assert_eq!(replayed.undo_depth(), 1);
        let journaled = recovery.records.iter().find_map(|r| r.undo()).unwrap();
        assert_eq!(&replayed.undo_stack[0], journaled);
        // The recovered journal continues the sequence.
        assert_eq!(recovery.journal.next_seq(), 6);
    }

    #[test]
    fn config_errors_become_unknown_not_panics() {
        let (cat, cs) = setup();
        // An aggregate constraint forced onto OptDCSat is a configuration
        // error; the monitor must absorb it as Unknown.
        let dc = parse_denial_constraint("[q(sum(i)) <- Pay(i, 'bob')] >= 1", &cat).unwrap();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "bob")).unwrap();
        s.register("forced-opt-aggregate", dc);
        s.set_config(MonitorConfig {
            opts: DcSatOptions::default().with_algorithm(Algorithm::Opt),
            ..MonitorConfig::default()
        });
        let v = s.recheck(0);
        assert!(!v.verdict.is_definite());
        assert_eq!(v.attempts, 1, "configuration errors are not retried");
        assert_eq!(s.stats().unknown_verdicts, 1);
    }

    #[test]
    fn deterministic_budget_limits_are_not_retried() {
        let (cat, cs) = setup();
        let dc = parse_denial_constraint("q() <- Pay(i, x), Pay(j, x), i != j", &cat).unwrap();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "ann")).unwrap();
        s.register("dup-payee", dc);
        s.set_config(MonitorConfig {
            budget: BudgetSpec {
                max_tuples: Some(0),
                ..BudgetSpec::UNLIMITED
            },
            retry: RetryPolicy::new(3, std::time::Duration::ZERO, 1),
            ..MonitorConfig::default()
        });
        let v = s.recheck(0);
        assert_eq!(v.attempts, 1, "tuple-limit exhaustion is deterministic");
        assert_eq!(s.stats().retries, 0);
    }

    #[test]
    fn dirty_tracking_skips_unaffected_constraints() {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Pay", [("id", ValueType::Int), ("to", ValueType::Text)]).unwrap(),
        )
        .unwrap();
        cat.add(RelationSchema::new("Audit", [("id", ValueType::Int)]).unwrap())
            .unwrap();
        let mut cs = ConstraintSet::new();
        cs.add_fd(Fd::named_key(&cat, "Pay", &["id"]).unwrap());
        let dc = parse_denial_constraint("q() <- Pay(i, x), Pay(j, x), i != j", &cat).unwrap();
        let mut s = MonitorSession::new(cat, cs);
        s.register("dup-payee", dc);
        assert_eq!(s.dirty_indices(), [0], "fresh registrations start dirty");

        s.apply(&arrival("t0", 1, "ann")).unwrap();
        let v = s.recheck_dirty();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].verdict.satisfied(), Some(true), "one payment cannot dup");
        assert!(s.dirty_indices().is_empty());

        // An arrival touching only Audit cannot change the Pay constraint:
        // its component contains no transaction writing Pay.
        s.apply(&ChainEvent::TxArrived {
            name: "a0".to_string(),
            tuples: vec![("Audit".to_string(), tuple![9i64])],
        })
        .unwrap();
        assert!(s.dirty_indices().is_empty());
        assert!(s.recheck_dirty().is_empty());
        assert_eq!(s.stats().rechecks_skipped, 1);

        // A second payment to ann can flip the verdict -> dirty, re-checked.
        s.apply(&arrival("t1", 2, "ann")).unwrap();
        assert_eq!(s.dirty_indices(), [0]);
        let v = s.recheck_dirty();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].verdict.satisfied(), Some(false));

        // Eviction can erase a violation witness: Violated goes dirty even
        // for an unrelated eviction, and the re-check restores Holds.
        s.apply(&evict("t1")).unwrap();
        assert_eq!(s.dirty_indices(), [0]);
        let v = s.recheck_dirty();
        assert_eq!(v[0].verdict.satisfied(), Some(true));

        // `Holds` survives evictions — worlds only disappear.
        s.apply(&evict("a0")).unwrap();
        assert!(s.dirty_indices().is_empty());
        assert_eq!(s.stats().rechecks_skipped, 1);
    }

    #[test]
    fn mined_blocks_dirty_everything() {
        let (cat, cs) = setup();
        let dc = parse_denial_constraint("q() <- Pay(i, x), Pay(j, x), i != j", &cat).unwrap();
        let mut s = MonitorSession::new(cat, cs);
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.register("dup-payee", dc);
        let _ = s.recheck_dirty();
        assert!(s.dirty_indices().is_empty());
        s.apply(&ChainEvent::TxMined {
            mined: vec!["t0".to_string()],
            base: vec![("Pay".to_string(), tuple![1i64, "ann"])],
            pending: vec![],
        })
        .unwrap();
        assert_eq!(s.dirty_indices(), [0], "base-state changes dirty everything");
    }

    /// Encoded state snapshot — the byte-identity yardstick used by the
    /// recovery tests (and, at scale, by `repro crashstorm`).
    fn state_bytes(s: &MonitorSession) -> Vec<u8> {
        bcdb_storage::encode_snapshot(&s.bcdb().to_db_snapshot(s.epoch()))
    }

    fn mined(name: &str, base: Vec<(String, Tuple)>) -> ChainEvent {
        mined_with(name, base, vec![])
    }

    fn mined_with(
        name: &str,
        base: Vec<(String, Tuple)>,
        pending: Vec<(String, Vec<(String, Tuple)>)>,
    ) -> ChainEvent {
        ChainEvent::TxMined {
            mined: vec![name.to_string()],
            base,
            pending,
        }
    }

    #[test]
    fn unified_recovery_seeds_from_snapshot_and_replays_tail() {
        use bcdb_storage::DiskBackend;
        let (cat, cs) = setup();
        let dir = crate::testutil::scratch_dir("session_recover");
        let journal_path = dir.join("wal.journal");

        let mut s = MonitorSession::new(cat.clone(), cs.clone());
        s.attach_journal(Journal::create(&journal_path).unwrap());
        s.attach_backend(Box::new(DiskBackend::new(dir.join("snaps")).unwrap()));
        assert_eq!(s.backend_kind(), Some("disk"));
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&arrival("t1", 2, "bob")).unwrap();
        // Epoch advance -> snapshot persisted + S record journaled. The
        // event carries the full post-block state: t1 stays pending.
        s.apply(&mined_with(
            "t0",
            vec![("Pay".to_string(), tuple![1i64, "ann"])],
            vec![(
                "t1".to_string(),
                vec![("Pay".to_string(), tuple![2i64, "bob"])],
            )],
        ))
        .unwrap();
        assert_eq!(s.stats().snapshots_persisted, 1);
        // Post-snapshot tail: two more events.
        s.apply(&arrival("t2", 3, "cam")).unwrap();
        s.apply(&evict("t1")).unwrap();
        let want = state_bytes(&s);
        let want_epoch = s.epoch();
        drop(s);

        let backend = Box::new(DiskBackend::new(dir.join("snaps")).unwrap());
        let (recovered, report) =
            MonitorSession::recover(cat.clone(), cs.clone(), &journal_path, backend).unwrap();
        assert!(report.snapshot_loaded.is_some());
        assert_eq!(report.snapshot_epoch, 1);
        assert_eq!(report.snapshots_rejected, 0);
        assert_eq!(report.total_records, 7, "5 events + 1 undo + 1 boundary");
        assert_eq!(report.total_events, 5);
        assert_eq!(report.wal_tail_records, 2, "only the tail is replayed");
        assert_eq!(recovered.epoch(), want_epoch);
        assert_eq!(state_bytes(&recovered), want, "byte-identical state");
        assert_self_consistent(&recovered);
        assert_eq!(
            recovered.undo_depth(),
            1,
            "the pre-tail undo record reseeded the reorg stack"
        );

        // And the recovered session keeps journaling + snapshotting. The
        // event snapshot carries the *full* post-block base state.
        let mut recovered = recovered;
        recovered
            .apply(&mined(
                "t2",
                vec![
                    ("Pay".to_string(), tuple![1i64, "ann"]),
                    ("Pay".to_string(), tuple![3i64, "cam"]),
                ],
            ))
            .unwrap();
        assert_eq!(recovered.stats().snapshots_persisted, 1);
        let rec = Journal::recover(&journal_path).unwrap();
        assert_eq!(
            rec.records.len(),
            10,
            "tail event + its undo + its boundary appended"
        );
    }

    #[test]
    fn recovery_skips_corrupt_snapshots_and_can_fall_back_to_full_replay() {
        use bcdb_storage::DiskBackend;
        let (cat, cs) = setup();
        let dir = crate::testutil::scratch_dir("session_recover_corrupt");
        let journal_path = dir.join("wal.journal");

        let mut s = MonitorSession::new(cat.clone(), cs.clone());
        s.attach_journal(Journal::create(&journal_path).unwrap());
        s.attach_backend(Box::new(DiskBackend::new(dir.join("snaps")).unwrap()));
        s.apply(&arrival("t0", 1, "ann")).unwrap();
        s.apply(&mined("t0", vec![("Pay".to_string(), tuple![1i64, "ann"])]))
            .unwrap();
        s.apply(&arrival("t1", 2, "bob")).unwrap();
        s.apply(&mined("t1", vec![("Pay".to_string(), tuple![2i64, "bob"])]))
            .unwrap();
        let want = state_bytes(&s);
        drop(s);

        // Corrupt the newest snapshot: recovery must fall back to the
        // older one and replay a longer tail.
        let mut snaps: Vec<_> = std::fs::read_dir(dir.join("snaps"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        snaps.sort();
        let newest = snaps.last().unwrap().clone();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let backend = Box::new(DiskBackend::new(dir.join("snaps")).unwrap());
        let (recovered, report) =
            MonitorSession::recover(cat.clone(), cs.clone(), &journal_path, backend).unwrap();
        assert_eq!(report.snapshots_rejected, 1);
        assert_eq!(report.snapshot_epoch, 1, "fell back to the older snapshot");
        assert_eq!(state_bytes(&recovered), want);

        // All snapshots gone -> full replay from the journal alone.
        std::fs::remove_dir_all(dir.join("snaps")).unwrap();
        let backend = Box::new(DiskBackend::new(dir.join("snaps")).unwrap());
        let (recovered, report) =
            MonitorSession::recover(cat, cs, &journal_path, backend).unwrap();
        assert!(report.snapshot_loaded.is_none());
        assert_eq!(report.snapshots_rejected, 2);
        assert_eq!(report.wal_tail_records, report.total_records);
        assert_eq!(state_bytes(&recovered), want);
    }

    #[test]
    fn snapshot_cadence_is_configurable() {
        use bcdb_storage::DiskBackend;
        let (cat, cs) = setup();
        let dir = crate::testutil::scratch_dir("session_cadence");
        let mut s = MonitorSession::new(cat, cs);
        s.attach_backend(Box::new(DiskBackend::new(dir.join("snaps")).unwrap()));
        s.set_config(MonitorConfig {
            snapshot_every: 2,
            ..MonitorConfig::default()
        });
        for i in 0..4 {
            s.apply(&mined(
                &format!("t{i}"),
                vec![("Pay".to_string(), tuple![i as i64, "ann"])],
            ))
            .unwrap();
        }
        assert_eq!(s.stats().snapshots_persisted, 2, "every 2nd advance");

        // snapshot_every = 0 disables persistence entirely.
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        s.attach_backend(Box::new(DiskBackend::new(dir.join("snaps2")).unwrap()));
        s.set_config(MonitorConfig {
            snapshot_every: 0,
            ..MonitorConfig::default()
        });
        s.apply(&mined("t0", vec![("Pay".to_string(), tuple![1i64, "ann"])]))
            .unwrap();
        assert_eq!(s.stats().snapshots_persisted, 0);
    }

    #[test]
    fn bad_event_references_are_reported() {
        let (cat, cs) = setup();
        let mut s = MonitorSession::new(cat, cs);
        let bad_rel = ChainEvent::TxArrived {
            name: "t0".to_string(),
            tuples: vec![("NoSuch".to_string(), tuple![1i64])],
        };
        assert!(matches!(
            s.apply(&bad_rel),
            Err(MonitorError::UnknownRelation(_))
        ));
        assert!(matches!(
            s.apply(&evict("ghost")),
            Err(MonitorError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn recheck_round_parallel_matches_serial() {
        fn build() -> MonitorSession {
            let (cat, cs) = setup();
            let dup =
                parse_denial_constraint("q() <- Pay(i, x), Pay(j, x), i != j", &cat).unwrap();
            let solo = parse_denial_constraint("q() <- Pay(i, 'cam')", &cat).unwrap();
            let mut s = MonitorSession::new(cat, cs);
            for i in 0..4 {
                s.register(format!("dup-{i}"), dup.clone());
            }
            s.register("no-cam", solo);
            s.apply(&arrival("t0", 1, "ann")).unwrap();
            s.apply(&arrival("t1", 2, "ann")).unwrap();
            s.apply(&arrival("t2", 3, "bob")).unwrap();
            s
        }
        let checks: Vec<RoundCheck> = (0..5)
            .map(|slot| RoundCheck {
                slot,
                budget: BudgetSpec::UNLIMITED,
                retry: RetryPolicy::NONE,
            })
            .collect();
        let mut serial = build();
        serial.attach_shared_cache(Arc::new(SharedEnumCache::new()));
        let narrow = serial.recheck_round(&checks, 1);
        let mut parallel = build();
        parallel.attach_shared_cache(Arc::new(SharedEnumCache::new()));
        let wide = parallel.recheck_round(&checks, 4);
        assert_eq!(narrow.len(), wide.len());
        for (a, b) in narrow.iter().zip(&wide) {
            assert_eq!(a.slot, b.slot, "results come back in input order");
            assert_eq!(a.verdict.name, b.verdict.name);
            assert_eq!(a.verdict.verdict, b.verdict.verdict);
        }
        assert_eq!(serial.stats().rechecks, 5);
        assert_eq!(parallel.stats().rechecks, 5);
        assert!(parallel.dirty_indices().is_empty());
        // Fork stats were absorbed: the parent solver saw all five checks.
        assert_eq!(parallel.solver_stats().checks, serial.solver_stats().checks);
        // Four identical shapes: the serial path answers the last three
        // from the shared cache (verdict memo or component replay).
        assert!(narrow.iter().map(|r| r.cache_hits).sum::<u64>() >= 3);
    }
}
