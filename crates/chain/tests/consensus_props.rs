//! Property tests for the consensus substrate: miner templates always
//! validate, respect the size cap, never include conflicting transactions,
//! and the chain's UTXO set conserves value.

use bcdb_chain::{
    build_block_template, Block, Blockchain, ChainParams, KeyPair, Keyring, Mempool, OutPoint,
    ScriptPubKey, ScriptSig, Transaction, TxInput, TxOutput,
};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

fn keys(n: u64) -> Vec<KeyPair> {
    (0..n).map(KeyPair::from_secret).collect()
}

fn pay(from: &KeyPair, prev: OutPoint, to: &KeyPair, value: u64, change: u64) -> Transaction {
    let mut outs = vec![TxOutput {
        value,
        script: ScriptPubKey::P2pk(to.public().clone()),
    }];
    if change > 0 {
        outs.push(TxOutput {
            value: change,
            script: ScriptPubKey::P2pk(from.public().clone()),
        });
    }
    let msg = Transaction::signing_digest(&[prev], &outs);
    Transaction::new(
        vec![TxInput {
            prev,
            script_sig: ScriptSig::Sig(from.sign(&msg)),
            spender: from.public().clone(),
        }],
        outs,
    )
}

/// Funds wallet 0 with `coins` outputs of 100_000 satoshis each.
fn funded_chain(ks: &[KeyPair], coins: usize) -> (Blockchain, Transaction) {
    let ring = Keyring::new(ks);
    let mut chain = Blockchain::new(ChainParams {
        subsidy: 100_000 * coins as u64,
        max_block_vsize: 100_000,
    });
    let cb = Transaction::new(
        vec![],
        (0..coins)
            .map(|_| TxOutput {
                value: 100_000,
                script: ScriptPubKey::P2pk(ks[0].public().clone()),
            })
            .collect(),
    );
    let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
    chain.append(b, &ring).unwrap();
    (chain, cb)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random mixes of independent, dependent, and conflicting payments:
    /// the template always appends cleanly, never double-spends, and
    /// collects fees consistent with the coinbase claim.
    #[test]
    fn miner_templates_always_validate(
        spends in prop::collection::vec((0..6usize, 1..5u64, prop::bool::ANY), 1..10),
        cap in 200usize..2000,
    ) {
        let ks = keys(4);
        let (_, cb) = funded_chain(&ks, 6);
        // Rebuild the chain with the requested cap.
        let mut chain = {
            let ring = Keyring::new(&ks);
            let mut c = Blockchain::new(ChainParams { subsidy: 600_000, max_block_vsize: cap.max(200) });
            let b = Block::new(1, c.tip().hash(), vec![cb.clone()]);
            c.append(b, &ring).unwrap();
            c
        };
        let mut pool = Mempool::new();
        let mut children: Vec<Transaction> = Vec::new();
        for (coin, tenth, spend_child) in spends {
            let tx = if spend_child && !children.is_empty() {
                // Spend a mempool-created output (dependency chain).
                let parent = children.last().unwrap().clone();
                let value = parent.outputs()[0].value;
                if value < 2_000 { continue; }
                pay(&ks[1], parent.outpoint(1), &ks[2], value * tenth / 8, 0)
            } else {
                pay(&ks[0], cb.outpoint(coin as u32 % 6 + 1), &ks[1], 10_000 * tenth, 100_000 - 10_000 * tenth - 1_000)
            };
            if pool.insert(&chain, tx.clone()).is_ok() {
                children.push(tx);
            }
        }
        let ring = Keyring::new(&ks);
        let block = build_block_template(&chain, &pool, &ring, &ks[3]);
        // Size cap respected.
        let vsize: usize = block.transactions.iter().map(|t| t.vsize()).sum();
        prop_assert!(vsize <= chain.params().max_block_vsize);
        // No outpoint spent twice within the block.
        let mut seen: FxHashSet<OutPoint> = FxHashSet::default();
        for tx in &block.transactions {
            for i in tx.inputs() {
                prop_assert!(seen.insert(i.prev), "double spend in template");
            }
        }
        // The block validates and appends.
        let before = chain.utxo().total_value();
        let minted = chain.params().subsidy;
        chain.append(block.clone(), &ring).unwrap();
        // Value conservation: new total = old total + subsidy + fees kept
        // by the coinbase minus fees... i.e. old + coinbase_outputs -
        // consumed + created-by-others. Simpler global check:
        // total_after = total_before + subsidy (fees just move around).
        let after = chain.utxo().total_value();
        let fees: u64 = block.transactions[0].output_value() - minted;
        prop_assert_eq!(after + fees, before + minted + fees);
    }
}
