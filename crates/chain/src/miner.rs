//! Block-template assembly: the miner's constrained knapsack (§1).
//!
//! "Miners choose transactions to include in a new block, typically while
//! trying to maximize the transaction fees. However, it is intractable to
//! determine an optimal set … this is a constrained version of the
//! knapsack problem." Like real miners, we use a greedy fee-rate heuristic
//! with dependency awareness instead of solving the knapsack exactly.

use crate::block::{Block, Blockchain};
use crate::keys::KeyPair;
use crate::mempool::Mempool;
use crate::script::{Keyring, ScriptPubKey};
use crate::tx::{Transaction, TxOutput};

/// Assembles the next block: greedy by fee rate, skipping transactions
/// whose inputs are unavailable (unmet dependencies, or conflicts with a
/// higher-fee-rate selection), under the block-size cap. The coinbase pays
/// subsidy + collected fees to `miner`.
pub fn build_block_template(
    chain: &Blockchain,
    mempool: &Mempool,
    keyring: &Keyring<'_>,
    miner: &KeyPair,
) -> Block {
    let mut order: Vec<usize> = (0..mempool.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(mempool.entries()[i].feerate_millisats));

    let mut scratch = chain.utxo().clone();
    let mut selected: Vec<Transaction> = Vec::new();
    let mut fees: u64 = 0;
    // Coinbase size must fit too; reserve a generous bound.
    let coinbase_reserve = 10 + 31;
    let mut used = coinbase_reserve;
    let cap = chain.params().max_block_vsize;

    // Multiple passes so children become eligible once parents are picked;
    // bounded by mempool size.
    let mut changed = true;
    let mut taken = vec![false; mempool.len()];
    while changed {
        changed = false;
        for &i in &order {
            if taken[i] {
                continue;
            }
            let entry = &mempool.entries()[i];
            if used + entry.tx.vsize() > cap {
                continue;
            }
            // validate covers: inputs unspent in scratch (dependencies met,
            // no conflict with a selected tx) and scripts valid.
            if let Ok(fee) = scratch.validate(&entry.tx, keyring) {
                scratch.apply(&entry.tx);
                selected.push(entry.tx.clone());
                fees += fee;
                used += entry.tx.vsize();
                taken[i] = true;
                changed = true;
            }
        }
    }

    let coinbase = Transaction::new(
        vec![],
        vec![TxOutput {
            value: chain.params().subsidy + fees,
            script: ScriptPubKey::P2pk(miner.public().clone()),
        }],
    );
    let mut txs = vec![coinbase];
    txs.extend(selected);
    Block::new(chain.height() + 1, chain.tip().hash(), txs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::ChainParams;
    use crate::script::ScriptSig;
    use crate::tx::{OutPoint, TxInput};

    fn pay(from: &KeyPair, prev: OutPoint, to: &KeyPair, value: u64) -> Transaction {
        let outs = vec![TxOutput {
            value,
            script: ScriptPubKey::P2pk(to.public().clone()),
        }];
        let msg = Transaction::signing_digest(&[prev], &outs);
        Transaction::new(
            vec![TxInput {
                prev,
                script_sig: ScriptSig::Sig(from.sign(&msg)),
                spender: from.public().clone(),
            }],
            outs,
        )
    }

    fn setup() -> (Blockchain, Mempool, Vec<KeyPair>, Transaction) {
        let keys: Vec<KeyPair> = (0..4).map(KeyPair::from_secret).collect();
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        let cb = Transaction::new(
            vec![],
            vec![
                TxOutput {
                    value: 100_000,
                    script: ScriptPubKey::P2pk(keys[0].public().clone()),
                },
                TxOutput {
                    value: 100_000,
                    script: ScriptPubKey::P2pk(keys[0].public().clone()),
                },
            ],
        );
        let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
        chain.append(b, &ring).unwrap();
        (chain, Mempool::new(), keys, cb)
    }

    #[test]
    fn picks_higher_feerate_conflict() {
        let (chain, mut pool, keys, cb) = setup();
        let ring = Keyring::new(&keys);
        let low = pay(&keys[0], cb.outpoint(1), &keys[1], 95_000); // fee 5k
        let high = pay(&keys[0], cb.outpoint(1), &keys[2], 80_000); // fee 20k
        pool.insert(&chain, low.clone()).unwrap();
        pool.insert(&chain, high.clone()).unwrap();
        let block = build_block_template(&chain, &pool, &ring, &keys[3]);
        let mined: Vec<_> = block.transactions[1..].iter().map(|t| t.txid()).collect();
        assert!(mined.contains(&high.txid()));
        assert!(!mined.contains(&low.txid()));
        // Coinbase claims subsidy + 20k.
        assert_eq!(
            block.transactions[0].output_value(),
            chain.params().subsidy + 20_000
        );
    }

    #[test]
    fn includes_children_after_parents() {
        let (chain, mut pool, keys, cb) = setup();
        let ring = Keyring::new(&keys);
        // Parent pays modest fee; child pays high fee. Greedy sorted by
        // feerate sees the child first but must defer until the parent is in.
        let parent = pay(&keys[0], cb.outpoint(2), &keys[1], 99_000); // fee 1k
        let child = pay(&keys[1], parent.outpoint(1), &keys[2], 50_000); // fee 49k
        pool.insert(&chain, parent.clone()).unwrap();
        pool.insert(&chain, child.clone()).unwrap();
        let block = build_block_template(&chain, &pool, &ring, &keys[3]);
        let mined: Vec<_> = block.transactions[1..].iter().map(|t| t.txid()).collect();
        assert!(mined.contains(&parent.txid()));
        assert!(mined.contains(&child.txid()));
        // Order within block: parent before child.
        let pi = mined.iter().position(|t| *t == parent.txid()).unwrap();
        let ci = mined.iter().position(|t| *t == child.txid()).unwrap();
        assert!(pi < ci);
    }

    #[test]
    fn respects_block_size_cap() {
        let keys: Vec<KeyPair> = (0..3).map(KeyPair::from_secret).collect();
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams {
            subsidy: 1_000,
            max_block_vsize: 160, // coinbase (41) + one small tx (109)
        });
        let cb = Transaction::new(
            vec![],
            vec![
                TxOutput {
                    value: 499,
                    script: ScriptPubKey::P2pk(keys[0].public().clone()),
                },
                TxOutput {
                    value: 501,
                    script: ScriptPubKey::P2pk(keys[0].public().clone()),
                },
            ],
        );
        let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
        chain.append(b, &ring).unwrap();
        let mut pool = Mempool::new();
        pool.insert(&chain, pay(&keys[0], cb.outpoint(1), &keys[1], 400))
            .unwrap();
        pool.insert(&chain, pay(&keys[0], cb.outpoint(2), &keys[1], 400))
            .unwrap();
        let block = build_block_template(&chain, &pool, &ring, &keys[2]);
        // Only one of the two independent payments fits.
        assert_eq!(block.transactions.len(), 2);
        let vsize: usize = block.transactions.iter().map(|t| t.vsize()).sum();
        assert!(vsize <= 160);
    }

    #[test]
    fn mined_block_appends_cleanly() {
        let (mut chain, mut pool, keys, cb) = setup();
        let ring = Keyring::new(&keys);
        pool.insert(&chain, pay(&keys[0], cb.outpoint(1), &keys[1], 90_000))
            .unwrap();
        let block = build_block_template(&chain, &pool, &ring, &keys[3]);
        chain.append(block, &ring).unwrap();
        assert_eq!(chain.height(), 2);
    }
}
