//! Deriving contradicting transactions.
//!
//! The paper's conclusion lists as future work "how to automatically derive
//! a new transaction that contradicts previous transactions". In the UTXO
//! model a contradiction is a double spend: any transaction consuming one
//! of the same outpoints can never coexist with the original on chain
//! (footnote 3: "users can attempt to retract a transaction by issuing a
//! more attractive contradicting transaction, e.g., one with higher fee" —
//! Bitcoin's replace-by-fee).
//!
//! [`derive_contradiction`] builds exactly that: given a pending
//! transaction to cancel, it re-spends one of its inputs back to a key of
//! the owner's choosing, with a strictly higher fee so miners prefer it.

use crate::block::Blockchain;
use crate::keys::{KeyPair, PublicKey};
use crate::mempool::Mempool;
use crate::script::{ScriptPubKey, ScriptSig};
use crate::tx::{Transaction, TxInput, TxOutput};

/// Why a contradiction could not be derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConflictError {
    /// The target has no inputs (a coinbase cannot be contradicted).
    NoInputs,
    /// No input of the target is owned by the supplied key (we can only
    /// re-sign our own coins).
    NotOwner,
    /// The consumed value is too small to pay a strictly higher fee.
    InsufficientValue,
}

impl std::fmt::Display for ConflictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConflictError::NoInputs => write!(f, "target transaction has no inputs"),
            ConflictError::NotOwner => write!(f, "no input is spendable by the supplied key"),
            ConflictError::InsufficientValue => {
                write!(f, "consumed value cannot cover a higher fee")
            }
        }
    }
}

impl std::error::Error for ConflictError {}

/// Derives a transaction that **contradicts** `target`: it spends one of
/// `target`'s inputs (so the `TxIn` key constraint forbids their
/// coexistence), pays the remaining value to `refund_to`, and carries at
/// least `fee_bump` satoshis more fee than `target` paid for that input's
/// share — making it the more attractive choice for miners.
///
/// `target`'s consumed outputs are resolved through the chain UTXO set and
/// the mempool (the input may itself spend a pending output).
pub fn derive_contradiction(
    chain: &Blockchain,
    mempool: &Mempool,
    target: &Transaction,
    owner: &KeyPair,
    refund_to: &PublicKey,
    fee_bump: u64,
) -> Result<Transaction, ConflictError> {
    if target.inputs().is_empty() {
        return Err(ConflictError::NoInputs);
    }
    // Find an input whose consumed output is a P2PK of `owner`.
    let target_fee = mempool.get(&target.txid()).map(|e| e.fee).unwrap_or(0);
    for input in target.inputs() {
        let Some(consumed) = mempool.resolve_output(chain, &input.prev) else {
            continue;
        };
        let ScriptPubKey::P2pk(pk) = &consumed.script else {
            continue;
        };
        if pk != owner.public() {
            continue;
        }
        let fee = target_fee.saturating_add(fee_bump).max(1);
        if consumed.value <= fee {
            return Err(ConflictError::InsufficientValue);
        }
        let outs = vec![TxOutput {
            value: consumed.value - fee,
            script: ScriptPubKey::P2pk(refund_to.clone()),
        }];
        let msg = Transaction::signing_digest(&[input.prev], &outs);
        return Ok(Transaction::new(
            vec![TxInput {
                prev: input.prev,
                script_sig: ScriptSig::Sig(owner.sign(&msg)),
                spender: owner.public().clone(),
            }],
            outs,
        ));
    }
    Err(ConflictError::NotOwner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, ChainParams};
    use crate::script::Keyring;

    fn setup() -> (Blockchain, Mempool, Vec<KeyPair>, Transaction) {
        let keys: Vec<KeyPair> = (0..3).map(KeyPair::from_secret).collect();
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        let cb = Transaction::new(
            vec![],
            vec![TxOutput {
                value: 100_000,
                script: ScriptPubKey::P2pk(keys[0].public().clone()),
            }],
        );
        let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
        chain.append(b, &ring).unwrap();
        (chain, Mempool::new(), keys, cb)
    }

    fn pay(from: &KeyPair, prev: crate::tx::OutPoint, to: &PublicKey, v: u64) -> Transaction {
        let outs = vec![TxOutput {
            value: v,
            script: ScriptPubKey::P2pk(to.clone()),
        }];
        let msg = Transaction::signing_digest(&[prev], &outs);
        Transaction::new(
            vec![TxInput {
                prev,
                script_sig: ScriptSig::Sig(from.sign(&msg)),
                spender: from.public().clone(),
            }],
            outs,
        )
    }

    #[test]
    fn derived_transaction_conflicts_and_outbids() {
        let (chain, mut pool, keys, cb) = setup();
        let stuck = pay(&keys[0], cb.outpoint(1), keys[1].public(), 99_000); // fee 1k
        pool.insert(&chain, stuck.clone()).unwrap();
        let replacement =
            derive_contradiction(&chain, &pool, &stuck, &keys[0], keys[0].public(), 5_000).unwrap();
        // Shares the input: mutually exclusive on chain.
        assert_eq!(replacement.inputs()[0].prev, stuck.inputs()[0].prev);
        assert_ne!(replacement.txid(), stuck.txid());
        // Strictly higher fee.
        let fee = pool.insert(&chain, replacement.clone()).unwrap();
        assert_eq!(fee, 6_000);
        // The miner prefers the replacement.
        let ring = Keyring::new(&keys);
        let block = crate::miner::build_block_template(&chain, &pool, &ring, &keys[2]);
        let mined: Vec<_> = block.transactions[1..].iter().map(|t| t.txid()).collect();
        assert!(mined.contains(&replacement.txid()));
        assert!(!mined.contains(&stuck.txid()));
    }

    #[test]
    fn cannot_contradict_foreign_or_coinbase() {
        let (chain, mut pool, keys, cb) = setup();
        // Coinbase: no inputs.
        assert_eq!(
            derive_contradiction(&chain, &pool, &cb, &keys[0], keys[0].public(), 1),
            Err(ConflictError::NoInputs)
        );
        // Foreign coin: keys[1] does not own cb's output.
        let stuck = pay(&keys[0], cb.outpoint(1), keys[1].public(), 99_000);
        pool.insert(&chain, stuck.clone()).unwrap();
        assert_eq!(
            derive_contradiction(&chain, &pool, &stuck, &keys[1], keys[1].public(), 1),
            Err(ConflictError::NotOwner)
        );
    }

    #[test]
    fn insufficient_value_detected() {
        let (chain, mut pool, keys, cb) = setup();
        let stuck = pay(&keys[0], cb.outpoint(1), keys[1].public(), 99_000); // fee 1k
        pool.insert(&chain, stuck.clone()).unwrap();
        // Bump exceeding the whole coin.
        assert_eq!(
            derive_contradiction(&chain, &pool, &stuck, &keys[0], keys[0].public(), 200_000),
            Err(ConflictError::InsufficientValue)
        );
    }

    #[test]
    fn works_against_pending_parents() {
        let (chain, mut pool, keys, cb) = setup();
        // keys[0] pays keys[1]; keys[1]'s pending output is then spent by a
        // second pending tx; contradict the child.
        let parent = pay(&keys[0], cb.outpoint(1), keys[1].public(), 99_000);
        pool.insert(&chain, parent.clone()).unwrap();
        let child = pay(&keys[1], parent.outpoint(1), keys[2].public(), 95_000);
        pool.insert(&chain, child.clone()).unwrap();
        let replacement =
            derive_contradiction(&chain, &pool, &child, &keys[1], keys[1].public(), 1_000).unwrap();
        assert_eq!(replacement.inputs()[0].prev, child.inputs()[0].prev);
    }
}
