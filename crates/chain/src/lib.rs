#![warn(missing_docs)]

//! A Bitcoin-shaped blockchain simulator and workload generator.
//!
//! The paper's experiments (§7) run against real Bitcoin data: the first
//! 100k–300k blocks as the current state, subsequent blocks as pending
//! transactions, and injected double spends as FD contradictions. This
//! crate builds the equivalent synthetic substrate from scratch:
//!
//! * UTXO [`tx`] transactions with fees, [`script`]s (P2PK / multisig /
//!   hash locks) and simulated [`keys`];
//! * [`block`]s and chain validation, a fee-greedy [`miner`] (the paper's
//!   "constrained knapsack"), and a conflict-admitting [`mempool`];
//! * a deterministic scenario [`generator`] with dataset presets
//!   ([`params`]) mirroring Table 1;
//! * a relational [`export()`] into the paper's `TxOut`/`TxIn` schema with
//!   its keys and inclusion dependencies (Example 1).

pub mod block;
pub mod conflict;
pub mod export;
pub mod export_io;
pub mod faults;
pub mod generator;
pub mod hash;
pub mod keys;
pub mod mempool;
pub mod miner;
pub mod params;
pub mod script;
pub mod tx;
pub mod utxo;

pub use block::{Block, BlockError, Blockchain, ChainParams};
pub use conflict::{derive_contradiction, ConflictError};
pub use export::{bitcoin_catalog, export, feerate_probabilities, ExportCounts, RelationalExport};
pub use export_io::{
    read_export, read_export_file, write_export, write_export_file, ExportIoError,
};
pub use faults::{inject, inject_all, Fault, FaultReport};
pub use generator::{generate, Scenario, ScenarioConfig};
pub use hash::{hash_bytes, Digest, Hasher};
pub use keys::{KeyPair, PublicKey, Signature};
pub use mempool::{Mempool, MempoolEntry, MempoolError};
pub use miner::build_block_template;
pub use params::Dataset;
pub use script::{verify_spend, Keyring, ScriptPubKey, ScriptSig};
pub use tx::{OutPoint, Transaction, TxInput, TxOutput};
pub use utxo::{TxError, UtxoSet};
