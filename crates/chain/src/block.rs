//! Blocks and the chain.

use crate::hash::{Digest, Hasher};
use crate::script::Keyring;
use crate::tx::Transaction;
use crate::utxo::{TxError, UtxoSet};
use std::fmt;

/// A block: an ordered batch of transactions committed together (§1), plus
/// the hash of its predecessor (§2).
#[derive(Clone, Debug)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the predecessor block ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Transactions; the first must be the coinbase.
    pub transactions: Vec<Transaction>,
    hash: Digest,
}

impl Block {
    /// Assembles a block and computes its hash.
    pub fn new(height: u64, prev_hash: Digest, transactions: Vec<Transaction>) -> Self {
        let mut h = Hasher::new();
        h.write_str("block")
            .write_u64(height)
            .write_digest(&prev_hash);
        for tx in &transactions {
            h.write_digest(&tx.txid());
        }
        let hash = h.finish();
        Block {
            height,
            prev_hash,
            transactions,
            hash,
        }
    }

    /// The block hash.
    pub fn hash(&self) -> Digest {
        self.hash
    }
}

/// Chain consensus parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChainParams {
    /// Block subsidy in satoshis (fixed; halving is irrelevant to the
    /// reasoning problem).
    pub subsidy: u64,
    /// Maximum total transaction vsize per block — the knapsack capacity
    /// miners optimise against.
    pub max_block_vsize: usize,
}

impl Default for ChainParams {
    fn default() -> Self {
        ChainParams {
            subsidy: 50_0000_0000, // 50 BTC in satoshis
            max_block_vsize: 40_000,
        }
    }
}

/// Why a block failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockError {
    /// Wrong predecessor hash or height.
    BadLinkage,
    /// The first transaction must be (the only) coinbase.
    BadCoinbase,
    /// A transaction failed validation.
    BadTransaction(usize, TxError),
    /// The coinbase claims more than subsidy + fees.
    ExcessiveCoinbase {
        /// What it claimed.
        claimed: u64,
        /// What was allowed.
        allowed: u64,
    },
    /// The block exceeds the size limit.
    TooLarge(usize),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::BadLinkage => write!(f, "block does not extend the tip"),
            BlockError::BadCoinbase => write!(f, "first transaction must be the only coinbase"),
            BlockError::BadTransaction(i, e) => write!(f, "transaction {i}: {e}"),
            BlockError::ExcessiveCoinbase { claimed, allowed } => {
                write!(f, "coinbase claims {claimed}, allowed {allowed}")
            }
            BlockError::TooLarge(size) => write!(f, "block vsize {size} over limit"),
        }
    }
}

impl std::error::Error for BlockError {}

/// An append-only chain of blocks with the induced UTXO set.
#[derive(Clone, Debug)]
pub struct Blockchain {
    params: ChainParams,
    blocks: Vec<Block>,
    utxo: UtxoSet,
}

impl Blockchain {
    /// A chain containing only the genesis block (empty coinbase-less
    /// genesis: the Genesis Block's reward is famously unspendable, so we
    /// simply mint nothing there).
    pub fn new(params: ChainParams) -> Self {
        let genesis = Block::new(0, Digest::ZERO, Vec::new());
        Blockchain {
            params,
            blocks: vec![genesis],
            utxo: UtxoSet::new(),
        }
    }

    /// Consensus parameters.
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// Current height (genesis = 0).
    pub fn height(&self) -> u64 {
        (self.blocks.len() - 1) as u64
    }

    /// The tip block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// All blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The current UTXO set.
    pub fn utxo(&self) -> &UtxoSet {
        &self.utxo
    }

    /// Validates and appends a block.
    pub fn append(&mut self, block: Block, keyring: &Keyring<'_>) -> Result<(), BlockError> {
        if block.prev_hash != self.tip().hash() || block.height != self.height() + 1 {
            return Err(BlockError::BadLinkage);
        }
        let vsize: usize = block.transactions.iter().map(|t| t.vsize()).sum();
        if vsize > self.params.max_block_vsize {
            return Err(BlockError::TooLarge(vsize));
        }
        let [coinbase, rest @ ..] = block.transactions.as_slice() else {
            return Err(BlockError::BadCoinbase);
        };
        if !coinbase.is_coinbase() || rest.iter().any(|t| t.is_coinbase()) {
            return Err(BlockError::BadCoinbase);
        }
        // Validate sequentially against a scratch UTXO view so intra-block
        // spends of freshly created outputs work.
        let mut scratch = self.utxo.clone();
        let mut fees: u64 = 0;
        for (i, tx) in rest.iter().enumerate() {
            let fee = scratch
                .validate(tx, keyring)
                .map_err(|e| BlockError::BadTransaction(i + 1, e))?;
            scratch.apply(tx);
            fees += fee;
        }
        let allowed = self.params.subsidy + fees;
        if coinbase.output_value() > allowed {
            return Err(BlockError::ExcessiveCoinbase {
                claimed: coinbase.output_value(),
                allowed,
            });
        }
        scratch.apply(coinbase);
        self.utxo = scratch;
        self.blocks.push(block);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::script::{ScriptPubKey, ScriptSig};
    use crate::tx::{TxInput, TxOutput};

    fn coinbase(kp: &KeyPair, value: u64, _tag: u64) -> Transaction {
        Transaction::new(
            vec![],
            vec![TxOutput {
                value,
                script: ScriptPubKey::P2pk(kp.public().clone()),
            }],
        )
    }

    #[test]
    fn genesis_and_simple_growth() {
        let miner = KeyPair::from_secret(1);
        let keys = vec![miner.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        assert_eq!(chain.height(), 0);
        let b1 = Block::new(
            1,
            chain.tip().hash(),
            vec![coinbase(&miner, 50_0000_0000, 1)],
        );
        chain.append(b1, &ring).unwrap();
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.utxo().len(), 1);
    }

    #[test]
    fn linkage_enforced() {
        let miner = KeyPair::from_secret(1);
        let keys = vec![miner.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        let wrong = Block::new(1, Digest::ZERO, vec![coinbase(&miner, 1, 1)]);
        // prev_hash is the genesis hash, not ZERO.
        assert_eq!(chain.append(wrong, &ring), Err(BlockError::BadLinkage));
        let wrong_height = Block::new(2, chain.tip().hash(), vec![coinbase(&miner, 1, 1)]);
        assert_eq!(
            chain.append(wrong_height, &ring),
            Err(BlockError::BadLinkage)
        );
    }

    #[test]
    fn coinbase_rules() {
        let miner = KeyPair::from_secret(1);
        let keys = vec![miner.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        // No coinbase at all.
        let empty = Block::new(1, chain.tip().hash(), vec![]);
        assert_eq!(chain.append(empty, &ring), Err(BlockError::BadCoinbase));
        // Excessive claim.
        let greedy = Block::new(
            1,
            chain.tip().hash(),
            vec![coinbase(&miner, 99_0000_0000, 1)],
        );
        assert!(matches!(
            chain.append(greedy, &ring),
            Err(BlockError::ExcessiveCoinbase { .. })
        ));
    }

    #[test]
    fn intra_block_spend_chain_is_valid() {
        let miner = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let keys = vec![miner.clone(), bob.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        let cb1 = coinbase(&miner, 50_0000_0000, 1);
        let b1 = Block::new(1, chain.tip().hash(), vec![cb1.clone()]);
        chain.append(b1, &ring).unwrap();
        // Block 2: miner pays bob; bob immediately re-spends in the same block.
        let outs1 = vec![TxOutput {
            value: 49_0000_0000,
            script: ScriptPubKey::P2pk(bob.public().clone()),
        }];
        let msg1 = Transaction::signing_digest(&[cb1.outpoint(1)], &outs1);
        let pay_bob = Transaction::new(
            vec![TxInput {
                prev: cb1.outpoint(1),
                script_sig: ScriptSig::Sig(miner.sign(&msg1)),
                spender: miner.public().clone(),
            }],
            outs1,
        );
        let outs2 = vec![TxOutput {
            value: 48_0000_0000,
            script: ScriptPubKey::P2pk(miner.public().clone()),
        }];
        let msg2 = Transaction::signing_digest(&[pay_bob.outpoint(1)], &outs2);
        let bob_spends = Transaction::new(
            vec![TxInput {
                prev: pay_bob.outpoint(1),
                script_sig: ScriptSig::Sig(bob.sign(&msg2)),
                spender: bob.public().clone(),
            }],
            outs2,
        );
        let cb2 = coinbase(&miner, 50_0000_0000, 2);
        let b2 = Block::new(2, chain.tip().hash(), vec![cb2, pay_bob, bob_spends]);
        chain.append(b2, &ring).unwrap();
        assert_eq!(chain.height(), 2);
    }

    #[test]
    fn oversized_block_rejected() {
        let miner = KeyPair::from_secret(1);
        let keys = vec![miner.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams {
            subsidy: 100,
            max_block_vsize: 20, // smaller than any coinbase
        });
        let b = Block::new(1, chain.tip().hash(), vec![coinbase(&miner, 100, 1)]);
        assert!(matches!(
            chain.append(b, &ring),
            Err(BlockError::TooLarge(_))
        ));
    }
}
