//! Dataset presets mirroring the paper's Table 1, scaled to laptop size.
//!
//! The paper used the first 100k/200k/300k real Bitcoin blocks
//! (217k/7.3M/38.5M transactions) with ~2.7k/3.7k/2.8k pending
//! transactions and 10–50 injected FD contradictions. Absolute base sizes
//! are scaled down (the algorithms' asymptotics are dominated by the
//! pending set and index lookups, not base cardinality), while the
//! *pending-set sizes and contradiction counts are kept at the paper's
//! values* since they drive clique enumeration and component structure.

use crate::generator::ScenarioConfig;

/// A named dataset preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Scaled counterpart of the paper's D100.
    D100,
    /// Scaled counterpart of the paper's D200 (the default dataset).
    D200,
    /// Scaled counterpart of the paper's D300.
    D300,
    /// A small dataset for tests and smoke runs.
    Small,
}

impl Dataset {
    /// The preset's display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::D100 => "D100",
            Dataset::D200 => "D200",
            Dataset::D300 => "D300",
            Dataset::Small => "Small",
        }
    }

    /// The generator configuration for this preset.
    pub fn config(self, seed: u64) -> ScenarioConfig {
        match self {
            Dataset::D100 => ScenarioConfig {
                seed,
                wallets: 120,
                blocks: 180,
                txs_per_block: 28,
                pending_txs: 2741,
                contradictions: 20,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            Dataset::D200 => ScenarioConfig {
                seed,
                wallets: 200,
                blocks: 400,
                txs_per_block: 55,
                pending_txs: 3733,
                contradictions: 20,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            Dataset::D300 => ScenarioConfig {
                seed,
                wallets: 300,
                blocks: 700,
                txs_per_block: 85,
                pending_txs: 2766,
                contradictions: 20,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            Dataset::Small => ScenarioConfig {
                seed,
                wallets: 20,
                blocks: 20,
                txs_per_block: 8,
                pending_txs: 60,
                contradictions: 5,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
        }
    }

    /// All paper-scale presets, smallest first.
    pub fn paper_presets() -> [Dataset; 3] {
        [Dataset::D100, Dataset::D200, Dataset::D300]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let d100 = Dataset::D100.config(1);
        let d200 = Dataset::D200.config(1);
        let d300 = Dataset::D300.config(1);
        assert!(d100.blocks < d200.blocks && d200.blocks < d300.blocks);
        assert!(d100.txs_per_block < d200.txs_per_block);
        // Pending sizes match the paper's Table 1 exactly.
        assert_eq!(d100.pending_txs, 2741);
        assert_eq!(d200.pending_txs, 3733);
        assert_eq!(d300.pending_txs, 2766);
        // Default contradictions match the paper's default of 20.
        assert_eq!(d200.contradictions, 20);
    }

    #[test]
    fn names() {
        assert_eq!(Dataset::D200.name(), "D200");
        assert_eq!(Dataset::Small.name(), "Small");
    }
}
