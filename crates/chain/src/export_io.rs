//! Text serialization of [`RelationalExport`]s.
//!
//! Generating D300 takes ~10 s; dumping the export once and reloading it
//! makes experiments and CLI sessions instant. The format is a plain
//! line-based text file over the fixed `TxOut`/`TxIn` schema:
//!
//! ```text
//! bcdb-export v1
//! base
//! O <txId> <ser> <pk> <amount>
//! I <prevTxId> <prevSer> <pk> <amount> <newTxId> <sig>
//! tx <name>
//! I ...
//! O ...
//! ```
//!
//! Fields are space-separated; the simulator's identifiers are hex strings
//! and never contain whitespace.

use crate::export::{bitcoin_catalog, ExportCounts, RelationalExport};
use bcdb_storage::{tuple, RelationId, Tuple, Value};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from reading a dumped export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExportIoError {
    /// Missing or wrong header line.
    BadHeader,
    /// A malformed line, with its 1-based number.
    BadLine(usize, String),
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ExportIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportIoError::BadHeader => write!(f, "not a bcdb-export v1 file"),
            ExportIoError::BadLine(n, detail) => write!(f, "line {n}: {detail}"),
            ExportIoError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ExportIoError {}

impl From<std::io::Error> for ExportIoError {
    fn from(e: std::io::Error) -> Self {
        ExportIoError::Io(e.to_string())
    }
}

fn write_tuple(out: &mut String, kind: char, t: &Tuple) {
    out.push(kind);
    for v in t.values() {
        out.push(' ');
        match v {
            Value::Int(i) => write!(out, "{i}").unwrap(),
            Value::Text(s) => out.push_str(s),
            Value::Bool(b) => write!(out, "{b}").unwrap(),
        }
    }
    out.push('\n');
}

/// Serializes an export to a writer.
pub fn write_export(e: &RelationalExport, w: &mut impl Write) -> Result<(), ExportIoError> {
    let txout = e.catalog.resolve("TxOut").expect("bitcoin schema");
    let mut out = String::new();
    out.push_str("bcdb-export v1\n");
    writeln!(out, "blocks {}", e.base_counts.blocks).unwrap();
    out.push_str("base\n");
    for (rel, t) in &e.base {
        write_tuple(&mut out, if *rel == txout { 'O' } else { 'I' }, t);
    }
    for (name, tuples) in &e.pending {
        writeln!(out, "tx {name}").unwrap();
        for (rel, t) in tuples {
            write_tuple(&mut out, if *rel == txout { 'O' } else { 'I' }, t);
        }
    }
    w.write_all(out.as_bytes())?;
    Ok(())
}

fn parse_row(
    line: &str,
    lineno: usize,
    txout: RelationId,
    txin: RelationId,
) -> Result<(RelationId, Tuple), ExportIoError> {
    let bad = |d: &str| ExportIoError::BadLine(lineno, d.to_string());
    let mut parts = line.split(' ');
    let kind = parts.next().ok_or_else(|| bad("empty row"))?;
    let fields: Vec<&str> = parts.collect();
    let int = |s: &str| -> Result<i64, ExportIoError> {
        s.parse().map_err(|_| bad(&format!("bad integer '{s}'")))
    };
    match kind {
        "O" => {
            let [txid, ser, pk, amount] = fields.as_slice() else {
                return Err(bad("TxOut rows have 4 fields"));
            };
            Ok((txout, tuple![*txid, int(ser)?, *pk, int(amount)?]))
        }
        "I" => {
            let [prev, pser, pk, amount, new, sig] = fields.as_slice() else {
                return Err(bad("TxIn rows have 6 fields"));
            };
            Ok((
                txin,
                tuple![*prev, int(pser)?, *pk, int(amount)?, *new, *sig],
            ))
        }
        other => Err(bad(&format!("unknown row kind '{other}'"))),
    }
}

/// Deserializes an export from a reader, recomputing the Table-1 counts.
pub fn read_export(r: impl Read) -> Result<RelationalExport, ExportIoError> {
    let (catalog, constraints) = bitcoin_catalog();
    let txout = catalog.resolve("TxOut").expect("schema");
    let txin = catalog.resolve("TxIn").expect("schema");
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().transpose()?.ok_or(ExportIoError::BadHeader)?;
    if header.trim() != "bcdb-export v1" {
        return Err(ExportIoError::BadHeader);
    }

    let mut base: Vec<(RelationId, Tuple)> = Vec::new();
    let mut pending: Vec<(String, Vec<(RelationId, Tuple)>)> = Vec::new();
    let mut base_counts = ExportCounts::default();
    let mut pending_counts = ExportCounts::default();
    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Base,
        Tx,
    }
    let mut section = Section::Preamble;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(b) = line.strip_prefix("blocks ") {
            base_counts.blocks = b
                .parse()
                .map_err(|_| ExportIoError::BadLine(lineno, "bad block count".into()))?;
            continue;
        }
        if line == "base" {
            section = Section::Base;
            continue;
        }
        if let Some(name) = line.strip_prefix("tx ") {
            pending.push((name.to_string(), Vec::new()));
            pending_counts.transactions += 1;
            section = Section::Tx;
            continue;
        }
        let (rel, t) = parse_row(line, lineno, txout, txin)?;
        let counts = match section {
            Section::Base => &mut base_counts,
            Section::Tx => &mut pending_counts,
            Section::Preamble => {
                return Err(ExportIoError::BadLine(
                    lineno,
                    "row before any section".into(),
                ))
            }
        };
        if rel == txout {
            counts.outputs += 1;
        } else {
            counts.inputs += 1;
        }
        match section {
            Section::Base => base.push((rel, t)),
            Section::Tx => pending
                .last_mut()
                .expect("tx section open")
                .1
                .push((rel, t)),
            Section::Preamble => unreachable!(),
        }
    }
    // Base transactions are not individually delimited in the format; count
    // distinct creating txids.
    let mut seen = std::collections::HashSet::new();
    for (rel, t) in &base {
        if *rel == txout {
            seen.insert(t[0].clone());
        }
    }
    base_counts.transactions = seen.len();

    Ok(RelationalExport {
        catalog,
        constraints,
        base,
        pending,
        base_counts,
        pending_counts,
    })
}

/// Convenience: dump to a file path.
pub fn write_export_file(
    e: &RelationalExport,
    path: &std::path::Path,
) -> Result<(), ExportIoError> {
    let mut f = std::fs::File::create(path)?;
    write_export(e, &mut f)
}

/// Convenience: load from a file path.
pub fn read_export_file(path: &std::path::Path) -> Result<RelationalExport, ExportIoError> {
    read_export(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export;
    use crate::generator::{generate, ScenarioConfig};

    fn small_export() -> RelationalExport {
        let cfg = ScenarioConfig {
            seed: 21,
            wallets: 8,
            blocks: 5,
            txs_per_block: 4,
            pending_txs: 12,
            contradictions: 2,
            ..ScenarioConfig::default()
        };
        export(&generate(&cfg)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let e = small_export();
        let mut buf = Vec::new();
        write_export(&e, &mut buf).unwrap();
        let back = read_export(buf.as_slice()).unwrap();
        assert_eq!(back.base, e.base);
        assert_eq!(back.pending, e.pending);
        assert_eq!(back.base_counts.blocks, e.base_counts.blocks);
        assert_eq!(back.base_counts.inputs, e.base_counts.inputs);
        assert_eq!(back.base_counts.outputs, e.base_counts.outputs);
        assert_eq!(back.pending_counts, e.pending_counts);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            read_export(&b"nonsense"[..]).unwrap_err(),
            ExportIoError::BadHeader
        );
        let bad_row = b"bcdb-export v1\nbase\nO only two\n";
        assert!(matches!(
            read_export(&bad_row[..]).unwrap_err(),
            ExportIoError::BadLine(3, _)
        ));
        let bad_kind = b"bcdb-export v1\nbase\nZ a b c d\n";
        assert!(matches!(
            read_export(&bad_kind[..]).unwrap_err(),
            ExportIoError::BadLine(3, _)
        ));
        let premature = b"bcdb-export v1\nO a 1 b 2\n";
        assert!(matches!(
            read_export(&premature[..]).unwrap_err(),
            ExportIoError::BadLine(2, _)
        ));
        let bad_int = b"bcdb-export v1\nbase\nO t xx pk 5\n";
        assert!(matches!(
            read_export(&bad_int[..]).unwrap_err(),
            ExportIoError::BadLine(3, _)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let e = small_export();
        let dir = std::env::temp_dir().join("bcdb_export_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.bcdb");
        write_export_file(&e, &path).unwrap();
        let back = read_export_file(&path).unwrap();
        assert_eq!(back.base.len(), e.base.len());
        assert_eq!(back.pending.len(), e.pending.len());
        std::fs::remove_file(&path).ok();
    }
}
