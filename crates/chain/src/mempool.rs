//! The mempool: issued-but-unaccepted transactions (§2).
//!
//! Unlike a node implementation that rejects conflicting transactions, the
//! mempool here deliberately *admits* conflicts (double spends) and
//! dependency chains — they are precisely the pending-transaction structure
//! the paper reasons about, and the contradiction-injection experiments
//! (Fig. 6e/6f) require them.

use crate::block::Blockchain;
use crate::hash::Digest;
use crate::tx::{OutPoint, Transaction, TxOutput};
use rustc_hash::FxHashMap;

/// A mempool entry: the transaction plus its fee and fee rate.
#[derive(Clone, Debug)]
pub struct MempoolEntry {
    /// The transaction.
    pub tx: Transaction,
    /// Fee in satoshis.
    pub fee: u64,
    /// Fee per vsize byte ×1000 (integer millisats/vB).
    pub feerate_millisats: u64,
}

/// Why a transaction was refused by the mempool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MempoolError {
    /// An input could not be resolved in the chain UTXO set or the mempool.
    UnresolvableInput(OutPoint),
    /// Output value exceeds input value.
    NegativeFee,
    /// The txid is already present.
    Duplicate,
    /// Coinbases do not enter mempools.
    Coinbase,
}

/// The set of pending transactions known to the node.
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    entries: Vec<MempoolEntry>,
    by_txid: FxHashMap<Digest, usize>,
    /// outpoint -> (creating mempool txid) for dependency resolution.
    outputs: FxHashMap<OutPoint, usize>,
}

impl Mempool {
    /// An empty mempool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mempool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[MempoolEntry] {
        &self.entries
    }

    /// The entry with the given txid.
    pub fn get(&self, txid: &Digest) -> Option<&MempoolEntry> {
        self.by_txid.get(txid).map(|&i| &self.entries[i])
    }

    /// Resolves the output an outpoint refers to, looking first at the
    /// chain's UTXO set, then at outputs created by mempool transactions
    /// (spent or conflicted outpoints on chain resolve to `None`).
    pub fn resolve_output<'a>(
        &'a self,
        chain: &'a Blockchain,
        point: &OutPoint,
    ) -> Option<&'a TxOutput> {
        if let Some(out) = chain.utxo().get(point) {
            return Some(out);
        }
        self.outputs
            .get(point)
            .map(|&i| &self.entries[i].tx.outputs()[(point.vout - 1) as usize])
    }

    /// Admits a transaction, computing its fee against the chain + mempool
    /// view. Conflicting (double-spending) transactions are admitted; the
    /// consensus layer will pick at most one of each conflict set.
    pub fn insert(&mut self, chain: &Blockchain, tx: Transaction) -> Result<u64, MempoolError> {
        if tx.is_coinbase() {
            return Err(MempoolError::Coinbase);
        }
        if self.by_txid.contains_key(&tx.txid()) {
            return Err(MempoolError::Duplicate);
        }
        let mut input_value: u64 = 0;
        for input in tx.inputs() {
            let out = self
                .resolve_output(chain, &input.prev)
                .ok_or(MempoolError::UnresolvableInput(input.prev))?;
            input_value += out.value;
        }
        let output_value = tx.output_value();
        if output_value > input_value {
            return Err(MempoolError::NegativeFee);
        }
        let fee = input_value - output_value;
        let idx = self.entries.len();
        let feerate_millisats = fee.saturating_mul(1000) / tx.vsize() as u64;
        self.by_txid.insert(tx.txid(), idx);
        for i in 0..tx.outputs().len() {
            self.outputs.insert(tx.outpoint(i as u32 + 1), idx);
        }
        self.entries.push(MempoolEntry {
            tx,
            fee,
            feerate_millisats,
        });
        Ok(fee)
    }

    /// Removes every transaction whose txid is in `mined`, plus any
    /// transaction that directly conflicts with (shares an input with) a
    /// mined one or whose ancestry disappeared. Mirrors a node updating
    /// its mempool after a block: "conflicting transactions … are
    /// immediately discarded".
    pub fn purge_after_block(&mut self, chain: &Blockchain, mined: &[Digest]) {
        let old = std::mem::take(&mut self.entries);
        self.by_txid.clear();
        self.outputs.clear();
        for entry in old {
            if mined.contains(&entry.tx.txid()) {
                continue;
            }
            // Re-admit; drops entries whose inputs became unresolvable
            // (spent by a mined conflict and not re-creatable).
            let _ = self.insert(chain, entry.tx);
        }
    }

    /// Rebuilds the pool without the transactions in `doomed`, returning
    /// the txids actually removed (in insertion order). Also drops any
    /// survivor whose ancestry became unresolvable, keeping `by_txid` and
    /// the outputs index consistent with the entry list.
    fn rebuild_without(
        &mut self,
        chain: &Blockchain,
        doomed: &rustc_hash::FxHashSet<Digest>,
    ) -> Vec<Digest> {
        let old = std::mem::take(&mut self.entries);
        self.by_txid.clear();
        self.outputs.clear();
        let mut removed = Vec::new();
        for entry in old {
            let id = entry.tx.txid();
            if doomed.contains(&id) || self.insert(chain, entry.tx).is_err() {
                removed.push(id);
            }
        }
        removed
    }

    /// Removes the transaction with `txid` and every pending transaction
    /// that (transitively) spends one of its outputs. Returns the removed
    /// txids in insertion order; empty if `txid` is not in the pool.
    pub fn remove_descendants(&mut self, chain: &Blockchain, txid: &Digest) -> Vec<Digest> {
        if !self.by_txid.contains_key(txid) {
            return Vec::new();
        }
        let mut doomed = rustc_hash::FxHashSet::default();
        doomed.insert(*txid);
        // Admission requires parents to already be present (in the pool or
        // on chain), so insertion order is topological and one forward pass
        // closes the descendant set.
        for e in &self.entries {
            if e.tx.inputs().iter().any(|i| doomed.contains(&i.prev.txid)) {
                doomed.insert(e.tx.txid());
            }
        }
        self.rebuild_without(chain, &doomed)
    }

    /// Evicts the `count` lowest-fee-rate transactions (ties broken toward
    /// the earliest-inserted) together with their descendants, mirroring a
    /// node shedding load when the mempool is full. Returns the removed
    /// txids in insertion order; the total may exceed `count` because
    /// descendants of an evicted transaction cannot stay.
    pub fn evict_lowest_feerate(&mut self, chain: &Blockchain, count: usize) -> Vec<Digest> {
        if count == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (self.entries[i].feerate_millisats, i));
        let mut doomed = rustc_hash::FxHashSet::default();
        for &i in order.iter().take(count) {
            doomed.insert(self.entries[i].tx.txid());
        }
        for e in &self.entries {
            if e.tx.inputs().iter().any(|i| doomed.contains(&i.prev.txid)) {
                doomed.insert(e.tx.txid());
            }
        }
        self.rebuild_without(chain, &doomed)
    }

    /// Verifies the internal indexes against the entry list: `by_txid` must
    /// be a bijection onto entry positions, the outputs index must point at
    /// the creating entry with an in-range vout, and every entry's inputs
    /// must resolve against the chain or earlier pool entries. Used by
    /// fault-injection tests; cheap enough to call after every mutation.
    pub fn check_invariants(&self, chain: &Blockchain) -> Result<(), String> {
        if self.by_txid.len() != self.entries.len() {
            return Err(format!(
                "by_txid has {} entries for {} transactions",
                self.by_txid.len(),
                self.entries.len()
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            let id = e.tx.txid();
            if self.by_txid.get(&id) != Some(&i) {
                return Err(format!("by_txid[{id:?}] does not map to position {i}"));
            }
            for (j, _) in e.tx.outputs().iter().enumerate() {
                let point = e.tx.outpoint(j as u32 + 1);
                if self.outputs.get(&point) != Some(&i) {
                    return Err(format!("outputs index misses outpoint {point:?} of entry {i}"));
                }
            }
            for input in e.tx.inputs() {
                if self.resolve_output(chain, &input.prev).is_none() {
                    return Err(format!("entry {i} has unresolvable input {:?}", input.prev));
                }
                // Pool-created parents must precede their spenders.
                if let Some(&p) = self.outputs.get(&input.prev) {
                    if chain.utxo().get(&input.prev).is_none() && p >= i {
                        return Err(format!("entry {i} spends output of later entry {p}"));
                    }
                }
            }
        }
        for (point, &i) in &self.outputs {
            let outs = self
                .entries
                .get(i)
                .ok_or_else(|| format!("outputs index points past the entry list ({i})"))?;
            if outs.tx.txid() != point.txid
                || point.vout == 0
                || (point.vout as usize) > outs.tx.outputs().len()
            {
                return Err(format!("outputs index entry {point:?} -> {i} is stale"));
            }
        }
        Ok(())
    }

    /// Pending transactions whose inputs collide — the double-spend pairs.
    pub fn conflict_pairs(&self) -> Vec<(Digest, Digest)> {
        let mut by_input: FxHashMap<OutPoint, Vec<Digest>> = FxHashMap::default();
        for e in &self.entries {
            for i in e.tx.inputs() {
                by_input.entry(i.prev).or_default().push(e.tx.txid());
            }
        }
        let mut out = Vec::new();
        for group in by_input.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    out.push((*a, *b));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, ChainParams};
    use crate::keys::KeyPair;
    use crate::script::{Keyring, ScriptPubKey, ScriptSig};
    use crate::tx::TxInput;

    fn funded_chain(kp: &KeyPair) -> (Blockchain, Transaction) {
        let keys = vec![kp.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        let cb = Transaction::new(
            vec![],
            vec![TxOutput {
                value: 100_000,
                script: ScriptPubKey::P2pk(kp.public().clone()),
            }],
        );
        let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
        chain.append(b, &ring).unwrap();
        (chain, cb)
    }

    fn pay(from: &KeyPair, prev: OutPoint, to: &KeyPair, value: u64) -> Transaction {
        let outs = vec![TxOutput {
            value,
            script: ScriptPubKey::P2pk(to.public().clone()),
        }];
        let msg = Transaction::signing_digest(&[prev], &outs);
        Transaction::new(
            vec![TxInput {
                prev,
                script_sig: ScriptSig::Sig(from.sign(&msg)),
                spender: from.public().clone(),
            }],
            outs,
        )
    }

    #[test]
    fn fees_and_dependencies() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let (chain, cb) = funded_chain(&alice);
        let mut pool = Mempool::new();
        let t1 = pay(&alice, cb.outpoint(1), &bob, 90_000);
        let fee = pool.insert(&chain, t1.clone()).unwrap();
        assert_eq!(fee, 10_000);
        // Child spends the mempool-created output.
        let t2 = pay(&bob, t1.outpoint(1), &alice, 85_000);
        let fee2 = pool.insert(&chain, t2.clone()).unwrap();
        assert_eq!(fee2, 5_000);
        assert_eq!(pool.len(), 2);
        assert!(pool.get(&t1.txid()).is_some());
        // Unresolvable input rejected.
        let bogus = pay(
            &alice,
            OutPoint {
                txid: crate::hash::hash_bytes(b"x"),
                vout: 1,
            },
            &bob,
            1,
        );
        assert!(matches!(
            pool.insert(&chain, bogus),
            Err(MempoolError::UnresolvableInput(_))
        ));
        // Duplicate rejected.
        assert_eq!(pool.insert(&chain, t1), Err(MempoolError::Duplicate));
    }

    #[test]
    fn conflicts_are_admitted_and_reported() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let carol = KeyPair::from_secret(3);
        let (chain, cb) = funded_chain(&alice);
        let mut pool = Mempool::new();
        let t1 = pay(&alice, cb.outpoint(1), &bob, 90_000);
        let t2 = pay(&alice, cb.outpoint(1), &carol, 95_000); // double spend
        pool.insert(&chain, t1.clone()).unwrap();
        pool.insert(&chain, t2.clone()).unwrap();
        assert_eq!(pool.len(), 2);
        let pairs = pool.conflict_pairs();
        assert_eq!(pairs.len(), 1);
        let (a, b) = pairs[0];
        assert!(a == t1.txid() || b == t1.txid());
    }

    #[test]
    fn purge_after_block_drops_mined_and_conflicts() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let carol = KeyPair::from_secret(3);
        let keys = vec![alice.clone(), bob.clone(), carol.clone()];
        let ring = Keyring::new(&keys);
        let (mut chain, cb) = funded_chain(&alice);
        let mut pool = Mempool::new();
        let t1 = pay(&alice, cb.outpoint(1), &bob, 90_000);
        let t2 = pay(&alice, cb.outpoint(1), &carol, 95_000);
        pool.insert(&chain, t1.clone()).unwrap();
        pool.insert(&chain, t2.clone()).unwrap();
        // Mine t1.
        let cb2 = Transaction::new(
            vec![],
            vec![TxOutput {
                value: chain.params().subsidy,
                script: ScriptPubKey::P2pk(alice.public().clone()),
            }],
        );
        let b2 = Block::new(2, chain.tip().hash(), vec![cb2, t1.clone()]);
        chain.append(b2, &ring).unwrap();
        pool.purge_after_block(&chain, &[t1.txid()]);
        // t2 conflicted with the mined t1 -> dropped.
        assert!(pool.is_empty());
    }

    #[test]
    fn remove_descendants_takes_whole_chain() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let carol = KeyPair::from_secret(3);
        let (chain, cb) = funded_chain(&alice);
        let mut pool = Mempool::new();
        let t1 = pay(&alice, cb.outpoint(1), &bob, 90_000);
        let t2 = pay(&bob, t1.outpoint(1), &carol, 85_000);
        let t3 = pay(&carol, t2.outpoint(1), &alice, 80_000);
        for t in [&t1, &t2, &t3] {
            pool.insert(&chain, t.clone()).unwrap();
        }
        // Removing the middle of the chain takes its child but not its parent.
        let removed = pool.remove_descendants(&chain, &t2.txid());
        assert_eq!(removed, vec![t2.txid(), t3.txid()]);
        assert_eq!(pool.len(), 1);
        assert!(pool.get(&t1.txid()).is_some());
        pool.check_invariants(&chain).unwrap();
        // Unknown txid is a no-op.
        assert!(pool.remove_descendants(&chain, &t2.txid()).is_empty());
        pool.check_invariants(&chain).unwrap();
    }

    #[test]
    fn evict_lowest_feerate_takes_descendants_and_keeps_indexes() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let carol = KeyPair::from_secret(3);
        let keys = vec![alice.clone(), bob.clone(), carol.clone()];
        let ring = Keyring::new(&keys);
        let mut chain = Blockchain::new(ChainParams::default());
        // Two independent coins for alice.
        let cb = Transaction::new(
            vec![],
            vec![
                TxOutput {
                    value: 100_000,
                    script: ScriptPubKey::P2pk(alice.public().clone()),
                },
                TxOutput {
                    value: 100_000,
                    script: ScriptPubKey::P2pk(alice.public().clone()),
                },
            ],
        );
        let b = Block::new(1, chain.tip().hash(), vec![cb.clone()]);
        chain.append(b, &ring).unwrap();
        let mut pool = Mempool::new();
        // Low-fee parent (fee 1k) with a high-fee child, plus an unrelated
        // high-fee payment (fee 20k).
        let parent = pay(&alice, cb.outpoint(1), &bob, 99_000);
        let child = pay(&bob, parent.outpoint(1), &carol, 50_000);
        let rich = pay(&alice, cb.outpoint(2), &carol, 80_000);
        for t in [&parent, &child, &rich] {
            pool.insert(&chain, t.clone()).unwrap();
        }
        let removed = pool.evict_lowest_feerate(&chain, 1);
        // The lowest fee rate is the parent; its child must go with it.
        assert_eq!(removed, vec![parent.txid(), child.txid()]);
        assert_eq!(pool.len(), 1);
        assert!(pool.get(&rich.txid()).is_some());
        pool.check_invariants(&chain).unwrap();
        // Evicting more than remains empties the pool without panicking.
        let removed = pool.evict_lowest_feerate(&chain, 10);
        assert_eq!(removed, vec![rich.txid()]);
        assert!(pool.is_empty());
        pool.check_invariants(&chain).unwrap();
    }

    #[test]
    fn check_invariants_accepts_normal_pools() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let (chain, cb) = funded_chain(&alice);
        let mut pool = Mempool::new();
        pool.check_invariants(&chain).unwrap();
        let t1 = pay(&alice, cb.outpoint(1), &bob, 90_000);
        let t2 = pay(&bob, t1.outpoint(1), &alice, 85_000);
        pool.insert(&chain, t1).unwrap();
        pool.insert(&chain, t2).unwrap();
        pool.check_invariants(&chain).unwrap();
    }
}
