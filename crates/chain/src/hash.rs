//! Deterministic hashing for the simulated chain.
//!
//! Real Bitcoin uses double-SHA256; for the simulator we only need a
//! deterministic, collision-resistant-in-practice digest for txids, block
//! hashes, and simulated signatures. A 256-bit digest is derived from four
//! lanes of an FNV-1a/splitmix64 construction — no cryptographic claims,
//! but stable across runs and platforms, which the experiments require.

use std::fmt;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u64; 4]);

impl Digest {
    /// The all-zero digest (used as the genesis predecessor).
    pub const ZERO: Digest = Digest([0; 4]);

    /// Renders the digest as 64 lowercase hex characters.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for lane in self.0 {
            s.push_str(&format!("{lane:016x}"));
        }
        s
    }

    /// A short 16-hex-character prefix (convenient display id).
    pub fn short(self) -> String {
        format!("{:016x}", self.0[0])
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// An incremental hasher producing a [`Digest`].
#[derive(Clone, Debug)]
pub struct Hasher {
    lanes: [u64; 4],
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Starts a fresh hasher.
    pub fn new() -> Self {
        Hasher {
            lanes: [
                0xcbf29ce484222325,
                0x9e3779b97f4a7c15,
                0x6a09e667f3bcc908,
                0xbb67ae8584caa73b,
            ],
        }
    }

    /// Absorbs a 64-bit word.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            *lane = splitmix64(*lane ^ v.rotate_left(i as u32 * 16));
        }
        self
    }

    /// Absorbs bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
        self.write_u64(bytes.len() as u64);
        self
    }

    /// Absorbs a string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs another digest.
    pub fn write_digest(&mut self, d: &Digest) -> &mut Self {
        for lane in d.0 {
            self.write_u64(lane);
        }
        self
    }

    /// Produces the digest.
    pub fn finish(&self) -> Digest {
        let mut out = self.lanes;
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = splitmix64(lane.wrapping_add(i as u64));
        }
        Digest(out)
    }
}

/// One-shot digest of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> Digest {
    let mut h = Hasher::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abcd"));
    }

    #[test]
    fn length_matters() {
        // Same words, different lengths must differ.
        assert_ne!(hash_bytes(b"a\0"), hash_bytes(b"a"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn order_matters() {
        let mut a = Hasher::new();
        a.write_u64(1).write_u64(2);
        let mut b = Hasher::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_rendering() {
        let d = hash_bytes(b"hello");
        assert_eq!(d.to_hex().len(), 64);
        assert!(d.to_hex().chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(d.short().len(), 16);
        assert!(d.to_hex().starts_with(&d.short()));
    }

    #[test]
    fn no_trivial_collisions_in_small_space() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = Hasher::new();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }
}
