//! Chain-layer fault injection for robustness testing.
//!
//! The governed solver must stay sound when the substrate misbehaves. This
//! module perturbs a generated [`Scenario`] with the faults a node sees in
//! the wild — reorgs, mempool eviction storms, conflict floods, and
//! duplicate/orphan replays — deterministically, so property tests can
//! assert that a faulted database never makes the solver contradict the
//! unbudgeted oracle.

use crate::block::{Block, Blockchain};
use crate::generator::Scenario;
use crate::hash::hash_bytes;
use crate::mempool::MempoolError;
use crate::script::{Keyring, ScriptPubKey, ScriptSig};
use crate::tx::{OutPoint, Transaction, TxInput, TxOutput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault to inject into a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Disconnect the top `depth` blocks, return their transactions to the
    /// mempool, and mine `depth` divergent replacement blocks.
    Reorg {
        /// Blocks to disconnect (clamped to the chain height).
        depth: u64,
    },
    /// Evict the `count` lowest-fee-rate pending transactions (plus their
    /// descendants), as a node shedding load would.
    EvictionStorm {
        /// Seed transactions to evict.
        count: usize,
    },
    /// Flood the mempool with double spends of outpoints that pending
    /// transactions already consume.
    ConflictFlood {
        /// Conflicting transactions to attempt.
        count: usize,
    },
    /// Replay transactions already in the pool; every one must be refused
    /// as a duplicate.
    DuplicateReplay {
        /// Transactions to replay.
        count: usize,
    },
    /// Replay transactions whose inputs do not exist anywhere; every one
    /// must be refused as unresolvable.
    OrphanReplay {
        /// Orphans to attempt.
        count: usize,
    },
    /// Corrupt the tail of a monitor journal mid-record, as a crash during
    /// an unflushed write would. A no-op at the chain layer ([`inject`]
    /// returns an empty report); the monitor's soak harness interprets it
    /// against the journal file.
    JournalTornWrite {
        /// Bytes of the final record to keep (the rest is torn off).
        bytes: usize,
    },
    /// Drop whole records from the end of a monitor journal, as a crash
    /// between fsyncs would. A no-op at the chain layer, interpreted by the
    /// monitor's soak harness.
    JournalTruncatedTail {
        /// Complete records to drop from the tail.
        records: usize,
    },
}

impl Fault {
    /// Whether this fault targets the monitor journal rather than the
    /// chain/mempool substrate. Journal faults pass through [`inject`]
    /// unchanged so storms can mix both kinds in one list.
    pub fn is_journal(self) -> bool {
        matches!(
            self,
            Fault::JournalTornWrite { .. } | Fault::JournalTruncatedTail { .. }
        )
    }
}

/// What a fault injection did to the scenario.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Blocks disconnected from the chain tip.
    pub blocks_disconnected: u64,
    /// Replacement blocks mined onto the truncated chain.
    pub blocks_mined: u64,
    /// Transactions newly admitted to the mempool.
    pub txs_admitted: usize,
    /// Transactions the mempool refused (duplicates, orphans, dust, …).
    pub txs_rejected: usize,
    /// Transactions removed from the mempool.
    pub txs_removed: usize,
}

/// Injects `fault` into `scenario` in place, deterministically for a given
/// `(fault, seed)` pair. The scenario's chain and mempool stay internally
/// consistent afterwards ([`crate::Mempool::check_invariants`] holds).
pub fn inject(scenario: &mut Scenario, fault: Fault, seed: u64) -> FaultReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6661756c74); // "fault"
    match fault {
        Fault::Reorg { depth } => reorg(scenario, depth, &mut rng),
        Fault::EvictionStorm { count } => eviction_storm(scenario, count),
        Fault::ConflictFlood { count } => conflict_flood(scenario, count, &mut rng),
        Fault::DuplicateReplay { count } => duplicate_replay(scenario, count),
        Fault::OrphanReplay { count } => orphan_replay(scenario, count),
        Fault::JournalTornWrite { .. } | Fault::JournalTruncatedTail { .. } => {
            FaultReport::default()
        }
    }
}

/// Builds a signed single-input payment for fault transactions.
fn signed_payment(
    scenario: &Scenario,
    owner: usize,
    prev: OutPoint,
    payee: usize,
    value: u64,
) -> Transaction {
    let outs = vec![TxOutput {
        value,
        script: ScriptPubKey::P2pk(scenario.keys[payee].public().clone()),
    }];
    let msg = Transaction::signing_digest(&[prev], &outs);
    Transaction::new(
        vec![TxInput {
            prev,
            script_sig: ScriptSig::Sig(scenario.keys[owner].sign(&msg)),
            spender: scenario.keys[owner].public().clone(),
        }],
        outs,
    )
}

fn reorg(scenario: &mut Scenario, depth: u64, rng: &mut StdRng) -> FaultReport {
    let mut report = FaultReport::default();
    let depth = depth.min(scenario.chain.height());
    if depth == 0 {
        return report;
    }
    let keys = scenario.keys.clone();
    let ring = Keyring::new(&keys);
    let keep = (scenario.chain.height() - depth) as usize;
    // The chain is append-only, so "disconnect" = replay the kept prefix
    // onto a fresh chain.
    let mut chain = Blockchain::new(*scenario.chain.params());
    let mut disconnected: Vec<Transaction> = Vec::new();
    for (i, block) in scenario.chain.blocks()[1..].iter().enumerate() {
        if i < keep {
            chain
                .append(block.clone(), &ring)
                .expect("kept prefix already validated on the original chain");
        } else {
            report.blocks_disconnected += 1;
            disconnected.extend(block.transactions[1..].iter().cloned());
        }
    }
    // Mine divergent replacements: empty blocks whose coinbase value is
    // salted by height *and* by the injection's rng, so every replacement
    // has a fresh txid. Height alone is not enough — a second same-depth
    // reorg would rebuild byte-identical blocks and land on the exact tip
    // it was supposed to diverge from.
    for _ in 0..depth {
        let height = chain.height() + 1;
        let miner = (height as usize) % scenario.keys.len();
        let salt: u64 = rng.random_range(0..100_000);
        let coinbase = Transaction::new(
            vec![],
            vec![TxOutput {
                value: (chain.params().subsidy - (height % 997)).saturating_sub(salt),
                script: ScriptPubKey::P2pk(scenario.keys[miner].public().clone()),
            }],
        );
        let block = Block::new(height, chain.tip().hash(), vec![coinbase]);
        chain
            .append(block, &ring)
            .expect("empty replacement blocks always validate");
        report.blocks_mined += 1;
    }
    // Return disconnected transactions to the pool (as a node does after a
    // reorg), then re-admit the old pending set against the new chain.
    // Disconnected txs go first: they are in block order, so parents
    // precede children, and old pending entries may depend on them.
    let old_pool = std::mem::take(&mut scenario.mempool);
    let before: usize = old_pool.len();
    scenario.chain = chain;
    for tx in disconnected
        .into_iter()
        .chain(old_pool.entries().iter().map(|e| e.tx.clone()))
    {
        match scenario.mempool.insert(&scenario.chain, tx) {
            Ok(_) => report.txs_admitted += 1,
            Err(_) => report.txs_rejected += 1,
        }
    }
    report.txs_removed = before.saturating_sub(scenario.mempool.len());
    report
}

fn eviction_storm(scenario: &mut Scenario, count: usize) -> FaultReport {
    let removed = scenario
        .mempool
        .evict_lowest_feerate(&scenario.chain, count);
    FaultReport {
        txs_removed: removed.len(),
        ..FaultReport::default()
    }
}

fn conflict_flood(scenario: &mut Scenario, count: usize, rng: &mut StdRng) -> FaultReport {
    let mut report = FaultReport::default();
    let owner_of = |script: &ScriptPubKey| -> Option<usize> {
        match script {
            ScriptPubKey::P2pk(pk) => scenario.keys.iter().position(|k| k.public() == pk),
            _ => None,
        }
    };
    // Outpoints already consumed by pending transactions but still live in
    // the chain UTXO set — re-spending one creates a contradiction.
    let candidates: Vec<(OutPoint, u64, usize)> = scenario
        .mempool
        .entries()
        .iter()
        .flat_map(|e| e.tx.inputs())
        .filter_map(|i| {
            let out = scenario.chain.utxo().get(&i.prev)?;
            let owner = owner_of(&out.script)?;
            Some((i.prev, out.value, owner))
        })
        .collect();
    if candidates.is_empty() {
        return report;
    }
    for n in 0..count {
        let (point, value, owner) = candidates[rng.random_range(0..candidates.len())];
        if value < 1000 {
            report.txs_rejected += 1;
            continue;
        }
        // Pay a rotating payee a varying amount so each flood transaction
        // is distinct even when it re-spends the same outpoint.
        let payee = (owner + 1 + n) % scenario.keys.len();
        let fee = value / 10 + n as u64 % 97;
        let tx = signed_payment(scenario, owner, point, payee, value.saturating_sub(fee).max(1));
        match scenario.mempool.insert(&scenario.chain, tx) {
            Ok(_) => report.txs_admitted += 1,
            Err(_) => report.txs_rejected += 1,
        }
    }
    report
}

fn duplicate_replay(scenario: &mut Scenario, count: usize) -> FaultReport {
    let mut report = FaultReport::default();
    let replay: Vec<Transaction> = scenario
        .mempool
        .entries()
        .iter()
        .take(count)
        .map(|e| e.tx.clone())
        .collect();
    for tx in replay {
        match scenario.mempool.insert(&scenario.chain, tx) {
            Err(MempoolError::Duplicate) => report.txs_rejected += 1,
            Ok(_) => report.txs_admitted += 1, // should not happen
            Err(_) => report.txs_rejected += 1,
        }
    }
    report
}

fn orphan_replay(scenario: &mut Scenario, count: usize) -> FaultReport {
    let mut report = FaultReport::default();
    for n in 0..count {
        let ghost = OutPoint {
            txid: hash_bytes(format!("orphan-{n}").as_bytes()),
            vout: 1,
        };
        let tx = signed_payment(scenario, 0, ghost, n % scenario.keys.len(), 1);
        match scenario.mempool.insert(&scenario.chain, tx) {
            Err(MempoolError::UnresolvableInput(_)) => report.txs_rejected += 1,
            Ok(_) => report.txs_admitted += 1, // should not happen
            Err(_) => report.txs_rejected += 1,
        }
    }
    report
}

/// Applies a whole storm of faults in sequence (the order given), merging
/// the reports. Convenience for property tests that want "a chaotic run".
///
/// Each injection derives its own seed by mixing the fault's *position*
/// into `seed` (golden-ratio multiply, so neighbouring indices decorrelate
/// completely — a plain `seed + i` made two same-kind faults in one storm
/// near-identical). The mempool's invariants are re-checked after **every**
/// injection, not just at the end, so the first fault that corrupts the
/// scenario is the one reported.
///
/// # Panics
///
/// If any injection leaves the scenario violating
/// [`crate::Mempool::check_invariants`].
pub fn inject_all(scenario: &mut Scenario, faults: &[Fault], seed: u64) -> FaultReport {
    let mut total = FaultReport::default();
    for (i, fault) in faults.iter().enumerate() {
        let derived = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = inject(scenario, *fault, derived);
        if let Err(detail) = scenario.mempool.check_invariants(&scenario.chain) {
            panic!("fault #{i} ({fault:?}) broke the scenario: {detail}");
        }
        total.blocks_disconnected += r.blocks_disconnected;
        total.blocks_mined += r.blocks_mined;
        total.txs_admitted += r.txs_admitted;
        total.txs_rejected += r.txs_rejected;
        total.txs_removed += r.txs_removed;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, ScenarioConfig};

    fn small() -> Scenario {
        generate(&ScenarioConfig {
            seed: 7,
            wallets: 10,
            blocks: 10,
            txs_per_block: 5,
            pending_txs: 30,
            contradictions: 3,
            ..ScenarioConfig::default()
        })
    }

    #[test]
    fn reorg_truncates_and_diverges() {
        let mut s = small();
        let original_tip = s.chain.tip().hash();
        let original_height = s.chain.height();
        let r = inject(&mut s, Fault::Reorg { depth: 2 }, 1);
        assert_eq!(r.blocks_disconnected, 2);
        assert_eq!(r.blocks_mined, 2);
        assert_eq!(s.chain.height(), original_height);
        assert_ne!(s.chain.tip().hash(), original_tip);
        // Disconnected transactions flowed back into the pool.
        assert!(r.txs_admitted > 0, "{r:?}");
        s.mempool.check_invariants(&s.chain).unwrap();
    }

    #[test]
    fn reorg_depth_zero_is_noop() {
        let mut s = small();
        let tip = s.chain.tip().hash();
        let len = s.mempool.len();
        let r = inject(&mut s, Fault::Reorg { depth: 0 }, 1);
        assert_eq!(r, FaultReport::default());
        assert_eq!(s.chain.tip().hash(), tip);
        assert_eq!(s.mempool.len(), len);
    }

    #[test]
    fn eviction_storm_shrinks_pool_consistently() {
        let mut s = small();
        let before = s.mempool.len();
        let r = inject(&mut s, Fault::EvictionStorm { count: 5 }, 1);
        assert!(r.txs_removed >= 5, "{r:?}");
        assert_eq!(s.mempool.len(), before - r.txs_removed);
        s.mempool.check_invariants(&s.chain).unwrap();
    }

    #[test]
    fn conflict_flood_adds_double_spends() {
        let mut s = small();
        let conflicts_before = s.mempool.conflict_pairs().len();
        let r = inject(&mut s, Fault::ConflictFlood { count: 10 }, 1);
        assert!(r.txs_admitted > 0, "{r:?}");
        assert!(s.mempool.conflict_pairs().len() > conflicts_before);
        s.mempool.check_invariants(&s.chain).unwrap();
    }

    #[test]
    fn replays_are_refused() {
        let mut s = small();
        let before = s.mempool.len();
        let r = inject(&mut s, Fault::DuplicateReplay { count: 10 }, 1);
        assert_eq!(r.txs_admitted, 0, "{r:?}");
        assert_eq!(r.txs_rejected, 10);
        let r = inject(&mut s, Fault::OrphanReplay { count: 10 }, 1);
        assert_eq!(r.txs_admitted, 0, "{r:?}");
        assert_eq!(r.txs_rejected, 10);
        assert_eq!(s.mempool.len(), before);
        s.mempool.check_invariants(&s.chain).unwrap();
    }

    #[test]
    fn chaotic_storm_keeps_scenario_consistent() {
        let mut s = small();
        let faults = [
            Fault::ConflictFlood { count: 8 },
            Fault::Reorg { depth: 1 },
            Fault::DuplicateReplay { count: 5 },
            Fault::EvictionStorm { count: 4 },
            Fault::OrphanReplay { count: 5 },
            Fault::Reorg { depth: 3 },
        ];
        inject_all(&mut s, &faults, 99);
        s.mempool.check_invariants(&s.chain).unwrap();
        // The export pipeline still works on a faulted scenario.
        let e = crate::export(&s).unwrap();
        assert!(!e.base.is_empty());
    }

    /// Satellite regression: with index-blind seed derivation, a second
    /// same-depth reorg rebuilt byte-identical replacement blocks and the
    /// chain never actually diverged a second time.
    #[test]
    fn repeated_reorgs_in_one_storm_diverge() {
        let mut once = small();
        inject_all(&mut once, &[Fault::Reorg { depth: 2 }], 5);
        let mut twice = small();
        inject_all(
            &mut twice,
            &[Fault::Reorg { depth: 2 }, Fault::Reorg { depth: 2 }],
            5,
        );
        assert_ne!(
            once.chain.tip().hash(),
            twice.chain.tip().hash(),
            "second reorg must move the tip again"
        );
        twice.mempool.check_invariants(&twice.chain).unwrap();
    }

    #[test]
    fn journal_faults_are_chain_level_noops() {
        let mut s = small();
        let tip = s.chain.tip().hash();
        let len = s.mempool.len();
        for fault in [
            Fault::JournalTornWrite { bytes: 3 },
            Fault::JournalTruncatedTail { records: 2 },
        ] {
            assert!(fault.is_journal());
            let r = inject(&mut s, fault, 1);
            assert_eq!(r, FaultReport::default());
        }
        assert!(!Fault::Reorg { depth: 1 }.is_journal());
        assert_eq!(s.chain.tip().hash(), tip);
        assert_eq!(s.mempool.len(), len);
    }

    #[test]
    fn injection_is_deterministic() {
        let mut a = small();
        let mut b = small();
        let faults = [
            Fault::ConflictFlood { count: 6 },
            Fault::EvictionStorm { count: 3 },
        ];
        inject_all(&mut a, &faults, 5);
        inject_all(&mut b, &faults, 5);
        let ta: Vec<_> = a.mempool.entries().iter().map(|e| e.tx.txid()).collect();
        let tb: Vec<_> = b.mempool.entries().iter().map(|e| e.tx.txid()).collect();
        assert_eq!(ta, tb);
    }
}
