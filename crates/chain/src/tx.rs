//! Transactions: many-to-many transfers from inputs to outputs (§2).

use crate::hash::{Digest, Hasher};
use crate::keys::PublicKey;
use crate::script::{ScriptPubKey, ScriptSig};

/// A reference to a previous transaction output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutPoint {
    /// The creating transaction.
    pub txid: Digest,
    /// Output serial within that transaction (1-based, like the paper's
    /// `ser` attribute).
    pub vout: u32,
}

/// A transaction input: points at a previous output and provides the
/// response to its script's challenge. Inputs fully spend the referenced
/// output (§2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxInput {
    /// The consumed output.
    pub prev: OutPoint,
    /// The spending response.
    pub script_sig: ScriptSig,
    /// The public key claiming the spend (denormalised for the relational
    /// export's `pk` attribute; validated against the consumed script).
    pub spender: PublicKey,
}

/// A transaction output: an amount and the script controlling it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxOutput {
    /// Amount in satoshis.
    pub value: u64,
    /// The spending challenge.
    pub script: ScriptPubKey,
}

/// A transaction. The txid is a digest of the full contents, computed at
/// construction (Bitcoin's historical malleability — §1's MtGox example —
/// came precisely from script data being part of the id; we keep that
/// fidelity: re-signing the same transfer yields a different txid).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    inputs: Vec<TxInput>,
    outputs: Vec<TxOutput>,
    txid: Digest,
}

impl Transaction {
    /// Builds a transaction and computes its txid.
    pub fn new(inputs: Vec<TxInput>, outputs: Vec<TxOutput>) -> Self {
        let mut h = Hasher::new();
        h.write_str("tx");
        for i in &inputs {
            h.write_digest(&i.prev.txid).write_u64(i.prev.vout as u64);
            h.write_str(&i.script_sig.display_sig());
            h.write_str(i.spender.as_str());
        }
        for o in &outputs {
            h.write_u64(o.value);
            h.write_str(&o.script.display_owner());
        }
        let txid = h.finish();
        Transaction {
            inputs,
            outputs,
            txid,
        }
    }

    /// The digest signed by spenders: commits to the transfer (outpoints
    /// and outputs) but not to the signatures themselves.
    pub fn signing_digest(inputs: &[OutPoint], outputs: &[TxOutput]) -> Digest {
        let mut h = Hasher::new();
        h.write_str("signing");
        for p in inputs {
            h.write_digest(&p.txid).write_u64(p.vout as u64);
        }
        for o in outputs {
            h.write_u64(o.value);
            h.write_str(&o.script.display_owner());
        }
        h.finish()
    }

    /// The transaction id.
    pub fn txid(&self) -> Digest {
        self.txid
    }

    /// The inputs.
    pub fn inputs(&self) -> &[TxInput] {
        &self.inputs
    }

    /// The outputs.
    pub fn outputs(&self) -> &[TxOutput] {
        &self.outputs
    }

    /// Whether this is a coinbase (block-reward) transaction: no inputs.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Total output value in satoshis.
    pub fn output_value(&self) -> u64 {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Virtual size estimate in bytes (drives the block-space knapsack:
    /// "blocks have a maximum length; transactions have varying lengths
    /// and fees").
    pub fn vsize(&self) -> usize {
        10 + 68 * self.inputs.len() + 31 * self.outputs.len()
    }

    /// The outpoint of this transaction's `vout`-th output (1-based).
    pub fn outpoint(&self, vout: u32) -> OutPoint {
        debug_assert!(vout >= 1 && (vout as usize) <= self.outputs.len());
        OutPoint {
            txid: self.txid,
            vout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn p2pk_out(kp: &KeyPair, value: u64) -> TxOutput {
        TxOutput {
            value,
            script: ScriptPubKey::P2pk(kp.public().clone()),
        }
    }

    #[test]
    fn txid_commits_to_contents() {
        let kp = KeyPair::from_secret(1);
        let a = Transaction::new(vec![], vec![p2pk_out(&kp, 50)]);
        let b = Transaction::new(vec![], vec![p2pk_out(&kp, 50)]);
        let c = Transaction::new(vec![], vec![p2pk_out(&kp, 51)]);
        assert_eq!(a.txid(), b.txid());
        assert_ne!(a.txid(), c.txid());
    }

    #[test]
    fn txid_is_malleable_through_signatures() {
        // Two transactions making the identical transfer but carrying
        // different witness data have different txids — the malleability
        // the paper's motivating attack exploited.
        let kp = KeyPair::from_secret(1);
        let payee = KeyPair::from_secret(2);
        let prev = OutPoint {
            txid: crate::hash::hash_bytes(b"prev"),
            vout: 1,
        };
        let outs = vec![p2pk_out(&payee, 40)];
        let msg1 = crate::hash::hash_bytes(b"v1");
        let msg2 = crate::hash::hash_bytes(b"v2");
        let mk = |msg: &Digest| {
            Transaction::new(
                vec![TxInput {
                    prev,
                    script_sig: ScriptSig::Sig(kp.sign(msg)),
                    spender: kp.public().clone(),
                }],
                outs.clone(),
            )
        };
        assert_ne!(mk(&msg1).txid(), mk(&msg2).txid());
    }

    #[test]
    fn signing_digest_ignores_signatures() {
        let kp = KeyPair::from_secret(1);
        let prev = vec![OutPoint {
            txid: crate::hash::hash_bytes(b"prev"),
            vout: 1,
        }];
        let outs = vec![p2pk_out(&kp, 10)];
        assert_eq!(
            Transaction::signing_digest(&prev, &outs),
            Transaction::signing_digest(&prev, &outs)
        );
    }

    #[test]
    fn coinbase_detection_and_sizes() {
        let kp = KeyPair::from_secret(1);
        let cb = Transaction::new(vec![], vec![p2pk_out(&kp, 50)]);
        assert!(cb.is_coinbase());
        assert_eq!(cb.output_value(), 50);
        assert_eq!(cb.vsize(), 10 + 31);
        assert_eq!(cb.outpoint(1).vout, 1);
    }
}
