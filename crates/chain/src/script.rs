//! Output scripts and their spending conditions.
//!
//! §2 of the paper: "Outputs are essentially an association between an
//! amount of bitcoins and a script that specifies how this money is to be
//! claimed. The typical script requires the spender to present a valid
//! cryptographic signature…, but other scripts are also possible, e.g.,
//! requiring a preimage to a cryptographic hash…, or several signatures
//! matching different public keys." All three are modelled.

use crate::hash::{hash_bytes, Digest};
use crate::keys::{KeyPair, PublicKey, Signature};

/// The challenge attached to a transaction output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptPubKey {
    /// Pay-to-public-key: one signature from the named key.
    P2pk(PublicKey),
    /// m-of-n multisignature.
    MultiSig {
        /// Required number of signatures.
        threshold: usize,
        /// The eligible keys.
        keys: Vec<PublicKey>,
    },
    /// Hash lock: reveal a preimage of the digest.
    HashLock(Digest),
}

impl ScriptPubKey {
    /// The "owner" key for relational export: the single key for P2PK, the
    /// first key for multisig, a synthetic text for hash locks.
    pub fn display_owner(&self) -> String {
        match self {
            ScriptPubKey::P2pk(pk) => pk.as_str().to_string(),
            ScriptPubKey::MultiSig { keys, .. } => keys
                .first()
                .map(|k| k.as_str().to_string())
                .unwrap_or_else(|| "multisig".into()),
            ScriptPubKey::HashLock(d) => format!("hashlock{}", d.short()),
        }
    }
}

/// The response presented by a transaction input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptSig {
    /// A single signature (for [`ScriptPubKey::P2pk`]).
    Sig(Signature),
    /// Several (key, signature) pairs (for [`ScriptPubKey::MultiSig`]).
    MultiSig(Vec<(PublicKey, Signature)>),
    /// A revealed preimage (for [`ScriptPubKey::HashLock`]).
    Preimage(Vec<u8>),
}

impl ScriptSig {
    /// The signature text for relational export (first signature, or a
    /// digest of the preimage).
    pub fn display_sig(&self) -> String {
        match self {
            ScriptSig::Sig(s) => s.as_str().to_string(),
            ScriptSig::MultiSig(sigs) => sigs
                .first()
                .map(|(_, s)| s.as_str().to_string())
                .unwrap_or_else(|| "multisig".into()),
            ScriptSig::Preimage(p) => format!("pre{}", hash_bytes(p).short()),
        }
    }
}

/// Spending-time verification context: the signing message (the new
/// transaction's digest) and the keyring able to check signatures.
///
/// Because signatures in the simulation can only be recomputed by the
/// secret holder, chain-level validation verifies through a [`Keyring`]
/// of known key pairs — the simulator's stand-in for public-key math.
pub struct Keyring<'a> {
    keys: &'a [KeyPair],
}

impl<'a> Keyring<'a> {
    /// Wraps a slice of key pairs.
    pub fn new(keys: &'a [KeyPair]) -> Self {
        Keyring { keys }
    }

    fn find(&self, pk: &PublicKey) -> Option<&KeyPair> {
        self.keys.iter().find(|k| k.public() == pk)
    }

    /// Verifies `sig` as `pk`'s signature over `message`.
    pub fn verify(&self, pk: &PublicKey, message: &Digest, sig: &Signature) -> bool {
        self.find(pk).is_some_and(|kp| kp.verify_own(message, sig))
    }
}

/// Checks whether `script_sig` satisfies `script_pubkey` for the spending
/// transaction whose signing digest is `message`.
pub fn verify_spend(
    script_pubkey: &ScriptPubKey,
    script_sig: &ScriptSig,
    message: &Digest,
    keyring: &Keyring<'_>,
) -> bool {
    match (script_pubkey, script_sig) {
        (ScriptPubKey::P2pk(pk), ScriptSig::Sig(sig)) => keyring.verify(pk, message, sig),
        (ScriptPubKey::MultiSig { threshold, keys }, ScriptSig::MultiSig(sigs)) => {
            let mut used: Vec<&PublicKey> = Vec::new();
            let mut valid = 0usize;
            for (pk, sig) in sigs {
                if !keys.contains(pk) || used.contains(&pk) {
                    continue;
                }
                if keyring.verify(pk, message, sig) {
                    used.push(pk);
                    valid += 1;
                }
            }
            valid >= *threshold
        }
        (ScriptPubKey::HashLock(digest), ScriptSig::Preimage(pre)) => hash_bytes(pre) == *digest,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;

    fn keys(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_secret).collect()
    }

    #[test]
    fn p2pk_accepts_only_owner_signature() {
        let ks = keys(2);
        let ring = Keyring::new(&ks);
        let msg = hash_bytes(b"spend");
        let script = ScriptPubKey::P2pk(ks[0].public().clone());
        assert!(verify_spend(
            &script,
            &ScriptSig::Sig(ks[0].sign(&msg)),
            &msg,
            &ring
        ));
        assert!(!verify_spend(
            &script,
            &ScriptSig::Sig(ks[1].sign(&msg)),
            &msg,
            &ring
        ));
        let other_msg = hash_bytes(b"other");
        assert!(!verify_spend(
            &script,
            &ScriptSig::Sig(ks[0].sign(&other_msg)),
            &msg,
            &ring
        ));
    }

    #[test]
    fn multisig_two_of_three() {
        let ks = keys(4);
        let ring = Keyring::new(&ks);
        let msg = hash_bytes(b"spend");
        let script = ScriptPubKey::MultiSig {
            threshold: 2,
            keys: vec![
                ks[0].public().clone(),
                ks[1].public().clone(),
                ks[2].public().clone(),
            ],
        };
        let sig = |i: usize| (ks[i].public().clone(), ks[i].sign(&msg));
        assert!(verify_spend(
            &script,
            &ScriptSig::MultiSig(vec![sig(0), sig(2)]),
            &msg,
            &ring
        ));
        // One signature is not enough; duplicates don't count twice.
        assert!(!verify_spend(
            &script,
            &ScriptSig::MultiSig(vec![sig(0)]),
            &msg,
            &ring
        ));
        assert!(!verify_spend(
            &script,
            &ScriptSig::MultiSig(vec![sig(0), sig(0)]),
            &msg,
            &ring
        ));
        // A non-member key does not help.
        assert!(!verify_spend(
            &script,
            &ScriptSig::MultiSig(vec![sig(0), sig(3)]),
            &msg,
            &ring
        ));
    }

    #[test]
    fn hashlock_requires_exact_preimage() {
        let ring = Keyring::new(&[]);
        let msg = hash_bytes(b"spend");
        let script = ScriptPubKey::HashLock(hash_bytes(b"secret"));
        assert!(verify_spend(
            &script,
            &ScriptSig::Preimage(b"secret".to_vec()),
            &msg,
            &ring
        ));
        assert!(!verify_spend(
            &script,
            &ScriptSig::Preimage(b"wrong".to_vec()),
            &msg,
            &ring
        ));
    }

    #[test]
    fn mismatched_script_kinds_fail() {
        let ks = keys(1);
        let ring = Keyring::new(&ks);
        let msg = hash_bytes(b"spend");
        let script = ScriptPubKey::P2pk(ks[0].public().clone());
        assert!(!verify_spend(
            &script,
            &ScriptSig::Preimage(b"x".to_vec()),
            &msg,
            &ring
        ));
    }

    #[test]
    fn display_owner_forms() {
        let ks = keys(2);
        assert!(ScriptPubKey::P2pk(ks[0].public().clone())
            .display_owner()
            .starts_with("pk"));
        assert!(ScriptPubKey::HashLock(hash_bytes(b"s"))
            .display_owner()
            .starts_with("hashlock"));
        let ms = ScriptPubKey::MultiSig {
            threshold: 1,
            keys: vec![ks[1].public().clone()],
        };
        assert_eq!(ms.display_owner(), ks[1].public().as_str());
    }
}
