//! The unspent-transaction-output set and transaction validation.

use crate::keys::PublicKey;
use crate::script::{verify_spend, Keyring, ScriptPubKey};
use crate::tx::{OutPoint, Transaction, TxOutput};
use rustc_hash::FxHashMap;
use std::fmt;

/// Why a transaction failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxError {
    /// An input references an output that does not exist or is spent.
    MissingInput(OutPoint),
    /// Two inputs of the same transaction spend the same outpoint.
    DuplicateInput(OutPoint),
    /// Output value exceeds input value (would mint money).
    ValueOverflow {
        /// Total input satoshis.
        input: u64,
        /// Total output satoshis.
        output: u64,
    },
    /// A script challenge was not satisfied.
    BadScript(OutPoint),
    /// A coinbase appeared where one is not allowed, or vice versa.
    CoinbaseViolation,
    /// An output has zero value.
    ZeroValueOutput,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::MissingInput(p) => {
                write!(f, "input {}:{} missing or spent", p.txid.short(), p.vout)
            }
            TxError::DuplicateInput(p) => {
                write!(f, "duplicate input {}:{}", p.txid.short(), p.vout)
            }
            TxError::ValueOverflow { input, output } => {
                write!(f, "outputs ({output}) exceed inputs ({input})")
            }
            TxError::BadScript(p) => {
                write!(f, "script check failed for {}:{}", p.txid.short(), p.vout)
            }
            TxError::CoinbaseViolation => write!(f, "coinbase rule violated"),
            TxError::ZeroValueOutput => write!(f, "zero-value output"),
        }
    }
}

impl std::error::Error for TxError {}

/// The set of unspent outputs.
#[derive(Clone, Debug, Default)]
pub struct UtxoSet {
    map: FxHashMap<OutPoint, TxOutput>,
}

impl UtxoSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The output at `point`, if unspent.
    pub fn get(&self, point: &OutPoint) -> Option<&TxOutput> {
        self.map.get(point)
    }

    /// Whether `point` is unspent.
    pub fn contains(&self, point: &OutPoint) -> bool {
        self.map.contains_key(point)
    }

    /// Iterates all unspent outpoints with their outputs.
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &TxOutput)> {
        self.map.iter()
    }

    /// Total unspent value.
    pub fn total_value(&self) -> u64 {
        self.map.values().map(|o| o.value).sum()
    }

    /// Validates `tx` against this set (without applying it). Returns the
    /// fee. Coinbases are rejected here — they are only valid inside a
    /// block, validated by the chain.
    pub fn validate(&self, tx: &Transaction, keyring: &Keyring<'_>) -> Result<u64, TxError> {
        if tx.is_coinbase() {
            return Err(TxError::CoinbaseViolation);
        }
        if tx.outputs().iter().any(|o| o.value == 0) {
            return Err(TxError::ZeroValueOutput);
        }
        let outpoints: Vec<OutPoint> = tx.inputs().iter().map(|i| i.prev).collect();
        for (i, p) in outpoints.iter().enumerate() {
            if outpoints[..i].contains(p) {
                return Err(TxError::DuplicateInput(*p));
            }
        }
        let message = Transaction::signing_digest(&outpoints, tx.outputs());
        let mut input_value: u64 = 0;
        for input in tx.inputs() {
            let consumed = self
                .get(&input.prev)
                .ok_or(TxError::MissingInput(input.prev))?;
            if !verify_spend(&consumed.script, &input.script_sig, &message, keyring) {
                return Err(TxError::BadScript(input.prev));
            }
            input_value += consumed.value;
        }
        let output_value = tx.output_value();
        if output_value > input_value {
            return Err(TxError::ValueOverflow {
                input: input_value,
                output: output_value,
            });
        }
        Ok(input_value - output_value)
    }

    /// Applies `tx`: removes its inputs, inserts its outputs. The caller
    /// must have validated first (this also accepts coinbases).
    pub fn apply(&mut self, tx: &Transaction) {
        for input in tx.inputs() {
            self.map.remove(&input.prev);
        }
        for (i, out) in tx.outputs().iter().enumerate() {
            self.map.insert(tx.outpoint(i as u32 + 1), out.clone());
        }
    }

    /// The owner key of an unspent P2PK output, if that is its script kind.
    pub fn p2pk_owner(&self, point: &OutPoint) -> Option<&PublicKey> {
        match self.get(point).map(|o| &o.script) {
            Some(ScriptPubKey::P2pk(pk)) => Some(pk),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;
    use crate::script::ScriptSig;
    use crate::tx::TxInput;

    fn coinbase_to(kp: &KeyPair, value: u64, tag: u64) -> Transaction {
        // `tag` differentiates otherwise-identical coinbases.
        Transaction::new(
            vec![],
            vec![
                TxOutput {
                    value,
                    script: ScriptPubKey::P2pk(kp.public().clone()),
                },
                TxOutput {
                    value: tag + 1,
                    script: ScriptPubKey::P2pk(kp.public().clone()),
                },
            ],
        )
    }

    fn spend(from: &KeyPair, prev: OutPoint, to: &KeyPair, value: u64, change: u64) -> Transaction {
        let outs = vec![
            TxOutput {
                value,
                script: ScriptPubKey::P2pk(to.public().clone()),
            },
            TxOutput {
                value: change,
                script: ScriptPubKey::P2pk(from.public().clone()),
            },
        ];
        let msg = Transaction::signing_digest(&[prev], &outs);
        Transaction::new(
            vec![TxInput {
                prev,
                script_sig: ScriptSig::Sig(from.sign(&msg)),
                spender: from.public().clone(),
            }],
            outs,
        )
    }

    #[test]
    fn apply_and_spend_flow() {
        let alice = KeyPair::from_secret(1);
        let bob = KeyPair::from_secret(2);
        let keys = vec![alice.clone(), bob.clone()];
        let ring = Keyring::new(&keys);
        let mut utxo = UtxoSet::new();
        let cb = coinbase_to(&alice, 100, 0);
        utxo.apply(&cb);
        assert_eq!(utxo.len(), 2);
        assert_eq!(utxo.total_value(), 101);
        assert_eq!(utxo.p2pk_owner(&cb.outpoint(1)), Some(alice.public()));

        let tx = spend(&alice, cb.outpoint(1), &bob, 60, 30);
        let fee = utxo.validate(&tx, &ring).unwrap();
        assert_eq!(fee, 10);
        utxo.apply(&tx);
        assert!(!utxo.contains(&cb.outpoint(1)));
        assert!(utxo.contains(&tx.outpoint(1)));
        // Double spend now fails.
        let tx2 = spend(&alice, cb.outpoint(1), &bob, 50, 40);
        assert!(matches!(
            utxo.validate(&tx2, &ring),
            Err(TxError::MissingInput(_))
        ));
    }

    #[test]
    fn wrong_signer_rejected() {
        let alice = KeyPair::from_secret(1);
        let mallory = KeyPair::from_secret(3);
        let keys = vec![alice.clone(), mallory.clone()];
        let ring = Keyring::new(&keys);
        let mut utxo = UtxoSet::new();
        let cb = coinbase_to(&alice, 100, 0);
        utxo.apply(&cb);
        // Mallory signs for Alice's output.
        let tx = spend(&mallory, cb.outpoint(1), &mallory, 90, 5);
        assert!(matches!(
            utxo.validate(&tx, &ring),
            Err(TxError::BadScript(_))
        ));
    }

    #[test]
    fn value_overflow_rejected() {
        let alice = KeyPair::from_secret(1);
        let keys = vec![alice.clone()];
        let ring = Keyring::new(&keys);
        let mut utxo = UtxoSet::new();
        let cb = coinbase_to(&alice, 100, 0);
        utxo.apply(&cb);
        let tx = spend(&alice, cb.outpoint(1), &alice, 90, 20); // 110 > 100
        assert!(matches!(
            utxo.validate(&tx, &ring),
            Err(TxError::ValueOverflow {
                input: 100,
                output: 110
            })
        ));
    }

    #[test]
    fn duplicate_inputs_rejected() {
        let alice = KeyPair::from_secret(1);
        let keys = vec![alice.clone()];
        let ring = Keyring::new(&keys);
        let mut utxo = UtxoSet::new();
        let cb = coinbase_to(&alice, 100, 0);
        utxo.apply(&cb);
        let prev = cb.outpoint(1);
        let outs = vec![TxOutput {
            value: 150,
            script: ScriptPubKey::P2pk(alice.public().clone()),
        }];
        let msg = Transaction::signing_digest(&[prev, prev], &outs);
        let tx = Transaction::new(
            vec![
                TxInput {
                    prev,
                    script_sig: ScriptSig::Sig(alice.sign(&msg)),
                    spender: alice.public().clone(),
                },
                TxInput {
                    prev,
                    script_sig: ScriptSig::Sig(alice.sign(&msg)),
                    spender: alice.public().clone(),
                },
            ],
            outs,
        );
        assert!(matches!(
            utxo.validate(&tx, &ring),
            Err(TxError::DuplicateInput(_))
        ));
    }

    #[test]
    fn coinbase_not_directly_validatable() {
        let alice = KeyPair::from_secret(1);
        let keys = vec![alice.clone()];
        let ring = Keyring::new(&keys);
        let utxo = UtxoSet::new();
        let cb = coinbase_to(&alice, 100, 0);
        assert_eq!(utxo.validate(&cb, &ring), Err(TxError::CoinbaseViolation));
    }
}
