//! Synthetic Bitcoin-shaped workload generation.
//!
//! The paper's experiments run on the first 100k–300k real Bitcoin blocks
//! with subsequent blocks as pending transactions. We have no chain to
//! sync, so this module *simulates* one with the same structural knobs
//! (see DESIGN.md's substitution table): wallets make fee-paying UTXO
//! payments, a miner assembles fee-ordered blocks, a mempool accumulates
//! pending transactions including dependency chains, and a configurable
//! number of double-spend **contradictions** is injected — the parameter
//! swept in Fig. 6e/6f.

use crate::block::{Blockchain, ChainParams};
use crate::keys::KeyPair;
use crate::mempool::Mempool;
use crate::miner::build_block_template;
use crate::script::{Keyring, ScriptPubKey, ScriptSig};
use crate::tx::{OutPoint, Transaction, TxInput, TxOutput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

/// Parameters of a synthetic scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// RNG seed (every run is fully deterministic given the seed).
    pub seed: u64,
    /// Number of wallets.
    pub wallets: usize,
    /// Blocks to mine into the current state.
    pub blocks: u64,
    /// Payments issued per block round.
    pub txs_per_block: usize,
    /// Pending transactions left in the mempool at the end.
    pub pending_txs: usize,
    /// Double-spend pairs injected among the pending transactions.
    pub contradictions: usize,
    /// Probability (percent) that a pending payment spends another pending
    /// payment's output, forming dependency chains.
    pub chain_dependency_pct: u32,
    /// Chain consensus parameters.
    pub chain: ChainParams,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            wallets: 40,
            blocks: 50,
            txs_per_block: 20,
            pending_txs: 200,
            contradictions: 10,
            chain_dependency_pct: 30,
            chain: ChainParams::default(),
        }
    }
}

/// A generated scenario: the chain (current state), the mempool (pending
/// transactions), and the key material.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The mined chain.
    pub chain: Blockchain,
    /// The pending transactions.
    pub mempool: Mempool,
    /// All wallet key pairs (index 0 doubles as the miner).
    pub keys: Vec<KeyPair>,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

/// A spendable output tracked by the generator.
#[derive(Clone, Debug)]
struct Spendable {
    point: OutPoint,
    value: u64,
    owner: usize,
}

struct Generator {
    rng: StdRng,
    chain: Blockchain,
    mempool: Mempool,
    keys: Vec<KeyPair>,
    /// Confirmed spendables (on-chain, unspent, unreserved).
    confirmed: Vec<Spendable>,
    /// Outputs created by pending transactions (spendable for chains).
    pending_outputs: Vec<Spendable>,
    /// Outpoints already consumed by a pending transaction (avoids
    /// *accidental* double spends; intentional ones bypass this).
    reserved: FxHashSet<OutPoint>,
}

impl Generator {
    fn new(config: &ScenarioConfig) -> Self {
        let keys: Vec<KeyPair> = (0..config.wallets as u64)
            .map(|i| KeyPair::from_secret(i + 1))
            .collect();
        Generator {
            rng: StdRng::seed_from_u64(config.seed),
            chain: Blockchain::new(config.chain),
            mempool: Mempool::new(),
            keys,
            confirmed: Vec::new(),
            pending_outputs: Vec::new(),
            reserved: FxHashSet::default(),
        }
    }

    fn owner_of(&self, script: &ScriptPubKey) -> Option<usize> {
        match script {
            ScriptPubKey::P2pk(pk) => self.keys.iter().position(|k| k.public() == pk),
            _ => None,
        }
    }

    /// Refreshes the confirmed-spendables list from the chain UTXO set.
    fn refresh_confirmed(&mut self) {
        let mut list: Vec<Spendable> = self
            .chain
            .utxo()
            .iter()
            .filter(|(p, _)| !self.reserved.contains(p))
            .filter_map(|(p, o)| {
                self.owner_of(&o.script).map(|owner| Spendable {
                    point: *p,
                    value: o.value,
                    owner,
                })
            })
            .collect();
        list.sort_by_key(|s| s.point);
        self.confirmed = list;
    }

    /// Builds one signed payment spending `from` (one tx may consume
    /// several coins of the same owner — Bitcoin's many-to-many shape),
    /// paying 1–2 random wallets and returning change. Fee is 0.1%–2% of
    /// the spent value (min 100 satoshis).
    fn payment(&mut self, inputs: &[Spendable]) -> Transaction {
        debug_assert!(!inputs.is_empty());
        let owner = inputs[0].owner;
        let total: u64 = inputs.iter().map(|s| s.value).sum();
        let fee = (total / self.rng.random_range(50..1000))
            .max(100)
            .min(total / 2);
        let available = total - fee;
        let pay_value = self.rng.random_range(1..=available.max(2) - 1).max(1);
        let change = available - pay_value;
        let mut outs = Vec::with_capacity(3);
        // Occasionally split the payment across two payees (batching).
        if pay_value >= 2 && self.rng.random_range(0..100) < 25 {
            let first = self.rng.random_range(1..pay_value);
            for v in [first, pay_value - first] {
                let payee = self.rng.random_range(0..self.keys.len());
                outs.push(TxOutput {
                    value: v,
                    script: ScriptPubKey::P2pk(self.keys[payee].public().clone()),
                });
            }
        } else {
            let payee = self.rng.random_range(0..self.keys.len());
            outs.push(TxOutput {
                value: pay_value,
                script: ScriptPubKey::P2pk(self.keys[payee].public().clone()),
            });
        }
        if change > 0 {
            outs.push(TxOutput {
                value: change,
                script: ScriptPubKey::P2pk(self.keys[owner].public().clone()),
            });
        }
        let points: Vec<OutPoint> = inputs.iter().map(|s| s.point).collect();
        let msg = Transaction::signing_digest(&points, &outs);
        Transaction::new(
            inputs
                .iter()
                .map(|s| TxInput {
                    prev: s.point,
                    script_sig: ScriptSig::Sig(self.keys[s.owner].sign(&msg)),
                    spender: self.keys[s.owner].public().clone(),
                })
                .collect(),
            outs,
        )
    }

    /// Issues one pending payment into the mempool; returns false if no
    /// spendable output was available.
    fn issue_payment(&mut self, allow_pending_parent: bool, dependency_pct: u32) -> bool {
        let use_pending = allow_pending_parent
            && !self.pending_outputs.is_empty()
            && self.rng.random_range(0..100) < dependency_pct;
        let source = if use_pending {
            let i = self.rng.random_range(0..self.pending_outputs.len());
            self.pending_outputs.swap_remove(i)
        } else {
            if self.confirmed.is_empty() {
                return false;
            }
            let i = self.rng.random_range(0..self.confirmed.len());
            self.confirmed.swap_remove(i)
        };
        if source.value < 1000 {
            return false; // dust; skip
        }
        // Occasionally consolidate a second confirmed coin of the same
        // owner (multi-input transactions, §2's many-to-many transfers).
        let mut inputs = vec![source];
        if self.rng.random_range(0..100) < 25 {
            if let Some(i) = self
                .confirmed
                .iter()
                .position(|s| s.owner == inputs[0].owner)
            {
                inputs.push(self.confirmed.swap_remove(i));
            }
        }
        let tx = self.payment(&inputs);
        for s in &inputs {
            self.reserved.insert(s.point);
        }
        if self.mempool.insert(&self.chain, tx.clone()).is_ok() {
            for (i, out) in tx.outputs().iter().enumerate() {
                if let Some(owner) = self.owner_of(&out.script) {
                    self.pending_outputs.push(Spendable {
                        point: tx.outpoint(i as u32 + 1),
                        value: out.value,
                        owner,
                    });
                }
            }
            true
        } else {
            false
        }
    }

    fn mine_block(&mut self) {
        let miner = self.keys[0].clone();
        let keys = self.keys.clone();
        let ring = Keyring::new(&keys);
        let block = build_block_template(&self.chain, &self.mempool, &ring, &miner);
        let mined: Vec<_> = block.transactions[1..].iter().map(|t| t.txid()).collect();
        self.chain
            .append(block, &ring)
            .expect("template blocks always validate");
        self.mempool.purge_after_block(&self.chain, &mined);
        // Everything pending was either mined or purged; reset tracking.
        self.pending_outputs.clear();
        self.reserved.clear();
        // Re-admit any survivors' reservations.
        for e in self.mempool.entries() {
            for i in e.tx.inputs() {
                self.reserved.insert(i.prev);
            }
        }
        self.refresh_confirmed();
    }

    /// Injects one contradiction: re-spends an outpoint already consumed by
    /// a pending transaction, to a different payee with a higher fee — the
    /// "reissue with increased fee" of the paper's motivating example.
    fn inject_contradiction(&mut self) -> bool {
        // Choose a random pending non-dependent input that is a chain UTXO.
        let candidates: Vec<(OutPoint, u64, usize)> = self
            .mempool
            .entries()
            .iter()
            .flat_map(|e| e.tx.inputs())
            .filter_map(|i| {
                let out = self.chain.utxo().get(&i.prev)?;
                let owner = self.owner_of(&out.script)?;
                Some((i.prev, out.value, owner))
            })
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let (point, value, owner) = candidates[self.rng.random_range(0..candidates.len())];
        if value < 1000 {
            return false;
        }
        let spend = Spendable {
            point,
            value,
            owner,
        };
        let tx = self.payment(&[spend]);
        self.mempool.insert(&self.chain, tx).is_ok()
    }
}

/// Generates a scenario per `config`.
pub fn generate(config: &ScenarioConfig) -> Scenario {
    let mut g = Generator::new(config);
    // Bootstrap funding: mine empty blocks so wallet 0 accrues subsidies,
    // then fan value out through normal payment rounds.
    for _ in 0..8 {
        g.mine_block();
    }
    for _ in 0..config.blocks {
        let n = g.confirmed.len().min(config.txs_per_block);
        for _ in 0..n {
            g.issue_payment(true, config.chain_dependency_pct);
        }
        g.mine_block();
    }
    // Leave the requested pending set in the mempool.
    let mut attempts = 0;
    while g.mempool.len() < config.pending_txs && attempts < config.pending_txs * 4 {
        g.issue_payment(true, config.chain_dependency_pct);
        attempts += 1;
    }
    let mut injected = 0;
    let mut tries = 0;
    while injected < config.contradictions && tries < config.contradictions * 20 {
        if g.inject_contradiction() {
            injected += 1;
        }
        tries += 1;
    }
    Scenario {
        chain: g.chain,
        mempool: g.mempool,
        keys: g.keys,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            wallets: 10,
            blocks: 10,
            txs_per_block: 5,
            pending_txs: 30,
            contradictions: 3,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn generates_requested_shape() {
        let s = generate(&small());
        assert!(s.chain.height() >= 10);
        assert!(s.mempool.len() >= 30, "mempool {}", s.mempool.len());
        let conflicts = s.mempool.conflict_pairs();
        assert!(conflicts.len() >= 3, "conflicts {}", conflicts.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.chain.tip().hash(), b.chain.tip().hash());
        assert_eq!(a.mempool.len(), b.mempool.len());
        let ta: Vec<_> = a.mempool.entries().iter().map(|e| e.tx.txid()).collect();
        let tb: Vec<_> = b.mempool.entries().iter().map(|e| e.tx.txid()).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small());
        let b = generate(&ScenarioConfig { seed: 8, ..small() });
        assert_ne!(a.chain.tip().hash(), b.chain.tip().hash());
    }

    #[test]
    fn pending_set_contains_dependency_chains() {
        let cfg = ScenarioConfig {
            pending_txs: 60,
            chain_dependency_pct: 60,
            ..small()
        };
        let s = generate(&cfg);
        // Some pending tx spends an output created by another pending tx.
        let pending_txids: FxHashSet<_> = s.mempool.entries().iter().map(|e| e.tx.txid()).collect();
        let has_chain = s.mempool.entries().iter().any(|e| {
            e.tx.inputs()
                .iter()
                .any(|i| pending_txids.contains(&i.prev.txid))
        });
        assert!(has_chain, "expected at least one pending dependency chain");
    }

    #[test]
    fn contradictions_spend_same_outpoint() {
        let s = generate(&small());
        for (a, b) in s.mempool.conflict_pairs() {
            let ta = &s.mempool.get(&a).unwrap().tx;
            let tb = &s.mempool.get(&b).unwrap().tx;
            let ins_a: FxHashSet<_> = ta.inputs().iter().map(|i| i.prev).collect();
            assert!(
                tb.inputs().iter().any(|i| ins_a.contains(&i.prev)),
                "conflict pair must share an input"
            );
        }
    }
}
