//! Export of a chain + mempool into the paper's relational schema.
//!
//! Example 1 of the paper:
//!
//! ```text
//! TxOut(txId, ser, pk, amount)                       key: (txId, ser)
//! TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)  key: (prevTxId, prevSer)
//! TxIn[prevTxId, prevSer, pk, amount] ⊆ TxOut[txId, ser, pk, amount]
//! TxIn[newTxId] ⊆ TxOut[txId]
//! ```
//!
//! On-chain transactions become the current state `R`; mempool entries
//! become pending transactions, each a small set of `TxIn`/`TxOut` tuples.
//! Double spends in the mempool violate `TxIn`'s key — exactly the paper's
//! contradiction mechanism — and spending a pending output induces the
//! IND dependency chains that `getMaximal` must order.

use crate::generator::Scenario;
use crate::hash::Digest;
use crate::tx::Transaction;
use bcdb_storage::{
    tuple, Catalog, ConstraintSet, Fd, Ind, RelationId, RelationSchema, StorageError, Tuple,
    ValueType,
};
use rustc_hash::FxHashMap;

/// The paper's two-relation Bitcoin schema plus constraints.
pub fn bitcoin_catalog() -> (Catalog, ConstraintSet) {
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "TxOut",
            [
                ("txId", ValueType::Text),
                ("ser", ValueType::Int),
                ("pk", ValueType::Text),
                ("amount", ValueType::Int),
            ],
        )
        .expect("static schema"),
    )
    .expect("static schema");
    cat.add(
        RelationSchema::new(
            "TxIn",
            [
                ("prevTxId", ValueType::Text),
                ("prevSer", ValueType::Int),
                ("pk", ValueType::Text),
                ("amount", ValueType::Int),
                ("newTxId", ValueType::Text),
                ("sig", ValueType::Text),
            ],
        )
        .expect("static schema"),
    )
    .expect("static schema");
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "TxOut", &["txId", "ser"]).expect("static"));
    cs.add_fd(Fd::named_key(&cat, "TxIn", &["prevTxId", "prevSer"]).expect("static"));
    cs.add_ind(
        Ind::named(
            &cat,
            "TxIn",
            &["prevTxId", "prevSer", "pk", "amount"],
            "TxOut",
            &["txId", "ser", "pk", "amount"],
        )
        .expect("static"),
    );
    cs.add_ind(Ind::named(&cat, "TxIn", &["newTxId"], "TxOut", &["txId"]).expect("static"));
    (cat, cs)
}

/// Row counts for one side of Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportCounts {
    /// Blocks contributing.
    pub blocks: u64,
    /// Transactions.
    pub transactions: usize,
    /// `TxIn` rows.
    pub inputs: usize,
    /// `TxOut` rows.
    pub outputs: usize,
}

/// A chain exported into the paper's relational model, ready to be loaded
/// into a `bcdb_core::BlockchainDb` (this crate stays independent of the
/// core crate; loading is a five-line loop at the call site).
#[derive(Clone, Debug)]
pub struct RelationalExport {
    /// The schema.
    pub catalog: Catalog,
    /// Keys + INDs of Example 1.
    pub constraints: ConstraintSet,
    /// Current-state tuples.
    pub base: Vec<(RelationId, Tuple)>,
    /// Pending transactions: name + tuples.
    pub pending: Vec<(String, Vec<(RelationId, Tuple)>)>,
    /// Table 1 counts for the current state.
    pub base_counts: ExportCounts,
    /// Table 1 counts for the pending set.
    pub pending_counts: ExportCounts,
}

fn txid_text(d: Digest) -> String {
    d.short()
}

/// Emits the tuples of one transaction, resolving consumed outputs through
/// `resolve` (txid -> transaction).
fn tuples_of_tx(
    tx: &Transaction,
    resolve: &FxHashMap<Digest, &Transaction>,
    txout: RelationId,
    txin: RelationId,
) -> Result<Vec<(RelationId, Tuple)>, StorageError> {
    let mut out = Vec::with_capacity(tx.inputs().len() + tx.outputs().len());
    let new_txid = txid_text(tx.txid());
    for input in tx.inputs() {
        let creator =
            resolve
                .get(&input.prev.txid)
                .ok_or_else(|| StorageError::MalformedConstraint {
                    detail: format!("dangling outpoint {}:{}", input.prev.txid, input.prev.vout),
                })?;
        let consumed = &creator.outputs()[(input.prev.vout - 1) as usize];
        out.push((
            txin,
            tuple![
                txid_text(input.prev.txid),
                input.prev.vout as i64,
                consumed.script.display_owner(),
                consumed.value as i64,
                new_txid.as_str(),
                input.script_sig.display_sig()
            ],
        ));
    }
    for (i, o) in tx.outputs().iter().enumerate() {
        out.push((
            txout,
            tuple![
                new_txid.as_str(),
                (i + 1) as i64,
                o.script.display_owner(),
                o.value as i64
            ],
        ));
    }
    Ok(out)
}

/// Fee-rate-derived acceptance probabilities for the mempool's pending
/// transactions, aligned with [`export`]'s pending order.
///
/// A crude but data-driven "learned estimation of their actual likelihood"
/// (the paper's future-work phrasing): miners prefer high fee rates, so
/// probabilities scale linearly with fee-rate rank from `lo` (cheapest)
/// to `hi` (priciest). Pair with `bcdb_core::PerTxAcceptance`.
pub fn feerate_probabilities(scenario: &Scenario, lo: f64, hi: f64) -> Vec<f64> {
    let entries = scenario.mempool.entries();
    let n = entries.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(lo + hi) / 2.0];
    }
    // Rank by fee rate (stable: ties keep mempool order).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| entries[i].feerate_millisats);
    let mut probs = vec![0.0; n];
    for (rank, &i) in order.iter().enumerate() {
        probs[i] = lo + (hi - lo) * rank as f64 / (n - 1) as f64;
    }
    probs
}

/// Exports a scenario: blocks → current state, mempool → pending set.
pub fn export(scenario: &Scenario) -> Result<RelationalExport, StorageError> {
    let (catalog, constraints) = bitcoin_catalog();
    let txout = catalog.resolve("TxOut").expect("schema");
    let txin = catalog.resolve("TxIn").expect("schema");

    // Full transaction index (chain + mempool) for outpoint resolution.
    let mut index: FxHashMap<Digest, &Transaction> = FxHashMap::default();
    for block in scenario.chain.blocks() {
        for tx in &block.transactions {
            index.insert(tx.txid(), tx);
        }
    }
    for entry in scenario.mempool.entries() {
        index.insert(entry.tx.txid(), &entry.tx);
    }

    let mut base = Vec::new();
    let mut base_counts = ExportCounts {
        blocks: scenario.chain.height() + 1,
        ..ExportCounts::default()
    };
    for block in scenario.chain.blocks() {
        for tx in &block.transactions {
            base_counts.transactions += 1;
            base_counts.inputs += tx.inputs().len();
            base_counts.outputs += tx.outputs().len();
            base.extend(tuples_of_tx(tx, &index, txout, txin)?);
        }
    }

    let mut pending = Vec::new();
    let mut pending_counts = ExportCounts::default();
    for entry in scenario.mempool.entries() {
        pending_counts.transactions += 1;
        pending_counts.inputs += entry.tx.inputs().len();
        pending_counts.outputs += entry.tx.outputs().len();
        pending.push((
            txid_text(entry.tx.txid()),
            tuples_of_tx(&entry.tx, &index, txout, txin)?,
        ));
    }

    Ok(RelationalExport {
        catalog,
        constraints,
        base,
        pending,
        base_counts,
        pending_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, ScenarioConfig};

    fn small_export() -> RelationalExport {
        let cfg = ScenarioConfig {
            seed: 11,
            wallets: 8,
            blocks: 6,
            txs_per_block: 4,
            pending_txs: 15,
            contradictions: 2,
            ..ScenarioConfig::default()
        };
        export(&generate(&cfg)).unwrap()
    }

    #[test]
    fn feerate_probabilities_are_rank_monotone() {
        let cfg = ScenarioConfig {
            seed: 3,
            wallets: 8,
            blocks: 6,
            txs_per_block: 4,
            pending_txs: 20,
            contradictions: 0,
            ..ScenarioConfig::default()
        };
        let s = generate(&cfg);
        let probs = feerate_probabilities(&s, 0.2, 0.9);
        assert_eq!(probs.len(), s.mempool.len());
        assert!(probs.iter().all(|p| (0.2..=0.9).contains(p)));
        // The priciest entry gets the highest probability.
        let (best, _) = s
            .mempool
            .entries()
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.feerate_millisats)
            .unwrap();
        assert!((probs[best] - 0.9).abs() < 1e-9);
        let (worst, _) = s
            .mempool
            .entries()
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.feerate_millisats)
            .unwrap();
        assert!((probs[worst] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn schema_matches_paper() {
        let (cat, cs) = bitcoin_catalog();
        assert_eq!(cat.relation_count(), 2);
        assert_eq!(cs.fds().len(), 2);
        assert_eq!(cs.inds().len(), 2);
        let txin = cat.resolve("TxIn").unwrap();
        assert_eq!(cat.schema(txin).arity(), 6);
    }

    #[test]
    fn counts_match_tuples() {
        let e = small_export();
        let txout = e.catalog.resolve("TxOut").unwrap();
        let txin = e.catalog.resolve("TxIn").unwrap();
        let base_out = e.base.iter().filter(|(r, _)| *r == txout).count();
        let base_in = e.base.iter().filter(|(r, _)| *r == txin).count();
        assert_eq!(base_out, e.base_counts.outputs);
        assert_eq!(base_in, e.base_counts.inputs);
        assert_eq!(e.pending.len(), e.pending_counts.transactions);
        assert!(e.pending_counts.inputs > 0);
    }

    #[test]
    fn base_tuples_reference_existing_outputs() {
        // Every base TxIn row's (prevTxId, prevSer, pk, amount) appears as
        // a TxOut row (IND 1 over the current state).
        let e = small_export();
        let txout = e.catalog.resolve("TxOut").unwrap();
        let txin = e.catalog.resolve("TxIn").unwrap();
        let outs: std::collections::HashSet<Vec<bcdb_storage::Value>> = e
            .base
            .iter()
            .filter(|(r, _)| *r == txout)
            .map(|(_, t)| t.values().to_vec())
            .collect();
        for (r, t) in &e.base {
            if *r != txin {
                continue;
            }
            let projected: Vec<bcdb_storage::Value> = t.project(&[0, 1, 2, 3]).to_vec();
            assert!(outs.contains(&projected), "dangling base TxIn {t}");
        }
    }

    #[test]
    fn contradictions_surface_as_key_conflicts() {
        // At least one pair of pending transactions shares (prevTxId, prevSer).
        let e = small_export();
        let txin = e.catalog.resolve("TxIn").unwrap();
        let mut seen: FxHashMap<Vec<bcdb_storage::Value>, usize> = FxHashMap::default();
        let mut conflict = false;
        for (i, (_, tuples)) in e.pending.iter().enumerate() {
            for (r, t) in tuples {
                if *r != txin {
                    continue;
                }
                let key = t.project(&[0, 1]).to_vec();
                if let Some(&j) = seen.get(&key) {
                    if j != i {
                        conflict = true;
                    }
                } else {
                    seen.insert(key, i);
                }
            }
        }
        assert!(conflict, "expected at least one pending double spend");
    }
}
