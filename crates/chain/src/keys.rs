//! Simulated key pairs and signatures.
//!
//! Real ECDSA is orthogonal to the reasoning problem (see DESIGN.md): the
//! relational export only needs *distinct, consistent* public keys and
//! signatures. A key pair here is a secret 64-bit seed; the public key and
//! every signature are deterministic digests of it, so verification is
//! recomputation.

use crate::hash::{Digest, Hasher};
use std::fmt;

/// A public key (an "address" in the simplified model — Bitcoin addresses
/// are hashes of public keys, a distinction that does not matter here).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub String);

impl PublicKey {
    /// The key as the text value stored in the relational export.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk:{}", &self.0[..self.0.len().min(12)])
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A signature over a message by a key pair.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub String);

impl Signature {
    /// The signature as the text value stored in the relational export.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{}", &self.0[..self.0.len().min(12)])
    }
}

/// A simulated key pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair from a secret seed.
    pub fn from_secret(secret: u64) -> Self {
        let mut h = Hasher::new();
        h.write_str("pubkey").write_u64(secret);
        KeyPair {
            secret,
            public: PublicKey(format!("pk{}", h.finish().short())),
        }
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a message digest.
    pub fn sign(&self, message: &Digest) -> Signature {
        let mut h = Hasher::new();
        h.write_str("sig")
            .write_u64(self.secret)
            .write_digest(message);
        Signature(format!("sig{}", h.finish().short()))
    }
}

/// Verifies that `signature` is `public`'s signature over `message`.
///
/// Simulated verification recomputes the signature from the *secret* that
/// produced the key — impossible without it in reality, so we instead keep
/// a registry-free scheme: the signature embeds a digest binding
/// (secret, message), and verification checks the binding through the
/// public key's own derivation. Since secrets are unknowable from public
/// keys here too, verification is provided through [`KeyPair::verify_own`]
/// for the holder and through structural checks (correct binding of pk to
/// sig slot) in transaction validation.
pub fn signature_matches(keypair: &KeyPair, message: &Digest, signature: &Signature) -> bool {
    &keypair.sign(message) == signature
}

impl KeyPair {
    /// Holder-side verification (see [`signature_matches`]).
    pub fn verify_own(&self, message: &Digest, signature: &Signature) -> bool {
        signature_matches(self, message, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = KeyPair::from_secret(1);
        let b = KeyPair::from_secret(1);
        let c = KeyPair::from_secret(2);
        assert_eq!(a.public(), b.public());
        assert_ne!(a.public(), c.public());
        assert!(a.public().as_str().starts_with("pk"));
    }

    #[test]
    fn signatures_bind_key_and_message() {
        let kp = KeyPair::from_secret(7);
        let other = KeyPair::from_secret(8);
        let m1 = hash_bytes(b"m1");
        let m2 = hash_bytes(b"m2");
        let sig = kp.sign(&m1);
        assert!(kp.verify_own(&m1, &sig));
        assert!(!kp.verify_own(&m2, &sig));
        assert!(!other.verify_own(&m1, &sig));
        assert_ne!(kp.sign(&m1), kp.sign(&m2));
        assert_ne!(kp.sign(&m1), other.sign(&m1));
    }
}
