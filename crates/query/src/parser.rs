//! A text syntax for denial constraints, mirroring the paper's notation.
//!
//! ```text
//! q() <- TxOut(ntx, s, 'U8Pk', a)
//! q() <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), !Trusted(pk), ntx != pt
//! [q(sum(a)) <- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > 5
//! ```
//!
//! * Identifiers in atom position are relation names; elsewhere they are
//!   variables. `_` is an anonymous variable (fresh per occurrence).
//! * Constants are `'quoted text'`, integers, or `true`/`false`.
//! * Negated atoms are written `!R(...)` or `not R(...)`.
//! * Comparison operators: `=`, `!=`, `<`, `>`, `<=`, `>=`.
//! * Aggregates: `count`, `cntd`, `sum`, `max`, `min`.

use crate::ast::{
    AggFunc, AggregateQuery, Atom, CmpOp, Comparison, ConjunctiveQuery, DenialConstraint, Term, Var,
};
use crate::error::QueryError;
use bcdb_storage::{Catalog, Value};

/// Parses a denial constraint (conjunctive or aggregate) and validates it
/// against `catalog`.
pub fn parse_denial_constraint(
    input: &str,
    catalog: &Catalog,
) -> Result<DenialConstraint, QueryError> {
    let mut p = Parser::new(input, catalog)?;
    let dc = p.constraint()?;
    p.expect_end()?;
    dc.validate(catalog)?;
    Ok(dc)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Arrow,
    Bang,
    Op(CmpOp),
    Dot,
}

struct Lexeme {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<Lexeme>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Lexeme {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Lexeme {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Lexeme {
                    tok: Tok::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Lexeme {
                    tok: Tok::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Lexeme {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Lexeme {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            '\'' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] as char != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Parse {
                        offset: start,
                        detail: "unterminated string literal".into(),
                    });
                }
                out.push(Lexeme {
                    tok: Tok::Str(input[i + 1..j].to_string()),
                    offset: start,
                });
                i = j + 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Lexeme {
                        tok: Tok::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Lexeme {
                        tok: Tok::Op(CmpOp::Le),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Lexeme {
                        tok: Tok::Op(CmpOp::Lt),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Lexeme {
                        tok: Tok::Op(CmpOp::Ge),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Lexeme {
                        tok: Tok::Op(CmpOp::Gt),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                out.push(Lexeme {
                    tok: Tok::Op(CmpOp::Eq),
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Lexeme {
                        tok: Tok::Op(CmpOp::Ne),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Lexeme {
                        tok: Tok::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Lexeme {
                        tok: Tok::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Parse {
                        offset: start,
                        detail: "expected ':-'".into(),
                    });
                }
            }
            '-' | '0'..='9' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &input[i..j];
                let n: i64 = text.parse().map_err(|_| QueryError::Parse {
                    offset: start,
                    detail: format!("bad integer literal '{text}'"),
                })?;
                out.push(Lexeme {
                    tok: Tok::Int(n),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Lexeme {
                    tok: Tok::Ident(input[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(QueryError::Parse {
                    offset: start,
                    detail: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<Lexeme>,
    pos: usize,
    catalog: &'a Catalog,
    var_names: Vec<String>,
    anon_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &str, catalog: &'a Catalog) -> Result<Self, QueryError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            catalog,
            var_names: Vec::new(),
            anon_counter: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|l| &l.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|l| &l.tok)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|l| l.offset)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|l| l.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, detail: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.offset(),
            detail: detail.into(),
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), QueryError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_end(&mut self) -> Result<(), QueryError> {
        // A trailing period is allowed.
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
        }
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(self.err("trailing input after constraint"))
        }
    }

    fn var(&mut self, name: &str) -> Var {
        if name == "_" {
            self.anon_counter += 1;
            self.var_names.push(format!("_anon{}", self.anon_counter));
            return Var((self.var_names.len() - 1) as u32);
        }
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.var_names.push(name.to_string());
            Var((self.var_names.len() - 1) as u32)
        }
    }

    fn constraint(&mut self) -> Result<DenialConstraint, QueryError> {
        if self.peek() == Some(&Tok::LBracket) {
            self.aggregate().map(DenialConstraint::Aggregate)
        } else {
            self.conjunctive().map(DenialConstraint::Conjunctive)
        }
    }

    /// `q() <- body`
    fn conjunctive(&mut self) -> Result<ConjunctiveQuery, QueryError> {
        match self.bump() {
            Some(Tok::Ident(_)) => {}
            _ => return Err(self.err("expected query head identifier")),
        }
        self.expect(&Tok::LParen, "'('")?;
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::Arrow, "'<-'")?;
        let (positive, negated, comparisons) = self.body()?;
        Ok(ConjunctiveQuery {
            positive,
            negated,
            comparisons,
            var_names: std::mem::take(&mut self.var_names),
        })
    }

    /// `[q(func(x, …)) <- body] op c`
    fn aggregate(&mut self) -> Result<AggregateQuery, QueryError> {
        self.expect(&Tok::LBracket, "'['")?;
        match self.bump() {
            Some(Tok::Ident(_)) => {}
            _ => return Err(self.err("expected query head identifier")),
        }
        self.expect(&Tok::LParen, "'('")?;
        let func = match self.bump() {
            Some(Tok::Ident(name)) => match name.as_str() {
                "count" => AggFunc::Count,
                "cntd" => AggFunc::CountDistinct,
                "sum" => AggFunc::Sum,
                "max" => AggFunc::Max,
                "min" => AggFunc::Min,
                other => return Err(self.err(format!("unknown aggregate '{other}'"))),
            },
            _ => return Err(self.err("expected aggregate function")),
        };
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                match self.bump() {
                    Some(Tok::Ident(name)) => args.push(self.var(&name)),
                    _ => return Err(self.err("expected aggregate argument variable")),
                }
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::RParen, "')'")?;
        self.expect(&Tok::Arrow, "'<-'")?;
        let (positive, negated, comparisons) = self.body()?;
        self.expect(&Tok::RBracket, "']'")?;
        let op = match self.bump() {
            Some(Tok::Op(op)) => op,
            _ => return Err(self.err("expected comparison operator after ']'")),
        };
        let threshold = match self.bump() {
            Some(Tok::Int(n)) => Value::Int(n),
            Some(Tok::Str(s)) => Value::text(s),
            _ => return Err(self.err("expected constant threshold")),
        };
        Ok(AggregateQuery {
            body: ConjunctiveQuery {
                positive,
                negated,
                comparisons,
                var_names: std::mem::take(&mut self.var_names),
            },
            func,
            args,
            op,
            threshold,
        })
    }

    #[allow(clippy::type_complexity)]
    fn body(&mut self) -> Result<(Vec<Atom>, Vec<Atom>, Vec<Comparison>), QueryError> {
        let mut positive = Vec::new();
        let mut negated = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Bang) => {
                    self.pos += 1;
                    negated.push(self.atom()?);
                }
                Some(Tok::Ident(name))
                    if name == "not" && matches!(self.peek2(), Some(Tok::Ident(_))) =>
                {
                    self.pos += 1;
                    negated.push(self.atom()?);
                }
                Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::LParen) => {
                    positive.push(self.atom()?);
                }
                _ => {
                    comparisons.push(self.comparison()?);
                }
            }
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok((positive, negated, comparisons))
    }

    fn atom(&mut self) -> Result<Atom, QueryError> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => name,
            _ => return Err(self.err("expected relation name")),
        };
        let relation = self
            .catalog
            .resolve(&name)
            .ok_or(QueryError::UnknownRelation { relation: name })?;
        self.expect(&Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(Atom { relation, terms })
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        match self.bump() {
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => Ok(Term::Const(Value::Bool(true))),
                "false" => Ok(Term::Const(Value::Bool(false))),
                _ => Ok(Term::Var(self.var(&name))),
            },
            Some(Tok::Str(s)) => Ok(Term::Const(Value::text(s))),
            Some(Tok::Int(n)) => Ok(Term::Const(Value::Int(n))),
            _ => Err(self.err("expected term")),
        }
    }

    fn comparison(&mut self) -> Result<Comparison, QueryError> {
        let lhs = self.term()?;
        let op = match self.bump() {
            Some(Tok::Op(op)) => op,
            _ => return Err(self.err("expected comparison operator")),
        };
        let rhs = self.term()?;
        Ok(Comparison { lhs, op, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::{RelationSchema, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            RelationSchema::new(
                "TxOut",
                [
                    ("txId", ValueType::Text),
                    ("ser", ValueType::Int),
                    ("pk", ValueType::Text),
                    ("amount", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(
            RelationSchema::new(
                "TxIn",
                [
                    ("prevTxId", ValueType::Text),
                    ("prevSer", ValueType::Int),
                    ("pk", ValueType::Text),
                    ("amount", ValueType::Int),
                    ("newTxId", ValueType::Text),
                    ("sig", ValueType::Text),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(RelationSchema::new("Trusted", [("pk", ValueType::Text)]).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn parses_simple_constraint() {
        let cat = catalog();
        let dc = parse_denial_constraint("q() <- TxOut(ntx, s, 'U8Pk', a)", &cat).unwrap();
        let DenialConstraint::Conjunctive(q) = dc else {
            panic!("expected conjunctive")
        };
        assert_eq!(q.positive.len(), 1);
        assert_eq!(q.positive[0].terms[2], Term::Const(Value::text("U8Pk")));
        assert_eq!(q.var_count(), 3);
    }

    #[test]
    fn parses_paper_q1() {
        let cat = catalog();
        let input = "q() <- TxIn(pt1, ps1, 'AlicePK', 1, ntx1, 'AliceSig'), \
                     TxOut(ntx1, ns1, 'BobPK', 1), \
                     TxIn(pt2, ps2, 'AlicePK', 1, ntx2, 'AliceSig'), \
                     TxOut(ntx2, ns2, 'BobPK', 1), ntx1 != ntx2";
        let dc = parse_denial_constraint(input, &cat).unwrap();
        let q = dc.body();
        assert_eq!(q.positive.len(), 4);
        assert_eq!(q.comparisons.len(), 1);
        assert_eq!(q.comparisons[0].op, CmpOp::Ne);
    }

    #[test]
    fn parses_negation_both_syntaxes() {
        let cat = catalog();
        for neg in ["!Trusted(pk)", "not Trusted(pk)"] {
            let input = format!("q() <- TxOut(ntx, s, pk, a), {neg}");
            let dc = parse_denial_constraint(&input, &cat).unwrap();
            let q = dc.body();
            assert_eq!(q.negated.len(), 1, "{neg}");
            assert_eq!(q.positive.len(), 1);
        }
    }

    #[test]
    fn parses_aggregate_paper_q3() {
        let cat = catalog();
        let input = "[q(sum(a)) <- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > 5";
        let dc = parse_denial_constraint(input, &cat).unwrap();
        let DenialConstraint::Aggregate(agg) = dc else {
            panic!("expected aggregate")
        };
        assert_eq!(agg.func, AggFunc::Sum);
        assert_eq!(agg.op, CmpOp::Gt);
        assert_eq!(agg.threshold, Value::Int(5));
        assert_eq!(agg.args.len(), 1);
    }

    #[test]
    fn parses_cntd_aggregate() {
        let cat = catalog();
        let input = "[q(cntd(ntx)) <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), \
                     TxOut(ntx, s, 'BobPK', a2)] > 10";
        let dc = parse_denial_constraint(input, &cat).unwrap();
        let DenialConstraint::Aggregate(agg) = dc else {
            panic!("expected aggregate")
        };
        assert_eq!(agg.func, AggFunc::CountDistinct);
    }

    #[test]
    fn count_with_no_args() {
        let cat = catalog();
        let dc = parse_denial_constraint("[q(count()) <- TxOut(t, s, pk, a)] >= 3", &cat).unwrap();
        let DenialConstraint::Aggregate(agg) = dc else {
            panic!("expected aggregate")
        };
        assert_eq!(agg.func, AggFunc::Count);
        assert!(agg.args.is_empty());
        assert_eq!(agg.op, CmpOp::Ge);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let cat = catalog();
        let dc = parse_denial_constraint("q() <- TxOut(_, _, 'X', _)", &cat).unwrap();
        let q = dc.body();
        assert_eq!(q.var_count(), 3);
        let vars: Vec<Var> = q.positive[0].variable_positions().map(|(_, v)| v).collect();
        assert_eq!(vars.len(), 3);
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn trailing_dot_and_colon_dash() {
        let cat = catalog();
        assert!(parse_denial_constraint("q() :- TxOut(a, b, c, d).", &cat).is_ok());
    }

    #[test]
    fn errors_report_offsets() {
        let cat = catalog();
        let err = parse_denial_constraint("q() <- Nope(x)", &cat).unwrap_err();
        assert!(matches!(err, QueryError::UnknownRelation { .. }));
        let err = parse_denial_constraint("q() <- TxOut(a, b c, d)", &cat).unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse_denial_constraint("q() <- TxOut(a, b, 'unterminated", &cat).unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse_denial_constraint("q() <- TxOut(a, b, c, d) junk()", &cat).unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn validation_runs_after_parse() {
        let cat = catalog();
        // Arity error caught by validation.
        let err = parse_denial_constraint("q() <- TxOut(a, b)", &cat).unwrap_err();
        assert!(matches!(err, QueryError::ArityMismatch { .. }));
        // Unsafe comparison-only variable.
        let err = parse_denial_constraint("q() <- TxOut(a, b, c, d), z > 3", &cat).unwrap_err();
        assert!(matches!(err, QueryError::UnsafeVariable { .. }));
    }

    #[test]
    fn negative_integer_literals() {
        let cat = catalog();
        let dc = parse_denial_constraint("q() <- TxOut(t, s, pk, a), a > -5", &cat).unwrap();
        let q = dc.body();
        assert_eq!(q.comparisons[0].rhs, Term::Const(Value::Int(-5)));
    }

    #[test]
    fn roundtrip_display_reparse() {
        let cat = catalog();
        let input = "q() <- TxOut(ntx, s, 'U8Pk', a), TxIn(ntx, s, pk, a, n2, sg), a > 0";
        let dc = parse_denial_constraint(input, &cat).unwrap();
        let DenialConstraint::Conjunctive(q) = &dc else {
            panic!()
        };
        let rendered = q.display(&cat).to_string();
        let dc2 = parse_denial_constraint(&rendered, &cat).unwrap();
        assert_eq!(dc, dc2);
    }
}
