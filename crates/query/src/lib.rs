#![warn(missing_docs)]

//! Denial-constraint language, analysis, and world-masked evaluation.
//!
//! This crate implements §5's query classes — conjunctive queries with
//! negation and comparisons (`Qc`, `Q⁺c`) and aggregate queries
//! (`Qα,θ` for α ∈ {count, cntd, sum, max, min}) — together with:
//!
//! * a text [`parser`] mirroring the paper's notation;
//! * static [`analysis`]: monotonicity (§6.1), Gaifman-graph connectivity
//!   and the equality constraints Θq (§6.2), and constant patterns for the
//!   covers optimization;
//! * an [`eval`]uation engine that runs a prepared query over any possible
//!   world selected by a [`bcdb_storage::WorldMask`], reporting per-match
//!   transaction provenance.

pub mod analysis;
pub mod ast;
pub mod error;
pub mod eval;
pub mod parser;

pub use analysis::{
    atom_graph_complete, canonical_equalities, constant_patterns, derive_query_equalities,
    equality_signature, is_connected, monotonicity, monotonicity_with, ConstantPattern,
    EqualityConstraint, Monotonicity, MonotonicityOptions,
};
pub use ast::{
    AggFunc, AggregateQuery, Atom, CmpOp, Comparison, ConjunctiveQuery, DenialConstraint,
    QueryBuilder, Term, Var,
};
pub use error::QueryError;
pub use eval::{
    aggregate_value, aggregate_value_governed, evaluate_aggregate, evaluate_aggregate_governed,
    evaluate_bool, evaluate_bool_delta_governed, evaluate_bool_governed,
    evaluate_bool_incremental_governed, for_each_match, for_each_match_governed, prepare,
    prepare_aggregate, EvalOptions, Match, PreparedAggregate, PreparedQuery,
};
pub use parser::parse_denial_constraint;
