//! Errors raised while building, parsing, validating, or evaluating
//! denial constraints.

use bcdb_storage::ValueType;
use std::fmt;

/// Errors for the query layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// An atom referenced a relation not in the catalog.
    UnknownRelation {
        /// The unresolved name.
        relation: String,
    },
    /// An atom had the wrong number of terms for its relation.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Atom arity.
        got: usize,
    },
    /// A variable occurred only in negated atoms or comparisons — the query
    /// is unsafe.
    UnsafeVariable {
        /// The variable's name.
        variable: String,
    },
    /// A term's type disagrees with the attribute or with another
    /// occurrence of the same variable.
    TypeError {
        /// Human-readable description of the conflict.
        detail: String,
    },
    /// The aggregate arguments are malformed (e.g. `sum` over a non-integer
    /// variable, or a non-unary argument list).
    BadAggregate {
        /// Human-readable description.
        detail: String,
    },
    /// A parse error, with position information.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// What went wrong.
        detail: String,
    },
    /// The paper's aggregate comparisons are {<, >, =}; we also accept
    /// {≤, ≥, ≠} as sugar, but the threshold must be a constant of a
    /// comparable type.
    BadThreshold {
        /// The aggregate's result type.
        expected: ValueType,
        /// The threshold's type.
        got: ValueType,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation { relation } => {
                write!(f, "unknown relation '{relation}'")
            }
            QueryError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "atom over '{relation}' has {got} terms, schema has {expected}"
                )
            }
            QueryError::UnsafeVariable { variable } => write!(
                f,
                "variable '{variable}' does not occur in any positive relational atom"
            ),
            QueryError::TypeError { detail } => write!(f, "type error: {detail}"),
            QueryError::BadAggregate { detail } => write!(f, "bad aggregate: {detail}"),
            QueryError::Parse { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            QueryError::BadThreshold { expected, got } => {
                write!(f, "aggregate threshold has type {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let e = QueryError::UnsafeVariable {
            variable: "x".into(),
        };
        assert!(e.to_string().contains("'x'"));
    }
}
