//! Static analysis of denial constraints: monotonicity, Gaifman-graph
//! connectivity, equality-constraint derivation (Θq, §6.2), and constant
//! patterns for the covers optimization.

use crate::ast::{
    AggFunc, AggregateQuery, Atom, CmpOp, ConjunctiveQuery, DenialConstraint, Term, Var,
};
use bcdb_graph::UnionFind;
use bcdb_storage::{RelationId, Value};
use rustc_hash::FxHashMap;

/// Whether a Boolean query is monotone: `R ⊆ R'` and `q(R)` imply `q(R')`.
///
/// `NaiveDCSat`/`OptDCSat` are sound only for monotonic denial constraints
/// (§6.1): monotonicity is what lets them restrict attention to *maximal*
/// possible worlds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Monotonicity {
    /// The query is monotone.
    Monotone,
    /// The query is not (or cannot be proven) monotone; the reason is
    /// human-readable.
    NonMonotone {
        /// Why monotonicity fails or cannot be established.
        reason: String,
    },
}

impl Monotonicity {
    /// Whether this is the `Monotone` case.
    pub fn is_monotone(&self) -> bool {
        matches!(self, Monotonicity::Monotone)
    }
}

/// Options for the monotonicity analysis.
#[derive(Clone, Copy, Debug)]
pub struct MonotonicityOptions {
    /// Treat `sum` as monotone under `>`/`≥`. Sound when the summed
    /// attribute is non-negative in all data — true for monetary amounts,
    /// and assumed by the paper's `qa` experiments. Default `true`.
    pub assume_nonnegative_sums: bool,
}

impl Default for MonotonicityOptions {
    fn default() -> Self {
        MonotonicityOptions {
            assume_nonnegative_sums: true,
        }
    }
}

/// Classifies the monotonicity of a denial constraint with default options.
pub fn monotonicity(dc: &DenialConstraint) -> Monotonicity {
    monotonicity_with(dc, MonotonicityOptions::default())
}

/// Classifies the monotonicity of a denial constraint.
pub fn monotonicity_with(dc: &DenialConstraint, opts: MonotonicityOptions) -> Monotonicity {
    let body = dc.body();
    if !body.is_positive() {
        return Monotonicity::NonMonotone {
            reason: "body contains negated atoms".into(),
        };
    }
    match dc {
        DenialConstraint::Conjunctive(_) => Monotonicity::Monotone,
        DenialConstraint::Aggregate(agg) => aggregate_monotonicity(agg, opts),
    }
}

fn aggregate_monotonicity(agg: &AggregateQuery, opts: MonotonicityOptions) -> Monotonicity {
    use AggFunc::*;
    use CmpOp::*;
    // With a positive body, the set of satisfying assignments only grows as
    // tuples are added, so count/cntd/max never decrease and min never
    // increases. (The empty bag evaluates to false, which is consistent
    // with "never decreases".)
    match (agg.func, agg.op) {
        (Count | CountDistinct, Gt | Ge) => Monotonicity::Monotone,
        (Sum, Gt | Ge) if opts.assume_nonnegative_sums => Monotonicity::Monotone,
        (Sum, Gt | Ge) => Monotonicity::NonMonotone {
            reason: "sum may decrease if negative values occur".into(),
        },
        (Max, Gt | Ge) => Monotonicity::Monotone,
        (Min, Lt | Le) => Monotonicity::Monotone,
        (f, op) => Monotonicity::NonMonotone {
            reason: format!("{}(..) {} c is not monotone", f.name(), op.symbol()),
        },
    }
}

/// Computes the equivalence classes of variables implied by the query's
/// equality comparisons (`x = y` chains). Returns, per variable, a
/// representative id.
fn variable_equality_classes(q: &ConjunctiveQuery) -> Vec<u32> {
    let n = q.var_count();
    let mut uf = UnionFind::new(n);
    for cmp in &q.comparisons {
        if cmp.op == CmpOp::Eq {
            if let (Term::Var(a), Term::Var(b)) = (&cmp.lhs, &cmp.rhs) {
                uf.union(a.index(), b.index());
            }
        }
    }
    (0..n).map(|i| uf.find(i) as u32).collect()
}

/// Whether the query's Gaifman graph is connected (§6.2).
///
/// Nodes are the terms appearing in relational atoms (variables, plus
/// constants identified by value); two terms are adjacent when they occur
/// in the same atom. Comparisons do **not** create edges (the paper's
/// `q() ← R(x,y), S(w,v), y < v` is disconnected), but variables equated by
/// `=` comparisons are merged into one node.
///
/// A query with no relational atoms is vacuously connected; so is a query
/// whose atoms share no terms but number exactly one.
pub fn is_connected(q: &ConjunctiveQuery) -> bool {
    let classes = variable_equality_classes(q);
    // Node numbering: variable classes first, then distinct constants.
    let mut const_ids: FxHashMap<Value, usize> = FxHashMap::default();
    let nvar = q.var_count();
    let atoms: Vec<&Atom> = q.positive.iter().chain(&q.negated).collect();
    for atom in &atoms {
        for term in &atom.terms {
            if let Term::Const(c) = term {
                let next = nvar + const_ids.len();
                const_ids.entry(c.clone()).or_insert(next);
            }
        }
    }
    let total = nvar + const_ids.len();
    if total == 0 || atoms.is_empty() {
        return true;
    }
    let mut uf = UnionFind::new(total);
    let mut used = vec![false; total];
    for atom in &atoms {
        let mut prev: Option<usize> = None;
        for term in &atom.terms {
            let node = match term {
                Term::Var(v) => classes[v.index()] as usize,
                Term::Const(c) => const_ids[c],
            };
            used[node] = true;
            if let Some(p) = prev {
                uf.union(p, node);
            }
            prev = Some(node);
        }
    }
    let used_nodes: Vec<usize> = (0..total).filter(|&i| used[i]).collect();
    match used_nodes.split_first() {
        None => true, // all atoms nullary
        Some((&first, rest)) => rest.iter().all(|&n| uf.connected(first, n)),
    }
}

/// Whether every pair of positive atoms directly shares a term (the "atom
/// graph" is complete).
///
/// This is a *sufficient* condition for `OptDCSat`'s component
/// decomposition (Proposition 2) to be complete regardless of the data:
/// any two atoms matched by pending tuples then induce a direct Θq edge
/// between their transactions. When atoms are only connected through
/// intermediaries, an intermediate atom matched by a *current-state* tuple
/// can bridge two components invisibly to `Gq,ind` — see DESIGN.md's
/// "Proposition 2 corner case". [`crate::DenialConstraint`]-level routing
/// uses this to decide when `OptDCSat` is safe to pick automatically.
pub fn atom_graph_complete(q: &ConjunctiveQuery) -> bool {
    let classes = variable_equality_classes(q);
    let class_of = |t: &Term| -> TermClass {
        match t {
            Term::Var(v) => TermClass::Var(classes[v.index()]),
            Term::Const(c) => TermClass::Const(c.clone()),
        }
    };
    let atoms = &q.positive;
    for i in 0..atoms.len() {
        for j in i + 1..atoms.len() {
            let a: Vec<TermClass> = atoms[i].terms.iter().map(&class_of).collect();
            let shares = atoms[j].terms.iter().any(|t| a.contains(&class_of(t)));
            if !shares {
                return false;
            }
        }
    }
    true
}

#[derive(PartialEq, Eq, Hash, Clone)]
enum TermClass {
    Var(u32),
    Const(Value),
}

/// An equality constraint `R[X̄] = S[Ȳ]` (§6.2). Satisfied by a pair of
/// tuples `t ∈ R`, `s ∈ S` when `t[X̄] = s[Ȳ]` componentwise, and by a pair
/// of transactions when some pair of their tuples satisfies it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EqualityConstraint {
    /// Left relation (`R`).
    pub left_relation: RelationId,
    /// Left attribute positions (`X̄`).
    pub left_attrs: Vec<usize>,
    /// Right relation (`S`).
    pub right_relation: RelationId,
    /// Right attribute positions (`Ȳ`).
    pub right_attrs: Vec<usize>,
}

/// Derives Θq: the equality constraints implied by pairs of distinct
/// positive atoms sharing terms — the same variable (directly or via `=`
/// comparisons), or the same constant.
///
/// Constants must participate: the paper's star constraint `qr3` repeats a
/// constant address across otherwise variable-disjoint atoms, and its
/// `Gq,ind` components are meaningful only if transactions touching that
/// address are linked. (The experiments run `OptDCSat` on `qr3`, so the
/// paper's "identical variable" wording necessarily extends to terms.)
///
/// For atoms `R(x̄)`, `S(ȳ)` the constraint pairs each position of `x̄`
/// with a position of `ȳ` holding an equal term — greedily, left to
/// right, each position used at most once (the paper's "maximal sequence
/// of distinct indices").
pub fn derive_query_equalities(q: &ConjunctiveQuery) -> Vec<EqualityConstraint> {
    let classes = variable_equality_classes(q);
    // Classes for constants: by value, merged with variables equated to
    // them through `x = c` comparisons.
    let nvar = q.var_count();
    let mut const_class: FxHashMap<Value, u32> = FxHashMap::default();
    let mut var_to_const: FxHashMap<u32, u32> = FxHashMap::default();
    let mut next_class = nvar as u32;
    for atom in &q.positive {
        for term in &atom.terms {
            if let Term::Const(c) = term {
                const_class.entry(c.clone()).or_insert_with(|| {
                    let id = next_class;
                    next_class += 1;
                    id
                });
            }
        }
    }
    for cmp in &q.comparisons {
        if cmp.op == CmpOp::Eq {
            let pair = match (&cmp.lhs, &cmp.rhs) {
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                    Some((*v, c.clone()))
                }
                _ => None,
            };
            if let Some((v, c)) = pair {
                if let Some(&cc) = const_class.get(&c) {
                    var_to_const.insert(classes[v.index()], cc);
                }
            }
        }
    }
    let class_of = |t: &Term| -> Option<u32> {
        match t {
            Term::Var(v) => {
                let vc = classes[v.index()];
                Some(var_to_const.get(&vc).copied().unwrap_or(vc))
            }
            Term::Const(c) => const_class.get(c).copied(),
        }
    };
    let mut out = Vec::new();
    let atoms = &q.positive;
    for i in 0..atoms.len() {
        for j in i + 1..atoms.len() {
            let (a, b) = (&atoms[i], &atoms[j]);
            let mut left = Vec::new();
            let mut right = Vec::new();
            let mut used_right = vec![false; b.terms.len()];
            for (ai, at) in a.terms.iter().enumerate() {
                let Some(ca) = class_of(at) else { continue };
                let hit = b
                    .terms
                    .iter()
                    .enumerate()
                    .find(|(bi, bt)| !used_right[*bi] && class_of(bt) == Some(ca));
                if let Some((bi, _)) = hit {
                    used_right[bi] = true;
                    left.push(ai);
                    right.push(bi);
                }
            }
            if !left.is_empty() {
                out.push(EqualityConstraint {
                    left_relation: a.relation,
                    left_attrs: left,
                    right_relation: b.relation,
                    right_attrs: right,
                });
            }
        }
    }
    out
}

/// The constant pattern of one atom: the positions holding constants and
/// their values. Used by the `Covers` check of `OptDCSat`: a component can
/// only satisfy the query if, for every atom, some available tuple matches
/// all of the atom's constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstantPattern {
    /// The atom's relation.
    pub relation: RelationId,
    /// Constant positions, ascending.
    pub positions: Vec<usize>,
    /// The constants at those positions.
    pub values: Vec<Value>,
}

/// Extracts the constant patterns of every *positive* atom that has at
/// least one constant. (Negated atoms do not constrain covers: their
/// satisfaction requires *absence* of tuples.)
pub fn constant_patterns(q: &ConjunctiveQuery) -> Vec<ConstantPattern> {
    q.positive
        .iter()
        .filter_map(|atom| {
            let (positions, values): (Vec<usize>, Vec<Value>) = atom
                .constant_positions()
                .map(|(i, c)| (i, c.clone()))
                .unzip();
            if positions.is_empty() {
                None
            } else {
                Some(ConstantPattern {
                    relation: atom.relation,
                    positions,
                    values,
                })
            }
        })
        .collect()
}

/// The variables aggregated over plus every body variable — helper used by
/// evaluators that must deduplicate assignments.
pub fn all_vars(q: &ConjunctiveQuery) -> Vec<Var> {
    (0..q.var_count() as u32).map(Var).collect()
}

/// Θq in canonical (sorted, deduplicated) order.
///
/// Two queries with equal canonical lists refine `Gind` into the *same*
/// partition over any transaction set, so the list is usable as an exact
/// cache key for component partitions — unlike [`equality_signature`],
/// which compresses it to a hash for grouping and display only.
pub fn canonical_equalities(q: &ConjunctiveQuery) -> Vec<EqualityConstraint> {
    let mut eqs = derive_query_equalities(q);
    eqs.sort_by(|a, b| {
        (a.left_relation, &a.left_attrs, a.right_relation, &a.right_attrs).cmp(&(
            b.left_relation,
            &b.left_attrs,
            b.right_relation,
            &b.right_attrs,
        ))
    });
    eqs.dedup();
    eqs
}

/// FNV-1a digest of [`canonical_equalities`] — a compact component-structure
/// signature for grouping constraints that induce the same `Gq,ind`
/// refinement. Collisions are possible, so soundness-critical caching must
/// key on the canonical list itself; the signature is for stats and logs.
pub fn equality_signature(q: &ConjunctiveQuery) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for eq in canonical_equalities(q) {
        mix(eq.left_relation.index() as u64);
        mix(eq.right_relation.index() as u64);
        mix(eq.left_attrs.len() as u64);
        for &a in eq.left_attrs.iter().chain(&eq.right_attrs) {
            mix(a as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use bcdb_storage::{Catalog, RelationSchema, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            RelationSchema::new(
                "R",
                [
                    ("a1", ValueType::Int),
                    ("a2", ValueType::Int),
                    ("a3", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(
            RelationSchema::new(
                "S",
                [
                    ("b1", ValueType::Int),
                    ("b2", ValueType::Int),
                    ("b3", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(RelationSchema::new("T", [("c1", ValueType::Int), ("c2", ValueType::Int)]).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn positive_conjunctive_is_monotone() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("z"))
            .build_conjunctive()
            .unwrap();
        assert!(monotonicity(&DenialConstraint::Conjunctive(q)).is_monotone());
    }

    #[test]
    fn negation_breaks_monotonicity() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("z"))
            .not_atom("T", |a| a.var("x").var("y"))
            .build_conjunctive()
            .unwrap();
        let m = monotonicity(&DenialConstraint::Conjunctive(q));
        assert!(!m.is_monotone());
    }

    #[test]
    fn aggregate_monotonicity_table() {
        let cat = catalog();
        let check = |func: AggFunc, op: CmpOp, want: bool| {
            let agg = QueryBuilder::new(&cat)
                .atom("R", |a| a.var("x").var("y").var("z"))
                .build_aggregate(func, &["x"], op, 5i64)
                .unwrap();
            let got = monotonicity(&DenialConstraint::Aggregate(agg)).is_monotone();
            assert_eq!(got, want, "{func:?} {op:?}");
        };
        check(AggFunc::Count, CmpOp::Gt, true);
        check(AggFunc::Count, CmpOp::Ge, true);
        check(AggFunc::Count, CmpOp::Lt, false);
        check(AggFunc::Count, CmpOp::Eq, false);
        check(AggFunc::CountDistinct, CmpOp::Gt, true);
        check(AggFunc::Sum, CmpOp::Gt, true); // nonneg assumption (default)
        check(AggFunc::Sum, CmpOp::Lt, false);
        check(AggFunc::Max, CmpOp::Gt, true);
        check(AggFunc::Max, CmpOp::Lt, false);
        check(AggFunc::Min, CmpOp::Lt, true);
        check(AggFunc::Min, CmpOp::Gt, false);
    }

    #[test]
    fn sum_without_nonneg_assumption() {
        let cat = catalog();
        let agg = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("z"))
            .build_aggregate(AggFunc::Sum, &["x"], CmpOp::Gt, 5i64)
            .unwrap();
        let m = monotonicity_with(
            &DenialConstraint::Aggregate(agg),
            MonotonicityOptions {
                assume_nonnegative_sums: false,
            },
        );
        assert!(!m.is_monotone());
    }

    #[test]
    fn paper_connectivity_examples() {
        let cat = catalog();
        // q() ← R(x,y,u), S(x,w,z) shares x: connected.
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("u"))
            .atom("S", |a| a.var("x").var("w").var("z"))
            .build_conjunctive()
            .unwrap();
        assert!(is_connected(&q));
        // q() ← R(x,y,u), S(w,v,z), y < v: NOT connected (comparison no edge).
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("u"))
            .atom("S", |a| a.var("w").var("v").var("z"))
            .cmp_vars("y", CmpOp::Lt, "v")
            .build_conjunctive()
            .unwrap();
        assert!(!is_connected(&q));
        // But with y = v the variables merge: connected.
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("u"))
            .atom("S", |a| a.var("w").var("v").var("z"))
            .cmp_vars("y", CmpOp::Eq, "v")
            .build_conjunctive()
            .unwrap();
        assert!(is_connected(&q));
    }

    #[test]
    fn single_atom_is_connected() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("T", |a| a.var("x").constant(5i64))
            .build_conjunctive()
            .unwrap();
        assert!(is_connected(&q));
    }

    #[test]
    fn shared_constant_connects() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("T", |a| a.var("x").constant(5i64))
            .atom("T", |a| a.var("y").constant(5i64))
            .build_conjunctive()
            .unwrap();
        assert!(is_connected(&q));
        let q = QueryBuilder::new(&cat)
            .atom("T", |a| a.var("x").constant(5i64))
            .atom("T", |a| a.var("y").constant(6i64))
            .build_conjunctive()
            .unwrap();
        assert!(!is_connected(&q));
    }

    #[test]
    fn paper_example_7_equalities() {
        // q() ← R(w,x,u), S(x,w,z), T(y,x):
        // R[A1,A2]=S[B2,B1], R[A2]=T[C2], S[B1]=T[C2].
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("w").var("x").var("u"))
            .atom("S", |a| a.var("x").var("w").var("z"))
            .atom("T", |a| a.var("y").var("x"))
            .build_conjunctive()
            .unwrap();
        let thetas = derive_query_equalities(&q);
        assert_eq!(thetas.len(), 3);
        let r = cat.resolve("R").unwrap();
        let s = cat.resolve("S").unwrap();
        let t = cat.resolve("T").unwrap();
        assert!(thetas.contains(&EqualityConstraint {
            left_relation: r,
            left_attrs: vec![0, 1],
            right_relation: s,
            right_attrs: vec![1, 0],
        }));
        assert!(thetas.contains(&EqualityConstraint {
            left_relation: r,
            left_attrs: vec![1],
            right_relation: t,
            right_attrs: vec![1],
        }));
        assert!(thetas.contains(&EqualityConstraint {
            left_relation: s,
            left_attrs: vec![0],
            right_relation: t,
            right_attrs: vec![1],
        }));
    }

    #[test]
    fn equalities_respect_eq_comparisons() {
        let cat = catalog();
        // x and v linked by x = v.
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("u"))
            .atom("S", |a| a.var("w").var("v").var("z"))
            .cmp_vars("x", CmpOp::Eq, "v")
            .build_conjunctive()
            .unwrap();
        let thetas = derive_query_equalities(&q);
        assert_eq!(thetas.len(), 1);
        assert_eq!(thetas[0].left_attrs, vec![0]);
        assert_eq!(thetas[0].right_attrs, vec![1]);
    }

    #[test]
    fn no_shared_variables_no_equalities() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("y").var("u"))
            .atom("S", |a| a.var("w").var("v").var("z"))
            .build_conjunctive()
            .unwrap();
        assert!(derive_query_equalities(&q).is_empty());
    }

    #[test]
    fn repeated_variable_pairs_greedily() {
        let cat = catalog();
        // R(x,x,u) vs T(y,x): position 0 of R pairs with position 1 of T;
        // position 1 of R has no unused partner left.
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("x").var("u"))
            .atom("T", |a| a.var("y").var("x"))
            .build_conjunctive()
            .unwrap();
        let thetas = derive_query_equalities(&q);
        assert_eq!(thetas.len(), 1);
        assert_eq!(thetas[0].left_attrs, vec![0]);
        assert_eq!(thetas[0].right_attrs, vec![1]);
    }

    #[test]
    fn shared_constants_derive_equalities() {
        let cat = catalog();
        // Two atoms sharing only the constant 5 (the qr-style pattern).
        let q = QueryBuilder::new(&cat)
            .atom("T", |a| a.var("x").constant(5i64))
            .atom("T", |a| a.var("y").constant(5i64))
            .build_conjunctive()
            .unwrap();
        let thetas = derive_query_equalities(&q);
        assert_eq!(thetas.len(), 1);
        assert_eq!(thetas[0].left_attrs, vec![1]);
        assert_eq!(thetas[0].right_attrs, vec![1]);
        // Different constants do not pair.
        let q = QueryBuilder::new(&cat)
            .atom("T", |a| a.var("x").constant(5i64))
            .atom("T", |a| a.var("y").constant(6i64))
            .build_conjunctive()
            .unwrap();
        assert!(derive_query_equalities(&q).is_empty());
    }

    #[test]
    fn var_equals_const_merges_classes() {
        let cat = catalog();
        // x = 5 makes R's x-position pair with T's constant-5 position.
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").var("u").var("w"))
            .atom("T", |a| a.var("y").constant(5i64))
            .cmp_const("x", CmpOp::Eq, 5i64)
            .build_conjunctive()
            .unwrap();
        let thetas = derive_query_equalities(&q);
        assert_eq!(thetas.len(), 1);
        assert_eq!(thetas[0].left_attrs, vec![0]);
        assert_eq!(thetas[0].right_attrs, vec![1]);
    }

    #[test]
    fn constant_patterns_extracted() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("R", |a| a.var("x").constant(5i64).constant(7i64))
            .atom("T", |a| a.var("y").var("x"))
            .build_conjunctive()
            .unwrap();
        let pats = constant_patterns(&q);
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].positions, vec![1, 2]);
        assert_eq!(pats[0].values, vec![Value::Int(5), Value::Int(7)]);
    }
}
