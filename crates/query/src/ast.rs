//! The denial-constraint language (§5 of the paper).
//!
//! A *conjunctive* denial constraint has the form `q() ← P, N, C`: positive
//! relational atoms `P`, negated atoms `N`, and comparisons `C`. An
//! *aggregate* denial constraint has the form `[q(α(x̄)) ← P, N, C] θ c`.
//! A denial constraint is *satisfied* by a blockchain database when the
//! underlying query is false in every possible world.

use crate::error::QueryError;
use bcdb_storage::{Catalog, RelationId, Value, ValueType};
use std::fmt;

/// A query variable (dense index into the query's variable table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: a variable or a ground constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable occurrence.
    Var(Var),
    /// Constant occurrence.
    Const(Value),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

/// A relational atom `R(t₁, …, tₙ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub relation: RelationId,
    /// The terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Positions holding constants, with the constants.
    pub fn constant_positions(&self) -> impl Iterator<Item = (usize, &Value)> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i, c)))
    }

    /// Positions holding variables, with the variables.
    pub fn variable_positions(&self) -> impl Iterator<Item = (usize, Var)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().map(|v| (i, v)))
    }
}

/// Comparison operators. The paper's grammar uses `=, <, >, ≠`; `≤, ≥` are
/// accepted as sugar.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `≤`
    Le,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Applies the operator to a same-type value pair. `None` when the
    /// types differ (the comparison is then unsatisfied).
    pub fn eval(self, a: &Value, b: &Value) -> Option<bool> {
        let ord = a.partial_cmp_same_type(b)?;
        Some(match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Ge => ord.is_ge(),
        })
    }

    /// The symbol, e.g. `"!="`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        }
    }
}

/// A comparison `t₁ θ t₂` between terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comparison {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

/// A Boolean conjunctive query `q() ← P, N, C`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Positive relational atoms (`P`).
    pub positive: Vec<Atom>,
    /// Negated relational atoms (`N`).
    pub negated: Vec<Atom>,
    /// Comparisons (`C`).
    pub comparisons: Vec<Comparison>,
    /// Variable names, indexed by [`Var`].
    pub var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The name of `v`.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Whether the query has no negated atoms (class `Q⁺c`).
    pub fn is_positive(&self) -> bool {
        self.negated.is_empty()
    }

    /// Validates the query against a catalog: known relations, correct
    /// arities, safety (every variable in a positive atom), and consistent
    /// typing of every variable and constant.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        let mut var_types: Vec<Option<ValueType>> = vec![None; self.var_count()];
        let mut in_positive = vec![false; self.var_count()];

        let check_atom = |atom: &Atom,
                          positive: bool,
                          var_types: &mut Vec<Option<ValueType>>,
                          in_positive: &mut Vec<bool>|
         -> Result<(), QueryError> {
            let schema = catalog.schema(atom.relation);
            if atom.terms.len() != schema.arity() {
                return Err(QueryError::ArityMismatch {
                    relation: schema.name().to_string(),
                    expected: schema.arity(),
                    got: atom.terms.len(),
                });
            }
            for (i, term) in atom.terms.iter().enumerate() {
                let (attr, ty) = schema.attribute(i).expect("arity checked");
                match term {
                    Term::Const(c) => {
                        if c.value_type() != ty {
                            return Err(QueryError::TypeError {
                                detail: format!(
                                    "constant {c} at {}.{attr} has type {}, expected {ty}",
                                    schema.name(),
                                    c.value_type()
                                ),
                            });
                        }
                    }
                    Term::Var(v) => {
                        if positive {
                            in_positive[v.index()] = true;
                        }
                        match var_types[v.index()] {
                            None => var_types[v.index()] = Some(ty),
                            Some(prev) if prev != ty => {
                                return Err(QueryError::TypeError {
                                    detail: format!(
                                        "variable {} used at types {prev} and {ty}",
                                        self.var_name(*v)
                                    ),
                                });
                            }
                            _ => {}
                        }
                    }
                }
            }
            Ok(())
        };

        for atom in &self.positive {
            check_atom(atom, true, &mut var_types, &mut in_positive)?;
        }
        for atom in &self.negated {
            check_atom(atom, false, &mut var_types, &mut in_positive)?;
        }

        for (i, safe) in in_positive.iter().enumerate() {
            if !safe {
                return Err(QueryError::UnsafeVariable {
                    variable: self.var_names[i].clone(),
                });
            }
        }

        for cmp in &self.comparisons {
            let type_of = |t: &Term| -> Option<ValueType> {
                match t {
                    Term::Const(c) => Some(c.value_type()),
                    Term::Var(v) => var_types[v.index()],
                }
            };
            if let Some(v) = cmp.lhs.as_var().or(cmp.rhs.as_var()) {
                if var_types[v.index()].is_none() {
                    return Err(QueryError::UnsafeVariable {
                        variable: self.var_name(v).to_string(),
                    });
                }
            }
            if let (Some(a), Some(b)) = (type_of(&cmp.lhs), type_of(&cmp.rhs)) {
                if a != b {
                    return Err(QueryError::TypeError {
                        detail: format!(
                            "comparison {} {} {} mixes types {a} and {b}",
                            render_term(&cmp.lhs, &self.var_names),
                            cmp.op.symbol(),
                            render_term(&cmp.rhs, &self.var_names)
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The inferred type of every variable (from positive-atom positions).
    /// Call only after [`validate`](Self::validate) has succeeded.
    pub fn var_types(&self, catalog: &Catalog) -> Vec<ValueType> {
        let mut types = vec![ValueType::Int; self.var_count()];
        for atom in self.positive.iter().chain(&self.negated) {
            let schema = catalog.schema(atom.relation);
            for (i, v) in atom.variable_positions() {
                if let Some((_, ty)) = schema.attribute(i) {
                    types[v.index()] = ty;
                }
            }
        }
        types
    }

    /// Renders the query in datalog-ish syntax.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        QueryDisplay { q: self, catalog }
    }
}

fn render_term(t: &Term, names: &[String]) -> String {
    match t {
        Term::Var(v) => names[v.index()].clone(),
        Term::Const(c) => c.to_string(),
    }
}

struct QueryDisplay<'a> {
    q: &'a ConjunctiveQuery,
    catalog: &'a Catalog,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q() <- ")?;
        write_body(f, self.q, self.catalog)
    }
}

/// Writes the body `P, N, C` (shared by the conjunctive and aggregate
/// renderers). The output reparses to the same AST: safety guarantees every
/// variable occurs in a positive atom, so printing positives first
/// preserves first-occurrence order and therefore [`Var`] numbering.
fn write_body(f: &mut fmt::Formatter<'_>, q: &ConjunctiveQuery, catalog: &Catalog) -> fmt::Result {
    let mut first = true;
    let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
        if !first {
            write!(f, ", ")?;
        }
        first = false;
        Ok(())
    };
    for atom in &q.positive {
        sep(f)?;
        write_atom(f, atom, catalog, &q.var_names, false)?;
    }
    for atom in &q.negated {
        sep(f)?;
        write_atom(f, atom, catalog, &q.var_names, true)?;
    }
    for cmp in &q.comparisons {
        sep(f)?;
        write!(
            f,
            "{} {} {}",
            render_term(&cmp.lhs, &q.var_names),
            cmp.op.symbol(),
            render_term(&cmp.rhs, &q.var_names)
        )?;
    }
    Ok(())
}

fn write_atom(
    f: &mut fmt::Formatter<'_>,
    atom: &Atom,
    catalog: &Catalog,
    names: &[String],
    negated: bool,
) -> fmt::Result {
    if negated {
        write!(f, "!")?;
    }
    write!(f, "{}(", catalog.schema(atom.relation).name())?;
    for (i, t) in atom.terms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", render_term(t, names))?;
    }
    write!(f, ")")
}

/// Aggregate functions (§5). `min` is the paper's "results for max can
/// easily be used to determine the complexity for min".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count` — size of the bag of satisfying assignments.
    Count,
    /// `cntd` — count of distinct projected values.
    CountDistinct,
    /// `sum` — sum of a unary integer projection.
    Sum,
    /// `max` — maximum of a unary projection.
    Max,
    /// `min` — minimum of a unary projection.
    Min,
}

impl AggFunc {
    /// The surface syntax name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "cntd",
            AggFunc::Sum => "sum",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
        }
    }
}

/// An aggregate denial constraint `[q(α(x̄)) ← body] θ c`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateQuery {
    /// The query body.
    pub body: ConjunctiveQuery,
    /// The aggregate function α.
    pub func: AggFunc,
    /// The aggregated variables x̄ (empty only for `count`).
    pub args: Vec<Var>,
    /// The comparison θ.
    pub op: CmpOp,
    /// The constant c.
    pub threshold: Value,
}

struct AggregateDisplay<'a> {
    a: &'a AggregateQuery,
    catalog: &'a Catalog,
}

impl fmt::Display for AggregateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[q({}(", self.a.func.name())?;
        for (i, v) in self.a.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(&self.a.body.var_names[v.index()])?;
        }
        write!(f, ")) <- ")?;
        write_body(f, &self.a.body, self.catalog)?;
        write!(f, "] {} {}", self.a.op.symbol(), self.a.threshold)
    }
}

impl AggregateQuery {
    /// Renders the constraint in the parser's `[q(α(x̄)) <- body] θ c`
    /// syntax. Aggregate arguments print before the body, matching the
    /// parser's variable-numbering order, so the output reparses to an
    /// equal AST.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        AggregateDisplay { a: self, catalog }
    }

    /// Validates the body plus the aggregate shape: argument arities,
    /// argument types, and threshold type.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        self.body.validate(catalog)?;
        let types = self.body.var_types(catalog);
        for v in &self.args {
            if v.index() >= types.len() {
                return Err(QueryError::BadAggregate {
                    detail: "aggregate argument is not a body variable".into(),
                });
            }
        }
        let result_type = match self.func {
            AggFunc::Count | AggFunc::CountDistinct => ValueType::Int,
            AggFunc::Sum => {
                let [v] = self.args.as_slice() else {
                    return Err(QueryError::BadAggregate {
                        detail: "sum takes exactly one argument".into(),
                    });
                };
                if types[v.index()] != ValueType::Int {
                    return Err(QueryError::BadAggregate {
                        detail: format!(
                            "sum argument {} has type {}, expected int",
                            self.body.var_name(*v),
                            types[v.index()]
                        ),
                    });
                }
                ValueType::Int
            }
            AggFunc::Max | AggFunc::Min => {
                let [v] = self.args.as_slice() else {
                    return Err(QueryError::BadAggregate {
                        detail: format!("{} takes exactly one argument", self.func.name()),
                    });
                };
                types[v.index()]
            }
        };
        if self.threshold.value_type() != result_type {
            return Err(QueryError::BadThreshold {
                expected: result_type,
                got: self.threshold.value_type(),
            });
        }
        Ok(())
    }
}

/// A denial constraint: the Boolean query the user wants to stay false in
/// every possible world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DenialConstraint {
    /// Class `Qc` (or `Q⁺c` when positive).
    Conjunctive(ConjunctiveQuery),
    /// Class `Qα,θ`.
    Aggregate(AggregateQuery),
}

impl DenialConstraint {
    /// The body common to both forms.
    pub fn body(&self) -> &ConjunctiveQuery {
        match self {
            DenialConstraint::Conjunctive(q) => q,
            DenialConstraint::Aggregate(a) => &a.body,
        }
    }

    /// Validates against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        match self {
            DenialConstraint::Conjunctive(q) => q.validate(catalog),
            DenialConstraint::Aggregate(a) => a.validate(catalog),
        }
    }

    /// Whether the constraint is an aggregate query.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, DenialConstraint::Aggregate(_))
    }

    /// Renders the constraint in the parser's surface syntax; the output
    /// reparses to an equal AST (see `parser::tests` for the round-trip
    /// property).
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> impl fmt::Display + 'a {
        ConstraintDisplay { dc: self, catalog }
    }

    /// Renders the constraint's *canonical shape*: the surface syntax with
    /// every variable renamed positionally (`_0`, `_1`, … in [`Var`]-index
    /// order, which is first-occurrence order). Alpha-renamed constraints
    /// — equal up to variable names — render to the same shape, while any
    /// structural difference (atoms, constants, comparisons, aggregate
    /// form) keeps shapes distinct, so the shape is a sound sharing key
    /// for cross-tenant verdict reuse.
    pub fn canonical_shape(&self, catalog: &Catalog) -> String {
        let mut dc = self.clone();
        let names = match &mut dc {
            DenialConstraint::Conjunctive(q) => &mut q.var_names,
            DenialConstraint::Aggregate(a) => &mut a.body.var_names,
        };
        for (i, name) in names.iter_mut().enumerate() {
            *name = format!("_{i}");
        }
        let shape = dc.display(catalog).to_string();
        shape
    }
}

struct ConstraintDisplay<'a> {
    dc: &'a DenialConstraint,
    catalog: &'a Catalog,
}

impl fmt::Display for ConstraintDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dc {
            DenialConstraint::Conjunctive(q) => q.display(self.catalog).fmt(f),
            DenialConstraint::Aggregate(a) => a.display(self.catalog).fmt(f),
        }
    }
}

/// A fluent builder for denial constraints with *named* variables.
///
/// ```
/// # use bcdb_storage::{Catalog, RelationSchema, ValueType, Value};
/// # use bcdb_query::ast::QueryBuilder;
/// let mut cat = Catalog::new();
/// cat.add(RelationSchema::new("TxOut", [
///     ("txId", ValueType::Text), ("ser", ValueType::Int),
///     ("pk", ValueType::Text), ("amount", ValueType::Int),
/// ]).unwrap()).unwrap();
/// let q = QueryBuilder::new(&cat)
///     .atom("TxOut", |a| a.var("ntx").var("s").constant("U8Pk").var("amt"))
///     .build_conjunctive()
///     .unwrap();
/// assert!(q.validate(&cat).is_ok());
/// ```
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    positive: Vec<Atom>,
    negated: Vec<Atom>,
    comparisons: Vec<Comparison>,
    var_names: Vec<String>,
    error: Option<QueryError>,
}

/// Builder for one atom's term list (see [`QueryBuilder::atom`]).
pub struct AtomBuilder<'b> {
    terms: &'b mut Vec<Term>,
    var_names: &'b mut Vec<String>,
}

impl AtomBuilder<'_> {
    fn var_id(&mut self, name: &str) -> Var {
        if let Some(i) = self.var_names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.var_names.push(name.to_string());
            Var((self.var_names.len() - 1) as u32)
        }
    }

    /// Appends a variable term (created on first use of the name).
    pub fn var(mut self, name: &str) -> Self {
        let v = self.var_id(name);
        self.terms.push(Term::Var(v));
        self
    }

    /// Appends a constant term.
    pub fn constant(self, value: impl Into<Value>) -> Self {
        self.terms.push(Term::Const(value.into()));
        self
    }
}

impl<'a> QueryBuilder<'a> {
    /// Starts a builder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        QueryBuilder {
            catalog,
            positive: Vec::new(),
            negated: Vec::new(),
            comparisons: Vec::new(),
            var_names: Vec::new(),
            error: None,
        }
    }

    fn push_atom(
        &mut self,
        relation: &str,
        negated: bool,
        f: impl FnOnce(AtomBuilder<'_>) -> AtomBuilder<'_>,
    ) {
        let Some(rel) = self.catalog.resolve(relation) else {
            self.error.get_or_insert(QueryError::UnknownRelation {
                relation: relation.to_string(),
            });
            return;
        };
        let mut terms = Vec::new();
        f(AtomBuilder {
            terms: &mut terms,
            var_names: &mut self.var_names,
        });
        let atom = Atom {
            relation: rel,
            terms,
        };
        if negated {
            self.negated.push(atom);
        } else {
            self.positive.push(atom);
        }
    }

    /// Adds a positive atom over `relation`; `f` fills in the terms.
    pub fn atom(
        mut self,
        relation: &str,
        f: impl FnOnce(AtomBuilder<'_>) -> AtomBuilder<'_>,
    ) -> Self {
        self.push_atom(relation, false, f);
        self
    }

    /// Adds a negated atom.
    pub fn not_atom(
        mut self,
        relation: &str,
        f: impl FnOnce(AtomBuilder<'_>) -> AtomBuilder<'_>,
    ) -> Self {
        self.push_atom(relation, true, f);
        self
    }

    fn var_term(&mut self, name: &str) -> Term {
        let v = if let Some(i) = self.var_names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.var_names.push(name.to_string());
            Var((self.var_names.len() - 1) as u32)
        };
        Term::Var(v)
    }

    /// Adds a comparison between two variables.
    pub fn cmp_vars(mut self, lhs: &str, op: CmpOp, rhs: &str) -> Self {
        let l = self.var_term(lhs);
        let r = self.var_term(rhs);
        self.comparisons.push(Comparison { lhs: l, op, rhs: r });
        self
    }

    /// Adds a comparison between a variable and a constant.
    pub fn cmp_const(mut self, lhs: &str, op: CmpOp, rhs: impl Into<Value>) -> Self {
        let l = self.var_term(lhs);
        self.comparisons.push(Comparison {
            lhs: l,
            op,
            rhs: Term::Const(rhs.into()),
        });
        self
    }

    fn take_query(&mut self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            positive: std::mem::take(&mut self.positive),
            negated: std::mem::take(&mut self.negated),
            comparisons: std::mem::take(&mut self.comparisons),
            var_names: std::mem::take(&mut self.var_names),
        }
    }

    /// Finishes as a conjunctive denial constraint, validating it.
    pub fn build_conjunctive(mut self) -> Result<ConjunctiveQuery, QueryError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let q = self.take_query();
        q.validate(self.catalog)?;
        Ok(q)
    }

    /// Finishes as an aggregate denial constraint `[q(func(args)) ← …] op c`.
    pub fn build_aggregate(
        mut self,
        func: AggFunc,
        args: &[&str],
        op: CmpOp,
        threshold: impl Into<Value>,
    ) -> Result<AggregateQuery, QueryError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let body = self.take_query();
        let arg_vars = args
            .iter()
            .map(|name| {
                body.var_names
                    .iter()
                    .position(|n| n == name)
                    .map(|i| Var(i as u32))
                    .ok_or_else(|| QueryError::BadAggregate {
                        detail: format!("aggregate argument '{name}' not used in the body"),
                    })
            })
            .collect::<Result<Vec<Var>, _>>()?;
        let agg = AggregateQuery {
            body,
            func,
            args: arg_vars,
            op,
            threshold: threshold.into(),
        };
        agg.validate(self.catalog)?;
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcdb_storage::RelationSchema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            RelationSchema::new(
                "TxOut",
                [
                    ("txId", ValueType::Text),
                    ("ser", ValueType::Int),
                    ("pk", ValueType::Text),
                    ("amount", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.add(RelationSchema::new("Trusted", [("pk", ValueType::Text)]).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn builder_constructs_and_validates() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").constant("U8Pk").var("amt"))
            .build_conjunctive()
            .unwrap();
        assert_eq!(q.positive.len(), 1);
        assert_eq!(q.var_count(), 3);
        assert!(q.is_positive());
    }

    #[test]
    fn builder_shares_variables_across_atoms() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("a1"))
            .atom("TxOut", |a| a.var("t2").var("s2").var("pk").var("a2"))
            .cmp_vars("t", CmpOp::Ne, "t2")
            .build_conjunctive()
            .unwrap();
        assert_eq!(q.var_count(), 7); // t, s, pk, a1, t2, s2, a2 — pk shared
        let pk_occurrences: Vec<Var> = q
            .positive
            .iter()
            .filter_map(|a| a.terms[2].as_var())
            .collect();
        assert_eq!(pk_occurrences[0], pk_occurrences[1]);
    }

    #[test]
    fn unknown_relation_reported() {
        let cat = catalog();
        let err = QueryBuilder::new(&cat)
            .atom("Nope", |a| a.var("x"))
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownRelation { .. }));
    }

    #[test]
    fn arity_mismatch_reported() {
        let cat = catalog();
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("x"))
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::ArityMismatch {
                expected: 4,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unsafe_variable_reported() {
        let cat = catalog();
        // x appears only in a negated atom.
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .not_atom("Trusted", |a| a.var("x"))
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(err, QueryError::UnsafeVariable { variable } if variable == "x"));
    }

    #[test]
    fn type_conflicts_reported() {
        let cat = catalog();
        // `t` used at Text (txId) and Int (amount).
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("t"))
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(err, QueryError::TypeError { .. }));
        // Constant of the wrong type.
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.constant(5i64).var("s").var("pk").var("amt"))
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(err, QueryError::TypeError { .. }));
    }

    #[test]
    fn comparison_type_mismatch_reported() {
        let cat = catalog();
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .cmp_vars("t", CmpOp::Lt, "amt")
            .build_conjunctive()
            .unwrap_err();
        assert!(matches!(err, QueryError::TypeError { .. }));
    }

    #[test]
    fn aggregate_validation() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("TxOut", |a| {
                a.var("t").var("s").constant("Alice").var("amt")
            })
            .build_aggregate(AggFunc::Sum, &["amt"], CmpOp::Gt, 5i64)
            .unwrap();
        assert_eq!(q.func, AggFunc::Sum);
        // sum over text is rejected.
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .build_aggregate(AggFunc::Sum, &["pk"], CmpOp::Gt, 5i64)
            .unwrap_err();
        assert!(matches!(err, QueryError::BadAggregate { .. }));
        // wrong threshold type for max over text.
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .build_aggregate(AggFunc::Max, &["pk"], CmpOp::Gt, 5i64)
            .unwrap_err();
        assert!(matches!(err, QueryError::BadThreshold { .. }));
        // unknown aggregate argument.
        let err = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .build_aggregate(AggFunc::Sum, &["zzz"], CmpOp::Gt, 5i64)
            .unwrap_err();
        assert!(matches!(err, QueryError::BadAggregate { .. }));
    }

    #[test]
    fn count_with_no_args_is_allowed() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").var("pk").var("amt"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Gt, 10i64)
            .unwrap();
        assert!(q.args.is_empty());
    }

    #[test]
    fn cmp_op_eval_table() {
        use CmpOp::*;
        let one = Value::Int(1);
        let two = Value::Int(2);
        assert_eq!(Lt.eval(&one, &two), Some(true));
        assert_eq!(Gt.eval(&one, &two), Some(false));
        assert_eq!(Eq.eval(&one, &one), Some(true));
        assert_eq!(Ne.eval(&one, &two), Some(true));
        assert_eq!(Le.eval(&one, &one), Some(true));
        assert_eq!(Ge.eval(&one, &two), Some(false));
        assert_eq!(Eq.eval(&one, &Value::text("1")), None);
    }

    #[test]
    fn display_renders_datalog() {
        let cat = catalog();
        let q = QueryBuilder::new(&cat)
            .atom("TxOut", |a| a.var("t").var("s").constant("U8").var("amt"))
            .not_atom("Trusted", |a| a.var("pk2"))
            .atom("Trusted", |a| a.var("pk2"))
            .cmp_vars("t", CmpOp::Ne, "pk2")
            .build_conjunctive()
            .unwrap();
        let s = q.display(&cat).to_string();
        assert!(s.contains("TxOut(t, s, 'U8', amt)"), "{s}");
        assert!(s.contains("!Trusted(pk2)"), "{s}");
        assert!(s.contains("t != pk2"), "{s}");
    }

    #[test]
    fn canonical_shape_is_alpha_invariant() {
        let cat = catalog();
        let build = |names: [&str; 3]| {
            DenialConstraint::Conjunctive(
                QueryBuilder::new(&cat)
                    .atom("Trusted", |a| a.var(names[0]))
                    .atom("Trusted", |a| a.var(names[1]))
                    .atom("Trusted", |a| a.var(names[2]))
                    .cmp_vars(names[0], CmpOp::Ne, names[1])
                    .build_conjunctive()
                    .unwrap(),
            )
        };
        let a = build(["x", "y", "z"]);
        let b = build(["p", "q", "r"]);
        assert_ne!(
            a.display(&cat).to_string(),
            b.display(&cat).to_string(),
            "surface texts differ"
        );
        assert_eq!(
            a.canonical_shape(&cat),
            b.canonical_shape(&cat),
            "alpha-renamed duplicates share a shape"
        );
        // A structural difference — comparing a different variable pair —
        // keeps shapes distinct.
        let c = DenialConstraint::Conjunctive(
            QueryBuilder::new(&cat)
                .atom("Trusted", |a| a.var("x"))
                .atom("Trusted", |a| a.var("y"))
                .atom("Trusted", |a| a.var("z"))
                .cmp_vars("x", CmpOp::Ne, "z")
                .build_conjunctive()
                .unwrap(),
        );
        assert_ne!(a.canonical_shape(&cat), c.canonical_shape(&cat));
    }
}
