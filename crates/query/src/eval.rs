//! World-masked query evaluation.
//!
//! Evaluates denial-constraint bodies over one possible world, selected by a
//! [`WorldMask`] — no world is ever materialised. Evaluation is a
//! backtracking join over the positive atoms, ordered greedily by
//! boundness (constants + already-bound variables), probing hash indexes
//! built at prepare time. Comparisons and negated atoms are checked as soon
//! as their variables are ground.
//!
//! Matches are reported *per row combination*, carrying the [`Source`] of
//! each matched row — the transaction provenance the tractable deciders of
//! Theorem 1 need.

use crate::ast::{AggFunc, AggregateQuery, CmpOp, ConjunctiveQuery, Term, Var};
use bcdb_governor::{Budget, ExhaustionReason, UNGOVERNED};
use bcdb_storage::{Database, RowId, Source, Tuple, Value, WorldMask};
use bcdb_telemetry::probes;
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::ops::ControlFlow;

/// Why the backtracking join stopped before exhausting all combinations.
enum EvalBreak {
    /// The visitor returned `Break` (e.g. one match suffices).
    Visitor,
    /// The resource budget ran out mid-evaluation.
    Exhausted(ExhaustionReason),
}

/// One evaluation step: which atom to match next and how to probe it.
#[derive(Clone, Debug)]
struct Step {
    /// Index into `query.positive`.
    atom: usize,
    /// Positions whose value is known at probe time (constants or
    /// previously-bound variables), ascending.
    probe_positions: Vec<usize>,
    /// Index handle on the atom's relation over `probe_positions`.
    index: Option<usize>,
    /// Candidate rows come from the world's *delta* (pending rows active in
    /// the mask) instead of the full masked relation. Used by the seed step
    /// of each semi-naive delta plan.
    delta_only: bool,
    /// Comparisons fully ground after this step (indexes into
    /// `query.comparisons`).
    comparisons_after: Vec<usize>,
    /// Negated atoms fully ground after this step (indexes into
    /// `query.negated`).
    negated_after: Vec<usize>,
}

/// A query compiled against a database: join order fixed, probe indexes
/// built. Reusable across masks — the paper's steady state prepares once
/// per denial constraint and re-checks as the mempool changes.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    query: ConjunctiveQuery,
    steps: Vec<Step>,
    /// One semi-naive plan per positive atom position `j`: atom `j` is
    /// matched first against only the world's delta, the remaining atoms
    /// against the full world. Empty for unseedable queries.
    delta_plans: Vec<Vec<Step>>,
    /// Comparisons with no variables (checked once, before any step).
    pre_comparisons: Vec<usize>,
    /// Negated atoms with no variables.
    pre_negated: Vec<usize>,
}

impl PreparedQuery {
    /// The underlying query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Whether the query can be evaluated incrementally from world deltas.
    ///
    /// True exactly when the query has no negated atoms: positive
    /// conjunctive queries (with comparisons) are monotone in the world, so
    /// when `q(base)` is false, any satisfying assignment in a world `W ⊇
    /// base` must use at least one delta row. Negation breaks monotonicity —
    /// adding delta rows can *kill* an all-base assignment — so negated
    /// queries fall back to full evaluation.
    pub fn seedable(&self) -> bool {
        self.query.negated.is_empty()
    }

    /// Renders the evaluation plan: join order, probe method per step, and
    /// where comparisons/negations are checked. For diagnostics and the
    /// CLI's `explain`.
    pub fn explain(&self, catalog: &bcdb_storage::Catalog) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let q = &self.query;
        if !self.pre_comparisons.is_empty() || !self.pre_negated.is_empty() {
            writeln!(
                out,
                "pre: {} ground comparison(s), {} ground negated atom(s)",
                self.pre_comparisons.len(),
                self.pre_negated.len()
            )
            .unwrap();
        }
        for (i, step) in self.steps.iter().enumerate() {
            let atom = &q.positive[step.atom];
            let schema = catalog.schema(atom.relation);
            let access = if step.probe_positions.is_empty() {
                "scan".to_string()
            } else {
                let attrs: Vec<&str> = step
                    .probe_positions
                    .iter()
                    .map(|&p| schema.attribute(p).map(|(n, _)| n).unwrap_or("?"))
                    .collect();
                format!("index probe on ({})", attrs.join(", "))
            };
            write!(out, "step {i}: {} via {access}", schema.name()).unwrap();
            if !step.comparisons_after.is_empty() {
                write!(
                    out,
                    "; check {} comparison(s)",
                    step.comparisons_after.len()
                )
                .unwrap();
            }
            if !step.negated_after.is_empty() {
                write!(out, "; check {} negated atom(s)", step.negated_after.len()).unwrap();
            }
            out.push('\n');
        }
        out
    }
}

/// Compiles `q` against `db`: chooses a join order and builds the hash
/// indexes the probes need. The query must already be validated.
///
/// Constants are interned through `db` so the evaluator's unify/compare
/// loop can resolve text equality against stored (also interned) rows with
/// a pointer check. For seedable queries (no negation) one semi-naive delta
/// plan per atom position is compiled alongside the main plan, powering
/// [`evaluate_bool_incremental_governed`].
pub fn prepare(db: &mut Database, q: &ConjunctiveQuery) -> PreparedQuery {
    let mut q = q.clone();
    intern_query_constants(db, &mut q);
    let mut steps = build_steps(db, &q, None);
    let (pre_comparisons, pre_negated) = schedule_checks(&q, &mut steps);
    let seedable = q.negated.is_empty();
    let delta_plans = if seedable {
        (0..q.positive.len())
            .map(|seed| {
                let mut plan = build_steps(db, &q, Some(seed));
                schedule_checks(&q, &mut plan);
                plan
            })
            .collect()
    } else {
        Vec::new()
    };
    PreparedQuery {
        query: q,
        steps,
        delta_plans,
        pre_comparisons,
        pre_negated,
    }
}

/// Rewrites every text constant in `q` to the database's canonical
/// allocation, enabling the `Arc::ptr_eq` fast path during unification.
fn intern_query_constants(db: &mut Database, q: &mut ConjunctiveQuery) {
    let intern_term = |db: &mut Database, t: &mut Term| {
        if let Term::Const(c) = t {
            *c = db.intern_value(c.clone());
        }
    };
    for atom in q.positive.iter_mut().chain(q.negated.iter_mut()) {
        for t in &mut atom.terms {
            intern_term(db, t);
        }
    }
    for cmp in &mut q.comparisons {
        intern_term(db, &mut cmp.lhs);
        intern_term(db, &mut cmp.rhs);
    }
}

/// Chooses a join order over the positive atoms and builds probe indexes.
/// With `delta_seed = Some(j)`, atom `j` goes first and draws its
/// candidates from the world's delta (no probe — deltas are small).
fn build_steps(db: &mut Database, q: &ConjunctiveQuery, delta_seed: Option<usize>) -> Vec<Step> {
    let n = q.positive.len();
    let mut chosen = vec![false; n];
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    let mut steps: Vec<Step> = Vec::with_capacity(n);

    if let Some(seed) = delta_seed {
        chosen[seed] = true;
        for v in q.positive[seed].terms.iter().filter_map(|t| t.as_var()) {
            bound.insert(v);
        }
        steps.push(Step {
            atom: seed,
            probe_positions: Vec::new(),
            index: None,
            delta_only: true,
            comparisons_after: Vec::new(),
            negated_after: Vec::new(),
        });
    }

    while steps.len() < n {
        // Greedy: most bound positions; ties -> smaller relation.
        let mut best: Option<(usize, usize, usize)> = None; // (atom, score, rows)
        for (i, atom) in q.positive.iter().enumerate() {
            if chosen[i] {
                continue;
            }
            let score = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            let rows = db.relation(atom.relation).row_count();
            let better = match best {
                None => true,
                Some((_, bs, br)) => score > bs || (score == bs && rows < br),
            };
            if better {
                best = Some((i, score, rows));
            }
        }
        let (i, _, _) = best.expect("an unchosen atom exists");
        chosen[i] = true;
        let atom = &q.positive[i];
        let probe_positions: Vec<usize> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            })
            .map(|(p, _)| p)
            .collect();
        for v in atom.terms.iter().filter_map(|t| t.as_var()) {
            bound.insert(v);
        }
        let index = if probe_positions.is_empty() {
            None
        } else {
            Some(
                db.relation_mut(atom.relation)
                    .ensure_index(&probe_positions),
            )
        };
        steps.push(Step {
            atom: i,
            probe_positions,
            index,
            delta_only: false,
            comparisons_after: Vec::new(),
            negated_after: Vec::new(),
        });
    }
    steps
}

/// Schedules comparisons and negated atoms at the earliest step where all
/// their variables are bound; ground checks go to the returned `pre` lists.
fn schedule_checks(q: &ConjunctiveQuery, steps: &mut [Step]) -> (Vec<usize>, Vec<usize>) {
    let mut bound_after: Vec<FxHashSet<Var>> = Vec::with_capacity(steps.len());
    let mut acc: FxHashSet<Var> = FxHashSet::default();
    for step in steps.iter() {
        for v in q.positive[step.atom]
            .terms
            .iter()
            .filter_map(|t| t.as_var())
        {
            acc.insert(v);
        }
        bound_after.push(acc.clone());
    }
    let vars_of_terms = |terms: &mut dyn Iterator<Item = Var>| -> Vec<Var> { terms.collect() };

    let mut pre_comparisons = Vec::new();
    for (ci, cmp) in q.comparisons.iter().enumerate() {
        let vars = vars_of_terms(&mut [&cmp.lhs, &cmp.rhs].into_iter().filter_map(|t| t.as_var()));
        schedule(ci, &vars, &bound_after, steps, &mut pre_comparisons, true);
    }
    let mut pre_negated = Vec::new();
    for (ni, atom) in q.negated.iter().enumerate() {
        let vars = vars_of_terms(&mut atom.terms.iter().filter_map(|t| t.as_var()));
        schedule(ni, &vars, &bound_after, steps, &mut pre_negated, false);
    }
    (pre_comparisons, pre_negated)
}

fn schedule(
    item: usize,
    vars: &[Var],
    bound_after: &[FxHashSet<Var>],
    steps: &mut [Step],
    pre: &mut Vec<usize>,
    is_comparison: bool,
) {
    if vars.is_empty() {
        pre.push(item);
        return;
    }
    for (si, bound) in bound_after.iter().enumerate() {
        if vars.iter().all(|v| bound.contains(v)) {
            if is_comparison {
                steps[si].comparisons_after.push(item);
            } else {
                steps[si].negated_after.push(item);
            }
            return;
        }
    }
    // Safety validation guarantees this is unreachable for valid queries.
    unreachable!("variable not bound by any step");
}

/// A satisfying row combination.
pub struct Match<'a> {
    /// Value of each variable (indexed by [`Var`]).
    pub assignment: &'a [Value],
    /// Source of the row matched by each positive atom, in atom order.
    pub sources: &'a [Source],
    /// Row id matched by each positive atom, in atom order.
    pub rows: &'a [RowId],
}

/// Evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Check negated atoms against the mask (default). The tractable
    /// deciders disable this and reason about negation themselves.
    pub check_negated: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            check_negated: true,
        }
    }
}

/// Enumerates every matching row combination of the prepared query in the
/// world `mask`, invoking `cb` per match. Returns `true` if enumeration ran
/// to completion (`cb` never broke).
///
/// The same variable assignment may be reported multiple times if distinct
/// row combinations produce it (e.g. the same tuple stored for both `R` and
/// a pending transaction); aggregate evaluation deduplicates downstream.
pub fn for_each_match(
    db: &Database,
    pq: &PreparedQuery,
    mask: &WorldMask,
    opts: EvalOptions,
    cb: impl FnMut(&Match<'_>) -> ControlFlow<()>,
) -> bool {
    // The static unlimited budget never exhausts (and nothing cancels it).
    for_each_match_governed(db, pq, mask, opts, &UNGOVERNED, cb)
        .expect("unlimited budget cannot exhaust")
}

/// Budget-aware variant of [`for_each_match`]: charges the budget one tuple
/// per candidate row examined by the backtracking join. Returns `Ok(true)`
/// if enumeration ran to completion, `Ok(false)` if the visitor broke, and
/// `Err(reason)` on exhaustion — matches already reported remain valid.
pub fn for_each_match_governed(
    db: &Database,
    pq: &PreparedQuery,
    mask: &WorldMask,
    opts: EvalOptions,
    budget: &Budget,
    mut cb: impl FnMut(&Match<'_>) -> ControlFlow<()>,
) -> Result<bool, ExhaustionReason> {
    match_steps(db, pq, &pq.steps, mask, opts, budget, &mut cb)
}

/// Runs the pre-checks and the backtracking join over one step plan (the
/// main plan or a delta plan). Same contract as
/// [`for_each_match_governed`].
fn match_steps(
    db: &Database,
    pq: &PreparedQuery,
    steps: &[Step],
    mask: &WorldMask,
    opts: EvalOptions,
    budget: &Budget,
    cb: &mut impl FnMut(&Match<'_>) -> ControlFlow<()>,
) -> Result<bool, ExhaustionReason> {
    let q = &pq.query;
    // Pre-checks with no variables.
    let empty: Vec<Value> = Vec::new();
    for &ci in &pq.pre_comparisons {
        if !eval_comparison(&q.comparisons[ci], &empty) {
            return Ok(true);
        }
    }
    if opts.check_negated {
        for &ni in &pq.pre_negated {
            let atom = &q.negated[ni];
            let t: Tuple = atom
                .terms
                .iter()
                .map(|t| t.as_const().expect("ground").clone())
                .collect();
            if db.relation(atom.relation).contains(&t, mask) {
                return Ok(true);
            }
        }
    }
    let mut binding: Vec<Option<&Value>> = vec![None; q.var_count()];
    let mut sources: Vec<Source> = vec![Source::Base; q.positive.len()];
    let mut rows: Vec<RowId> = vec![RowId(0); q.positive.len()];
    let mut assignment: Vec<Value> = Vec::new();
    match recurse(
        db,
        pq,
        steps,
        mask,
        opts,
        budget,
        0,
        &mut binding,
        &mut sources,
        &mut rows,
        &mut assignment,
        cb,
    ) {
        ControlFlow::Continue(()) => Ok(true),
        ControlFlow::Break(EvalBreak::Visitor) => Ok(false),
        ControlFlow::Break(EvalBreak::Exhausted(reason)) => Err(reason),
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse<'a>(
    db: &'a Database,
    pq: &'a PreparedQuery,
    steps: &'a [Step],
    mask: &'a WorldMask,
    opts: EvalOptions,
    budget: &Budget,
    depth: usize,
    binding: &mut Vec<Option<&'a Value>>,
    sources: &mut Vec<Source>,
    rows: &mut Vec<RowId>,
    assignment: &mut Vec<Value>,
    cb: &mut impl FnMut(&Match<'_>) -> ControlFlow<()>,
) -> ControlFlow<EvalBreak> {
    let q = &pq.query;
    if depth == steps.len() {
        // Values are cloned once per reported match, not per candidate row.
        assignment.clear();
        assignment.extend(binding.iter().map(|v| v.expect("all vars bound").clone()));
        return match cb(&Match {
            assignment,
            sources,
            rows,
        }) {
            ControlFlow::Continue(()) => ControlFlow::Continue(()),
            ControlFlow::Break(()) => ControlFlow::Break(EvalBreak::Visitor),
        };
    }
    let step = &steps[depth];
    let atom = &q.positive[step.atom];
    let store = db.relation(atom.relation);

    // Assemble the probe key from constants and bound variables.
    let probe_key: Option<SmallVec<[Value; 4]>> = step.index.map(|_| {
        step.probe_positions
            .iter()
            .map(|&p| match &atom.terms[p] {
                Term::Const(c) => c.clone(),
                Term::Var(v) => binding[v.index()].expect("bound at plan time").clone(),
            })
            .collect()
    });

    let candidates: Box<dyn Iterator<Item = (RowId, &bcdb_storage::Row)>> =
        match (step.index, &probe_key, step.delta_only) {
            (_, _, true) => Box::new(store.scan_delta(mask)),
            (Some(idx), Some(key), false) => Box::new(store.lookup(idx, key, mask)),
            _ => Box::new(store.scan(mask)),
        };

    'cand: for (row_id, row) in candidates {
        if let Err(reason) = budget.charge_tuples(1) {
            return ControlFlow::Break(EvalBreak::Exhausted(reason));
        }
        probes::QUERY_TUPLES_SCANNED.incr();
        // Unify the atom against the row, binding fresh variables by
        // reference — no Value clones on this innermost loop.
        let mut newly_bound: SmallVec<[Var; 8]> = SmallVec::new();
        for (p, term) in atom.terms.iter().enumerate() {
            let rv = &row.tuple[p];
            match term {
                Term::Const(c) => {
                    if c != rv {
                        unbind(binding, &newly_bound);
                        continue 'cand;
                    }
                }
                Term::Var(v) => match binding[v.index()] {
                    Some(b) => {
                        if b != rv {
                            unbind(binding, &newly_bound);
                            continue 'cand;
                        }
                    }
                    None => {
                        binding[v.index()] = Some(rv);
                        newly_bound.push(*v);
                    }
                },
            }
        }
        // Ground checks now available.
        let mut ok = true;
        for &ci in &step.comparisons_after {
            if !eval_comparison_b(&q.comparisons[ci], binding) {
                probes::QUERY_CMP_SHORT_CIRCUITS.incr();
                ok = false;
                break;
            }
        }
        if ok && opts.check_negated {
            for &ni in &step.negated_after {
                let natom = &q.negated[ni];
                let t: Tuple = natom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => c.clone(),
                        Term::Var(v) => binding[v.index()].expect("scheduled when bound").clone(),
                    })
                    .collect();
                if db.relation(natom.relation).contains(&t, mask) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            sources[step.atom] = row.source;
            rows[step.atom] = row_id;
            if let ControlFlow::Break(why) = recurse(
                db,
                pq,
                steps,
                mask,
                opts,
                budget,
                depth + 1,
                binding,
                sources,
                rows,
                assignment,
                cb,
            ) {
                unbind(binding, &newly_bound);
                return ControlFlow::Break(why);
            }
        }
        unbind(binding, &newly_bound);
    }
    ControlFlow::Continue(())
}

fn unbind(binding: &mut [Option<&Value>], vars: &[Var]) {
    for v in vars {
        binding[v.index()] = None;
    }
}

fn term_value<'a>(t: &'a Term, assignment: &'a [Value]) -> &'a Value {
    match t {
        Term::Const(c) => c,
        Term::Var(v) => &assignment[v.index()],
    }
}

fn eval_comparison(cmp: &crate::ast::Comparison, assignment: &[Value]) -> bool {
    let a = term_value(&cmp.lhs, assignment);
    let b = term_value(&cmp.rhs, assignment);
    cmp.op.eval(a, b).unwrap_or(false)
}

fn eval_comparison_b(cmp: &crate::ast::Comparison, binding: &[Option<&Value>]) -> bool {
    // Borrows both sides — the previous version cloned two Values per
    // candidate row on the innermost loop.
    fn get<'b>(t: &'b Term, binding: &[Option<&'b Value>]) -> &'b Value {
        match t {
            Term::Const(c) => c,
            Term::Var(v) => binding[v.index()].expect("scheduled when bound"),
        }
    }
    cmp.op
        .eval(get(&cmp.lhs, binding), get(&cmp.rhs, binding))
        .unwrap_or(false)
}

/// Whether the query has at least one satisfying assignment in the world
/// `mask` (the Boolean semantics of §5).
pub fn evaluate_bool(db: &Database, pq: &PreparedQuery, mask: &WorldMask) -> bool {
    probes::QUERY_WORLDS_EVALUATED.incr();
    probes::QUERY_COLD_EVALS.incr();
    !for_each_match(db, pq, mask, EvalOptions::default(), |_| {
        ControlFlow::Break(())
    })
}

/// Budget-aware variant of [`evaluate_bool`].
///
/// `Ok(true)` means a satisfying assignment was found (definite even under
/// a partial evaluation); `Ok(false)` means the full space was searched and
/// none exists; `Err(reason)` means the budget ran out before either could
/// be established.
pub fn evaluate_bool_governed(
    db: &Database,
    pq: &PreparedQuery,
    mask: &WorldMask,
    budget: &Budget,
) -> Result<bool, ExhaustionReason> {
    probes::QUERY_WORLDS_EVALUATED.incr();
    probes::QUERY_COLD_EVALS.incr();
    for_each_match_governed(db, pq, mask, EvalOptions::default(), budget, |_| {
        ControlFlow::Break(())
    })
    .map(|completed| !completed)
}

/// Delta-seeded existence check: whether the query has a satisfying
/// assignment *using at least one delta row* in the world `mask`.
///
/// Runs one semi-naive pass per atom position — atom `j` matched against
/// only the delta, the rest against the full world — and ORs the results
/// with early exit. **Only sound as a full answer when combined with a
/// cached `q(base) = false`** (see [`evaluate_bool_incremental_governed`]):
/// for seedable (negation-free, hence monotone) queries, every assignment
/// absent from the base world touches ≥ 1 delta row at some position.
///
/// Panics if the query is not [`seedable`](PreparedQuery::seedable).
pub fn evaluate_bool_delta_governed(
    db: &Database,
    pq: &PreparedQuery,
    mask: &WorldMask,
    budget: &Budget,
) -> Result<bool, ExhaustionReason> {
    assert!(pq.seedable(), "delta seeding requires a negation-free query");
    probes::QUERY_WORLDS_EVALUATED.incr();
    probes::QUERY_DELTA_SEEDED_EVALS.incr();
    for plan in &pq.delta_plans {
        let completed = match_steps(
            db,
            pq,
            plan,
            mask,
            EvalOptions::default(),
            budget,
            &mut |_| ControlFlow::Break(()),
        )?;
        if !completed {
            return Ok(true); // a match broke the enumeration
        }
    }
    // A query with no positive atoms has no delta plans: its truth value is
    // mask-independent, so with q(base) = false it is false here too.
    Ok(false)
}

/// Whether the query holds in the world `mask`, reusing the cached
/// base-world verdict `base_holds`.
///
/// For seedable queries this is the incremental fast path: `base_holds`
/// answers immediately when true (monotonicity), and otherwise only the
/// delta-seeded passes run — never a full re-scan of the base relations.
/// Negation-bearing queries fall back to full evaluation, where adding
/// delta rows can both create and destroy satisfying assignments.
pub fn evaluate_bool_incremental_governed(
    db: &Database,
    pq: &PreparedQuery,
    mask: &WorldMask,
    base_holds: bool,
    budget: &Budget,
) -> Result<bool, ExhaustionReason> {
    if !pq.seedable() {
        return evaluate_bool_governed(db, pq, mask, budget);
    }
    if base_holds {
        return Ok(true);
    }
    evaluate_bool_delta_governed(db, pq, mask, budget)
}

/// An aggregate query compiled against a database.
#[derive(Clone, Debug)]
pub struct PreparedAggregate {
    body: PreparedQuery,
    func: AggFunc,
    args: Vec<Var>,
    op: CmpOp,
    threshold: Value,
}

impl PreparedAggregate {
    /// The prepared body.
    pub fn body(&self) -> &PreparedQuery {
        &self.body
    }
}

/// Compiles an aggregate query.
pub fn prepare_aggregate(db: &mut Database, agg: &AggregateQuery) -> PreparedAggregate {
    PreparedAggregate {
        body: prepare(db, &agg.body),
        func: agg.func,
        args: agg.args.clone(),
        op: agg.op,
        threshold: agg.threshold.clone(),
    }
}

/// The aggregate's value `α(B)` over the world `mask`; `None` when the bag
/// `B` is empty.
///
/// `H` is the *set* of satisfying variable assignments (duplicate row
/// combinations collapse), and `B = {{ h(x̄) | h ∈ H }}` is a bag — two
/// distinct assignments projecting to the same value contribute twice to
/// `count`/`sum` but once to `cntd`.
pub fn aggregate_value(db: &Database, pa: &PreparedAggregate, mask: &WorldMask) -> Option<Value> {
    aggregate_value_governed(db, pa, mask, &UNGOVERNED).expect("unlimited budget cannot exhaust")
}

/// Budget-aware variant of [`aggregate_value`]. Aggregates require the
/// complete match set, so exhaustion mid-enumeration yields `Err` rather
/// than an aggregate over a partial bag (which would be unsound in both
/// directions).
pub fn aggregate_value_governed(
    db: &Database,
    pa: &PreparedAggregate,
    mask: &WorldMask,
    budget: &Budget,
) -> Result<Option<Value>, ExhaustionReason> {
    probes::QUERY_WORLDS_EVALUATED.incr();
    probes::QUERY_COLD_EVALS.incr();
    let mut assignments: FxHashSet<Vec<Value>> = FxHashSet::default();
    for_each_match_governed(db, &pa.body, mask, EvalOptions::default(), budget, |m| {
        assignments.insert(m.assignment.to_vec());
        ControlFlow::Continue(())
    })?;
    if assignments.is_empty() {
        return Ok(None);
    }
    let project = |h: &Vec<Value>| -> SmallVec<[Value; 2]> {
        pa.args.iter().map(|v| h[v.index()].clone()).collect()
    };
    Ok(Some(match pa.func {
        AggFunc::Count => Value::Int(assignments.len() as i64),
        AggFunc::CountDistinct => {
            let distinct: FxHashSet<SmallVec<[Value; 2]>> =
                assignments.iter().map(project).collect();
            Value::Int(distinct.len() as i64)
        }
        AggFunc::Sum => {
            let mut total: i64 = 0;
            for h in &assignments {
                let p = project(h);
                total = total.saturating_add(p[0].as_int().expect("validated as int"));
            }
            Value::Int(total)
        }
        AggFunc::Max | AggFunc::Min => {
            let mut best: Option<Value> = None;
            for h in &assignments {
                let v = project(h)[0].clone();
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match v.partial_cmp_same_type(&b) {
                            Some(ord) => {
                                if pa.func == AggFunc::Max {
                                    ord.is_gt()
                                } else {
                                    ord.is_lt()
                                }
                            }
                            None => false,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.expect("nonempty")
        }
    }))
}

/// Whether `[α(B) θ c]` holds in the world `mask`. The empty bag evaluates
/// to `false` (the paper's SQL-like choice).
pub fn evaluate_aggregate(db: &Database, pa: &PreparedAggregate, mask: &WorldMask) -> bool {
    match aggregate_value(db, pa, mask) {
        None => false,
        Some(v) => pa.op.eval(&v, &pa.threshold).unwrap_or(false),
    }
}

/// Budget-aware variant of [`evaluate_aggregate`].
pub fn evaluate_aggregate_governed(
    db: &Database,
    pa: &PreparedAggregate,
    mask: &WorldMask,
    budget: &Budget,
) -> Result<bool, ExhaustionReason> {
    Ok(match aggregate_value_governed(db, pa, mask, budget)? {
        None => false,
        Some(v) => pa.op.eval(&v, &pa.threshold).unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use bcdb_storage::{Catalog, RelationSchema, TxId, ValueType};

    /// Edge(from, to) over base + two pending transactions; Label(node).
    fn setup() -> Database {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Edge", [("src", ValueType::Text), ("dst", ValueType::Text)])
                .unwrap(),
        )
        .unwrap();
        cat.add(RelationSchema::new("Label", [("node", ValueType::Text)]).unwrap())
            .unwrap();
        let mut db = Database::new(cat);
        let edge = db.catalog().resolve("Edge").unwrap();
        let label = db.catalog().resolve("Label").unwrap();
        for (s, d) in [("a", "b"), ("b", "c")] {
            db.insert_base(edge, bcdb_storage::tuple![s, d]).unwrap();
        }
        // T0 adds c->d; T1 adds d->a and Label(d).
        db.insert(
            edge,
            bcdb_storage::tuple!["c", "d"],
            Source::Pending(TxId(0)),
        )
        .unwrap();
        db.insert(
            edge,
            bcdb_storage::tuple!["d", "a"],
            Source::Pending(TxId(1)),
        )
        .unwrap();
        db.insert(label, bcdb_storage::tuple!["d"], Source::Pending(TxId(1)))
            .unwrap();
        db.insert_base(label, bcdb_storage::tuple!["a"]).unwrap();
        db
    }

    fn path2(db: &Database) -> ConjunctiveQuery {
        QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .atom("Edge", |a| a.var("y").var("z"))
            .build_conjunctive()
            .unwrap()
    }

    #[test]
    fn bool_eval_respects_mask() {
        let mut db = setup();
        // Path of length 2 ending in d exists only with T0.
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .atom("Edge", |a| a.var("y").constant("d"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        assert!(!evaluate_bool(&db, &pq, &db.base_mask()));
        assert!(evaluate_bool(&db, &pq, &db.mask_of([TxId(0)])));
        assert!(!evaluate_bool(&db, &pq, &db.mask_of([TxId(1)])));
    }

    #[test]
    fn join_enumerates_all_matches_with_sources() {
        let mut db = setup();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        let mut matches = Vec::new();
        for_each_match(&db, &pq, &db.all_mask(), EvalOptions::default(), |m| {
            matches.push((m.assignment.to_vec(), m.sources.to_vec()));
            ControlFlow::Continue(())
        });
        // Paths: a-b-c (base), b-c-d (base+T0), c-d-a (T0+T1), d-a-b (T1+base).
        assert_eq!(matches.len(), 4);
        let cda = matches
            .iter()
            .find(|(a, _)| {
                a.contains(&Value::text("c"))
                    && a.contains(&Value::text("d"))
                    && a.contains(&Value::text("a"))
            })
            .filter(|(_, s)| {
                s.contains(&Source::Pending(TxId(0))) && s.contains(&Source::Pending(TxId(1)))
            });
        assert!(cda.is_some(), "{matches:?}");
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = setup();
        let edge = db.catalog().resolve("Edge").unwrap();
        db.insert_base(edge, bcdb_storage::tuple!["z", "z"])
            .unwrap();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("x"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        let mut count = 0;
        for_each_match(&db, &pq, &db.base_mask(), EvalOptions::default(), |m| {
            assert_eq!(m.assignment[0], Value::text("z"));
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn comparisons_filter() {
        let mut db = setup();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .cmp_vars("x", CmpOp::Lt, "y")
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        let mut seen = Vec::new();
        for_each_match(&db, &pq, &db.base_mask(), EvalOptions::default(), |m| {
            seen.push(m.assignment.to_vec());
            ControlFlow::Continue(())
        });
        // a<b and b<c hold.
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn negated_atom_checked_against_mask() {
        let mut db = setup();
        // Edge(x,y) with ¬Label(y): in base, edges a->b (Label b? no) and
        // b->c (no label) qualify; in T1's world, Label(d) exists, so c->d
        // would be excluded if T0, T1 both active.
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .not_atom("Label", |a| a.var("y"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        let both = db.mask_of([TxId(0), TxId(1)]);
        let mut seen = Vec::new();
        for_each_match(&db, &pq, &both, EvalOptions::default(), |m| {
            seen.push(m.assignment[1].clone());
            ControlFlow::Continue(())
        });
        // Edges: a->b, b->c, c->d, d->a. Labels active: a (base), d (T1).
        // Excluded: c->d (Label d), d->a (Label a). Remaining: a->b, b->c.
        assert_eq!(seen.len(), 2);
        assert!(!seen.contains(&Value::text("d")));
        assert!(!seen.contains(&Value::text("a")));
        // Disabling negation checks re-admits them.
        let mut all = 0;
        for_each_match(
            &db,
            &pq,
            &both,
            EvalOptions {
                check_negated: false,
            },
            |_| {
                all += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(all, 4);
    }

    #[test]
    fn no_positive_atoms_ground_checks_only() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("Flag", [("v", ValueType::Int)]).unwrap())
            .unwrap();
        let mut db = Database::new(cat);
        let flag = db.catalog().resolve("Flag").unwrap();
        db.insert_base(flag, bcdb_storage::tuple![1i64]).unwrap();
        // q() <- !Flag(2): true while Flag(2) absent.
        let q = QueryBuilder::new(db.catalog())
            .not_atom("Flag", |a| a.constant(2i64))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        assert!(evaluate_bool(&db, &pq, &db.base_mask()));
        db.insert_base(flag, bcdb_storage::tuple![2i64]).unwrap();
        let pq = prepare(&mut db, &q);
        assert!(!evaluate_bool(&db, &pq, &db.base_mask()));
    }

    #[test]
    fn aggregate_count_and_sum() {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Pay", [("to", ValueType::Text), ("amt", ValueType::Int)]).unwrap(),
        )
        .unwrap();
        let mut db = Database::new(cat);
        let pay = db.catalog().resolve("Pay").unwrap();
        db.insert_base(pay, bcdb_storage::tuple!["bob", 3i64])
            .unwrap();
        db.insert_base(pay, bcdb_storage::tuple!["bob", 4i64])
            .unwrap();
        db.insert(
            pay,
            bcdb_storage::tuple!["bob", 5i64],
            Source::Pending(TxId(0)),
        )
        .unwrap();

        let sum = QueryBuilder::new(db.catalog())
            .atom("Pay", |a| a.constant("bob").var("amt"))
            .build_aggregate(AggFunc::Sum, &["amt"], CmpOp::Gt, 5i64)
            .unwrap();
        let pa = prepare_aggregate(&mut db, &sum);
        assert_eq!(
            aggregate_value(&db, &pa, &db.base_mask()),
            Some(Value::Int(7))
        );
        assert!(evaluate_aggregate(&db, &pa, &db.base_mask())); // 7 > 5
        assert_eq!(
            aggregate_value(&db, &pa, &db.all_mask()),
            Some(Value::Int(12))
        );

        let count = QueryBuilder::new(db.catalog())
            .atom("Pay", |a| a.constant("bob").var("amt"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Ge, 3i64)
            .unwrap();
        let pc = prepare_aggregate(&mut db, &count);
        assert!(!evaluate_aggregate(&db, &pc, &db.base_mask())); // 2 ≥ 3 false
        assert!(evaluate_aggregate(&db, &pc, &db.all_mask())); // 3 ≥ 3
    }

    #[test]
    fn aggregate_cntd_vs_count() {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new(
                "Pay",
                [
                    ("id", ValueType::Int),
                    ("to", ValueType::Text),
                    ("amt", ValueType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(cat);
        let pay = db.catalog().resolve("Pay").unwrap();
        // Two payments to bob with same amount: count 2, cntd(amt) 1.
        db.insert_base(pay, bcdb_storage::tuple![1i64, "bob", 5i64])
            .unwrap();
        db.insert_base(pay, bcdb_storage::tuple![2i64, "bob", 5i64])
            .unwrap();

        let count = QueryBuilder::new(db.catalog())
            .atom("Pay", |a| a.var("id").constant("bob").var("amt"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Eq, 2i64)
            .unwrap();
        let cntd = QueryBuilder::new(db.catalog())
            .atom("Pay", |a| a.var("id").constant("bob").var("amt"))
            .build_aggregate(AggFunc::CountDistinct, &["amt"], CmpOp::Eq, 1i64)
            .unwrap();
        let pc = prepare_aggregate(&mut db, &count);
        let pd = prepare_aggregate(&mut db, &cntd);
        assert!(evaluate_aggregate(&db, &pc, &db.base_mask()));
        assert!(evaluate_aggregate(&db, &pd, &db.base_mask()));
    }

    #[test]
    fn aggregate_max_min() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("V", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut db = Database::new(cat);
        let v = db.catalog().resolve("V").unwrap();
        for x in [3i64, 9, 1] {
            db.insert_base(v, bcdb_storage::tuple![x]).unwrap();
        }
        let mx = QueryBuilder::new(db.catalog())
            .atom("V", |a| a.var("x"))
            .build_aggregate(AggFunc::Max, &["x"], CmpOp::Eq, 9i64)
            .unwrap();
        let mn = QueryBuilder::new(db.catalog())
            .atom("V", |a| a.var("x"))
            .build_aggregate(AggFunc::Min, &["x"], CmpOp::Eq, 1i64)
            .unwrap();
        let pmx = prepare_aggregate(&mut db, &mx);
        let pmn = prepare_aggregate(&mut db, &mn);
        assert!(evaluate_aggregate(&db, &pmx, &db.base_mask()));
        assert!(evaluate_aggregate(&db, &pmn, &db.base_mask()));
    }

    #[test]
    fn empty_bag_is_false() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("V", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut db = Database::new(cat);
        let agg = QueryBuilder::new(db.catalog())
            .atom("V", |a| a.var("x"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Lt, 100i64)
            .unwrap();
        let pa = prepare_aggregate(&mut db, &agg);
        // count over empty H would be 0 < 100, but the paper defines the
        // empty bag as false.
        assert!(!evaluate_aggregate(&db, &pa, &db.base_mask()));
        assert_eq!(aggregate_value(&db, &pa, &db.base_mask()), None);
    }

    #[test]
    fn duplicate_rows_across_sources_dedupe_in_aggregates() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("V", [("x", ValueType::Int)]).unwrap())
            .unwrap();
        let mut db = Database::new(cat);
        let v = db.catalog().resolve("V").unwrap();
        db.insert_base(v, bcdb_storage::tuple![5i64]).unwrap();
        db.insert(v, bcdb_storage::tuple![5i64], Source::Pending(TxId(0)))
            .unwrap();
        let agg = QueryBuilder::new(db.catalog())
            .atom("V", |a| a.var("x"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Eq, 1i64)
            .unwrap();
        let pa = prepare_aggregate(&mut db, &agg);
        // Both copies active, but H is a set of assignments: count = 1.
        assert!(evaluate_aggregate(&db, &pa, &db.all_mask()));
    }

    #[test]
    fn tuple_budget_stops_evaluation() {
        use bcdb_governor::BudgetSpec;
        let mut db = setup();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        // One examined row is not enough to complete any 2-atom match.
        let budget = BudgetSpec {
            max_tuples: Some(1),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        assert_eq!(
            evaluate_bool_governed(&db, &pq, &db.all_mask(), &budget),
            Err(ExhaustionReason::TupleLimit(1))
        );
        // An unlimited budget reproduces the ungoverned answer.
        let unlimited = Budget::unlimited();
        assert_eq!(
            evaluate_bool_governed(&db, &pq, &db.all_mask(), &unlimited),
            Ok(evaluate_bool(&db, &pq, &db.all_mask()))
        );
    }

    #[test]
    fn definite_true_can_precede_exhaustion() {
        use bcdb_governor::BudgetSpec;
        let mut db = setup();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        // Two rows suffice for the first match: a found assignment is
        // definite even though the budget would exhaust soon after.
        let budget = BudgetSpec {
            max_tuples: Some(2),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        assert_eq!(
            evaluate_bool_governed(&db, &pq, &db.all_mask(), &budget),
            Ok(true)
        );
    }

    #[test]
    fn aggregate_exhaustion_is_an_error_not_a_partial_value() {
        use bcdb_governor::BudgetSpec;
        let mut db = setup();
        let agg = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .build_aggregate(AggFunc::Count, &[], CmpOp::Ge, 1i64)
            .unwrap();
        let pa = prepare_aggregate(&mut db, &agg);
        let budget = BudgetSpec {
            max_tuples: Some(2),
            ..BudgetSpec::UNLIMITED
        }
        .start();
        // 4 active edges > 2 tuples: the bag is incomplete, so no value.
        assert_eq!(
            aggregate_value_governed(&db, &pa, &db.all_mask(), &budget),
            Err(ExhaustionReason::TupleLimit(2))
        );
        let unlimited = Budget::unlimited();
        assert_eq!(
            aggregate_value_governed(&db, &pa, &db.all_mask(), &unlimited),
            Ok(Some(Value::Int(4)))
        );
    }

    #[test]
    fn cancelled_budget_stops_evaluation() {
        let mut db = setup();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        let budget = bcdb_governor::BudgetSpec::UNLIMITED.start();
        budget.cancel();
        assert_eq!(
            evaluate_bool_governed(&db, &pq, &db.all_mask(), &budget),
            Err(ExhaustionReason::Cancelled)
        );
    }

    #[test]
    fn explain_renders_plan() {
        let mut db = setup();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .atom("Edge", |a| a.var("y").constant("c"))
            .not_atom("Label", |a| a.var("x"))
            .cmp_vars("x", CmpOp::Ne, "y")
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        let plan = pq.explain(db.catalog());
        assert!(
            plan.contains("step 0: Edge via index probe on (dst)"),
            "{plan}"
        );
        assert!(plan.contains("step 1: Edge via index probe on"), "{plan}");
        assert!(plan.contains("comparison"), "{plan}");
        assert!(plan.contains("negated"), "{plan}");
    }

    #[test]
    fn delta_eval_agrees_with_full_eval_across_masks() {
        let mut db = setup();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        assert!(pq.seedable());
        let base_holds = evaluate_bool(&db, &pq, &db.base_mask());
        let masks = [
            db.base_mask(),
            db.mask_of([TxId(0)]),
            db.mask_of([TxId(1)]),
            db.mask_of([TxId(0), TxId(1)]),
        ];
        for mask in &masks {
            let full = evaluate_bool(&db, &pq, mask);
            let inc =
                evaluate_bool_incremental_governed(&db, &pq, mask, base_holds, &UNGOVERNED)
                    .unwrap();
            assert_eq!(inc, full, "mask {mask:?}");
        }
    }

    #[test]
    fn delta_eval_finds_matches_seeded_at_any_atom_position() {
        // A path a->b->c where the base holds only a->b; the pending tx
        // supplies b->c, so the match's delta row sits at the *second* atom
        // in text order. Both seed positions must be tried.
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Edge", [("src", ValueType::Text), ("dst", ValueType::Text)])
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(cat);
        let edge = db.catalog().resolve("Edge").unwrap();
        db.insert_base(edge, bcdb_storage::tuple!["a", "b"]).unwrap();
        db.insert(
            edge,
            bcdb_storage::tuple!["b", "c"],
            Source::Pending(TxId(0)),
        )
        .unwrap();
        let q = path2(&db);
        let pq = prepare(&mut db, &q);
        assert!(!evaluate_bool(&db, &pq, &db.base_mask()));
        let w = db.mask_of([TxId(0)]);
        assert!(evaluate_bool_delta_governed(&db, &pq, &w, &UNGOVERNED).unwrap());
        // Empty delta: no match can be new.
        assert!(!evaluate_bool_delta_governed(&db, &pq, &db.base_mask(), &UNGOVERNED).unwrap());
    }

    #[test]
    fn delta_eval_charges_fewer_tuples_than_full_eval() {
        use bcdb_governor::BudgetSpec;
        // Large base, one-tuple delta that completes no match: full eval
        // must scan the base, delta eval only touches the delta plus probes.
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("Edge", [("src", ValueType::Int), ("dst", ValueType::Int)])
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(cat);
        let edge = db.catalog().resolve("Edge").unwrap();
        for i in 0..200i64 {
            // Inert base rows: no two chain (dst never equals any src).
            db.insert_base(edge, bcdb_storage::tuple![2 * i, -2 * i - 1])
                .unwrap();
        }
        db.insert(
            edge,
            bcdb_storage::tuple![100_000i64, 100_001i64],
            Source::Pending(TxId(0)),
        )
        .unwrap();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .atom("Edge", |a| a.var("y").var("z"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        let w = db.mask_of([TxId(0)]);

        let full_budget = BudgetSpec::UNLIMITED.start();
        assert!(!evaluate_bool_governed(&db, &pq, &w, &full_budget).unwrap());
        let delta_budget = BudgetSpec::UNLIMITED.start();
        assert!(!evaluate_bool_delta_governed(&db, &pq, &w, &delta_budget).unwrap());
        assert!(
            delta_budget.tuples_used() * 10 <= full_budget.tuples_used(),
            "delta pass should charge far fewer tuples: {} vs {}",
            delta_budget.tuples_used(),
            full_budget.tuples_used()
        );
    }

    #[test]
    fn negated_queries_are_not_seedable_and_fall_back() {
        let mut db = setup();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .not_atom("Label", |a| a.var("y"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        assert!(!pq.seedable());
        // The incremental wrapper must still produce the full-eval answer,
        // whatever base verdict is passed in.
        for mask in [db.base_mask(), db.mask_of([TxId(0), TxId(1)])] {
            let full = evaluate_bool(&db, &pq, &mask);
            for base_holds in [false, true] {
                let inc = evaluate_bool_incremental_governed(
                    &db, &pq, &mask, base_holds, &UNGOVERNED,
                )
                .unwrap();
                assert_eq!(inc, full);
            }
        }
    }

    #[test]
    fn planner_prefers_constant_bound_atoms() {
        let mut db = setup();
        let q = QueryBuilder::new(db.catalog())
            .atom("Edge", |a| a.var("x").var("y"))
            .atom("Edge", |a| a.var("y").constant("c"))
            .build_conjunctive()
            .unwrap();
        let pq = prepare(&mut db, &q);
        // The constant-bearing atom (index 1) should be evaluated first.
        assert_eq!(pq.steps[0].atom, 1);
        // And the second step probes on its bound variable.
        assert_eq!(pq.steps[1].atom, 0);
        assert!(!pq.steps[1].probe_positions.is_empty());
        assert!(pq.steps[1].index.is_some());
    }
}
