//! Parser ↔ pretty-printer round-trip: for any constraint the parser
//! accepts, `parse(display(parse(text)))` equals `parse(text)`, and the
//! printed form is a fixpoint of printing. Randomized coverage spans
//! conjunctive and aggregate constraints, negation, text constants, and
//! all six θ comparators; a deterministic sweep pins every
//! (aggregate function × comparator) pair.

use bcdb_query::parse_denial_constraint;
use bcdb_storage::{Catalog, RelationSchema, ValueType};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "R",
            [
                ("a", ValueType::Int),
                ("t", ValueType::Text),
                ("b", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    cat
}

const INT_VARS: [&str; 4] = ["x", "y", "z", "w"];
const TEXT_VARS: [&str; 2] = ["u", "v"];
const TEXT_CONSTS: [&str; 3] = ["P1", "P2", "P3"];
const OPS: [&str; 6] = ["=", "!=", "<", ">", "<=", ">="];

/// A random, valid-by-construction denial constraint over R(a, t, b) / S(x):
/// positive atoms bind variables (typed by position), negated atoms and
/// comparisons use only bound variables or constants, and aggregate
/// thresholds match the aggregate's result type.
fn gen_constraint(seed: u64) -> String {
    let mut g = TestRng::new(seed);
    let mut int_bound: Vec<&str> = Vec::new();
    let mut text_bound: Vec<&str> = Vec::new();
    let mut parts: Vec<String> = Vec::new();

    let n_atoms = 1 + g.below(2) as usize;
    for _ in 0..n_atoms {
        let int_term = |g: &mut TestRng, bound: &mut Vec<&str>| -> String {
            if g.below(10) < 7 {
                let v = INT_VARS[g.below(INT_VARS.len() as u64) as usize];
                if !bound.contains(&v) {
                    bound.push(v);
                }
                v.to_string()
            } else {
                g.below(5).to_string()
            }
        };
        if g.below(3) == 0 {
            let a = int_term(&mut g, &mut int_bound);
            parts.push(format!("S({a})"));
        } else {
            let a = int_term(&mut g, &mut int_bound);
            let b = int_term(&mut g, &mut int_bound);
            let t = if g.below(2) == 0 {
                let v = TEXT_VARS[g.below(TEXT_VARS.len() as u64) as usize];
                if !text_bound.contains(&v) {
                    text_bound.push(v);
                }
                v.to_string()
            } else {
                format!("'{}'", TEXT_CONSTS[g.below(3) as usize])
            };
            parts.push(format!("R({a}, {t}, {b})"));
        }
    }
    let aggregate = g.below(3) == 0;

    let guarded_int = |g: &mut TestRng, bound: &[&str]| -> String {
        if !bound.is_empty() && g.below(10) < 6 {
            bound[g.below(bound.len() as u64) as usize].to_string()
        } else {
            g.below(5).to_string()
        }
    };

    // Negated atoms only in boolean constraints (aggregate bodies stay
    // positive, matching the paper's aggregate fragment).
    if !aggregate && g.below(4) == 0 {
        if g.below(2) == 0 || text_bound.is_empty() {
            let a = guarded_int(&mut g, &int_bound);
            parts.push(format!("!S({a})"));
        } else {
            let a = guarded_int(&mut g, &int_bound);
            let b = guarded_int(&mut g, &int_bound);
            let t = text_bound[g.below(text_bound.len() as u64) as usize];
            parts.push(format!("!R({a}, {t}, {b})"));
        }
    }

    if !int_bound.is_empty() && g.below(3) == 0 {
        let v = int_bound[g.below(int_bound.len() as u64) as usize];
        let rhs = guarded_int(&mut g, &int_bound);
        let op = OPS[g.below(6) as usize];
        parts.push(format!("{v} {op} {rhs}"));
    }

    let body = parts.join(", ");
    if aggregate {
        let op = OPS[g.below(6) as usize];
        // Pick a function whose threshold type we can satisfy.
        let choice = g.below(5);
        let (func, threshold) = match choice {
            1 if !int_bound.is_empty() => {
                let v = int_bound[g.below(int_bound.len() as u64) as usize];
                (format!("sum({v})"), g.below(5).to_string())
            }
            2 if !int_bound.is_empty() => {
                let f = if g.below(2) == 0 { "max" } else { "min" };
                let v = int_bound[g.below(int_bound.len() as u64) as usize];
                (format!("{f}({v})"), g.below(5).to_string())
            }
            3 if !text_bound.is_empty() => {
                // max/min over a text variable takes a text threshold.
                let f = if g.below(2) == 0 { "max" } else { "min" };
                let v = text_bound[g.below(text_bound.len() as u64) as usize];
                let c = TEXT_CONSTS[g.below(3) as usize];
                (format!("{f}({v})"), format!("'{c}'"))
            }
            4 if !int_bound.is_empty() || !text_bound.is_empty() => {
                let v = if !int_bound.is_empty() && (text_bound.is_empty() || g.below(2) == 0) {
                    int_bound[g.below(int_bound.len() as u64) as usize]
                } else {
                    text_bound[g.below(text_bound.len() as u64) as usize]
                };
                (format!("cntd({v})"), g.below(5).to_string())
            }
            _ => ("count()".to_string(), g.below(5).to_string()),
        };
        format!("[q({func}) <- {body}] {op} {threshold}")
    } else {
        format!("q() <- {body}")
    }
}

#[track_caller]
fn round_trip(text: &str, cat: &Catalog) {
    let d1 = parse_denial_constraint(text, cat)
        .unwrap_or_else(|e| panic!("unparseable '{text}': {e}"));
    let printed = d1.display(cat).to_string();
    let d2 = parse_denial_constraint(&printed, cat)
        .unwrap_or_else(|e| panic!("printed form '{printed}' (from '{text}') unparseable: {e}"));
    assert_eq!(d1, d2, "round-trip changed the AST: '{text}' -> '{printed}'");
    assert_eq!(
        printed,
        d2.display(cat).to_string(),
        "printing is not a fixpoint for '{text}'"
    );
}

proptest! {
    /// parse → display → parse yields an equal AST on random constraints.
    #[test]
    fn parse_display_parse_is_identity(seed in 0..u64::MAX) {
        let cat = catalog();
        round_trip(&gen_constraint(seed), &cat);
    }
}

/// Every (aggregate function × comparator) pair and every comparator in a
/// body comparison survives the round-trip.
#[test]
fn every_aggregate_function_and_comparator_round_trips() {
    let cat = catalog();
    for func in ["count()", "cntd(x)", "sum(x)", "max(x)", "min(x)"] {
        for op in OPS {
            round_trip(&format!("[q({func}) <- R(x, t, y), S(x)] {op} 3"), &cat);
        }
    }
    for op in OPS {
        round_trip(&format!("q() <- R(x, t, y), x {op} 2"), &cat);
    }
}

/// Edge syntax: negation, text constants and thresholds, anonymous
/// variables (which print under their generated `_anonN` names), and a
/// body whose comparison precedes a positive atom in the source text.
#[test]
fn edge_syntax_round_trips() {
    let cat = catalog();
    for text in [
        "q() <- R(x, 'P1', y), !S(x), y != 0",
        "q() <- R(_, u, x), S(x)",
        "q() <- S(x), x < 2, R(x, 'P2', y)",
        "[q(max(u)) <- R(x, u, y)] = 'P1'",
        "[q(count()) <- R(0, 'P3', 1)] >= 1",
    ] {
        round_trip(text, &cat);
    }
}
