//! Property tests: the planned, index-probing evaluator against a naive
//! nested-loop reference interpreter.

use bcdb_query::{
    evaluate_bool, for_each_match, parse_denial_constraint, prepare, ConjunctiveQuery,
    DenialConstraint, EvalOptions, Term,
};
use bcdb_storage::{
    tuple, Catalog, Database, RelationSchema, Source, Tuple, TxId, Value, ValueType, WorldMask,
};
use proptest::prelude::*;
use std::ops::ControlFlow;

fn setup() -> Database {
    let mut cat = Catalog::new();
    cat.add(RelationSchema::new("R", [("a", ValueType::Int), ("b", ValueType::Int)]).unwrap())
        .unwrap();
    cat.add(RelationSchema::new("S", [("x", ValueType::Int)]).unwrap())
        .unwrap();
    Database::new(cat)
}

/// Reference evaluator: enumerate every assignment of variables to the
/// active domain, check all atoms and comparisons by scanning.
fn reference_eval(db: &Database, q: &ConjunctiveQuery, mask: &WorldMask) -> bool {
    // Active domain: all values in active tuples (plus query constants).
    let mut domain: Vec<Value> = Vec::new();
    for (rel, _) in db.catalog().iter() {
        for (_, row) in db.relation(rel).scan(mask) {
            for v in row.tuple.values() {
                if !domain.contains(v) {
                    domain.push(v.clone());
                }
            }
        }
    }
    for atom in q.positive.iter().chain(&q.negated) {
        for (_, c) in atom.constant_positions() {
            if !domain.contains(c) {
                domain.push(c.clone());
            }
        }
    }
    if q.var_count() == 0 {
        return check_assignment(db, q, mask, &[]);
    }
    if domain.is_empty() {
        return false; // vars exist but nothing to bind them to
    }
    let mut assignment = vec![domain[0].clone(); q.var_count()];
    search(db, q, mask, &domain, &mut assignment, 0)
}

fn search(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: &WorldMask,
    domain: &[Value],
    assignment: &mut [Value],
    var: usize,
) -> bool {
    if var == assignment.len() {
        return check_assignment(db, q, mask, assignment);
    }
    for v in domain {
        assignment[var] = v.clone();
        if search(db, q, mask, domain, assignment, var + 1) {
            return true;
        }
    }
    false
}

fn ground(atom: &bcdb_query::Atom, assignment: &[Value]) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => assignment[v.index()].clone(),
        })
        .collect()
}

fn check_assignment(
    db: &Database,
    q: &ConjunctiveQuery,
    mask: &WorldMask,
    assignment: &[Value],
) -> bool {
    for atom in &q.positive {
        if !db
            .relation(atom.relation)
            .contains(&ground(atom, assignment), mask)
        {
            return false;
        }
    }
    for atom in &q.negated {
        if db
            .relation(atom.relation)
            .contains(&ground(atom, assignment), mask)
        {
            return false;
        }
    }
    for cmp in &q.comparisons {
        let get = |t: &Term| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => assignment[v.index()].clone(),
        };
        if !cmp.op.eval(&get(&cmp.lhs), &get(&cmp.rhs)).unwrap_or(false) {
            return false;
        }
    }
    true
}

fn query_pool() -> Vec<&'static str> {
    vec![
        "q() <- R(x, y)",
        "q() <- R(x, x)",
        "q() <- R(x, 1)",
        "q() <- R(1, 0)",
        "q() <- R(x, y), S(y)",
        "q() <- R(x, y), S(x), x != y",
        "q() <- R(x, y), R(y, z), x < z",
        "q() <- R(x, y), !S(x)",
        "q() <- S(x), !R(x, x), x >= 1",
        "q() <- R(x, y), R(y2, x), y = y2",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 160, ..ProptestConfig::default() })]

    #[test]
    fn planner_matches_reference(
        base_r in prop::collection::vec((0..3i64, 0..3i64), 0..4),
        txs in prop::collection::vec(
            (prop::collection::vec((0..3i64, 0..3i64), 0..2),
             prop::collection::vec(0..3i64, 0..2)),
            0..3),
        query_idx in 0..10usize,
        mask_bits in 0..8u32,
    ) {
        let mut db = setup();
        let r = db.catalog().resolve("R").unwrap();
        let s = db.catalog().resolve("S").unwrap();
        for (a, b) in base_r {
            db.insert_base(r, tuple![a, b]).unwrap();
        }
        for (i, (rt, st)) in txs.iter().enumerate() {
            let src = Source::Pending(TxId(i as u32));
            for &(a, b) in rt {
                db.insert(r, tuple![a, b], src).unwrap();
            }
            for &x in st {
                db.insert(s, tuple![x], src).unwrap();
            }
        }
        let text = query_pool()[query_idx];
        let DenialConstraint::Conjunctive(q) =
            parse_denial_constraint(text, db.catalog()).unwrap()
        else { unreachable!() };
        let pq = prepare(&mut db, &q);
        let n = db.tx_count();
        let mask = WorldMask::from_txs(
            n,
            (0..n).filter(|i| mask_bits & (1 << i) != 0).map(|i| TxId(i as u32)),
        );
        prop_assert_eq!(
            evaluate_bool(&db, &pq, &mask),
            reference_eval(&db, &q, &mask),
            "query {} mask {:?}", text, mask
        );
    }

    /// Every reported match is genuinely satisfying, with correct sources.
    #[test]
    fn matches_are_sound(
        base_r in prop::collection::vec((0..3i64, 0..3i64), 0..4),
        tx_r in prop::collection::vec((0..3i64, 0..3i64), 0..3),
        query_idx in 0..10usize,
    ) {
        let mut db = setup();
        let r = db.catalog().resolve("R").unwrap();
        for (a, b) in base_r {
            db.insert_base(r, tuple![a, b]).unwrap();
        }
        for (a, b) in tx_r {
            db.insert(r, tuple![a, b], Source::Pending(TxId(0))).unwrap();
        }
        let text = query_pool()[query_idx];
        let DenialConstraint::Conjunctive(q) =
            parse_denial_constraint(text, db.catalog()).unwrap()
        else { unreachable!() };
        let pq = prepare(&mut db, &q);
        let mask = db.all_mask();
        let mut checked = 0usize;
        for_each_match(&db, &pq, &mask, EvalOptions::default(), |m| {
            assert!(check_assignment(&db, &q, &mask, m.assignment));
            // The reported row for each atom really holds the ground tuple.
            for (i, atom) in q.positive.iter().enumerate() {
                let row = db.relation(atom.relation).row(m.rows[i]);
                assert_eq!(row.tuple, ground(atom, m.assignment));
                assert_eq!(row.source, m.sources[i]);
            }
            checked += 1;
            if checked > 500 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
        });
    }
}
