//! `serve-storm`: the serving layer's chaos harness.
//!
//! Drives a durable [`ServerCore`] carrying thousands of subscriptions
//! across many tenants through seeded chain-fault storms while injecting
//! the failures a real deployment sees:
//!
//! * **solver panics** — a poisoned pending transaction makes every
//!   check touching its component panic mid-solve for a window of
//!   rounds; containment must keep the blast radius to the affected
//!   subscriptions.
//! * **client stalls** — notification subscribers that never drain;
//!   their bounded queues must coalesce instead of growing or blocking.
//! * **an adversarial tenant** — budget-exhausting constraints that must
//!   end `Unknown` while every other tenant keeps definite verdicts.
//! * **a kill/recover drill** — mid-run, the core is dropped without any
//!   shutdown (a `kill -9`), then rebuilt from the journal, snapshots,
//!   and subscription registry alone.
//!
//! After every round a sample of live verdicts is cross-checked against
//! a *single-tenant oracle*: a cold solver given each constraint alone
//! with a generous budget. A definite live verdict that contradicts a
//! definite oracle verdict is a divergence; a passing run has zero.

use crate::service::{ServeConfig, ServeLimits, ServerCore};
use crate::shed::ShedConfig;
use bcdb_chain::{
    build_block_template, export, generate, inject, Digest, Fault, Keyring, RelationalExport,
    ScenarioConfig,
};
use bcdb_core::{BlockchainDb, Solver, Verdict};
use bcdb_governor::{BudgetSpec, RetryPolicy};
use bcdb_monitor::diff::{mined_event, pending_diff_events, reorg_event};
use bcdb_monitor::MonitorConfig;
use bcdb_query::parse_denial_constraint;
use bcdb_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

/// The adversarial tenant's id.
pub const ADVERSARY: &str = "t-adversary";

/// Configuration for one serve-storm run.
#[derive(Clone, Debug)]
pub struct ServeStormConfig {
    /// Master seed.
    pub seed: u64,
    /// Well-behaved subscriptions, spread across `tenants`.
    pub subscriptions: usize,
    /// Well-behaved tenants.
    pub tenants: usize,
    /// Extra subscriptions owned by the adversarial tenant.
    pub adversary_subs: usize,
    /// Chain-storm rounds.
    pub rounds: u64,
    /// Durable store directory (journal, snapshots, registry).
    pub store_dir: PathBuf,
    /// The generated chain scenario the storms mutate.
    pub scenario: ScenarioConfig,
    /// Serving configuration (budgets, envelope, shed thresholds).
    pub serve: ServeConfig,
    /// Live subscriptions cross-checked per audit (the adversary's are
    /// always included on top).
    pub oracle_sample: usize,
    /// The oracle's per-check budget — generous, single-tenant.
    pub oracle_budget: BudgetSpec,
    /// Rounds `[start, end)` during which the poisoned transaction is
    /// active (checks touching its component panic).
    pub panic_window: (u64, u64),
    /// Pending-transaction index to poison during the window.
    pub panic_tx: usize,
    /// Round at which the kill/recover drill fires (`None` = never).
    pub kill_at: Option<u64>,
}

impl ServeStormConfig {
    /// The CI smoke shape: ≥1k subscriptions, a handful of rounds, one
    /// kill/recover drill, a two-round panic window.
    pub fn smoke(seed: u64, store_dir: impl Into<PathBuf>) -> ServeStormConfig {
        ServeStormConfig::sized(seed, store_dir, 1_200, 40, 8)
    }

    /// The full storm: 10k+ subscriptions.
    pub fn full(seed: u64, store_dir: impl Into<PathBuf>) -> ServeStormConfig {
        ServeStormConfig::sized(seed, store_dir, 10_000, 100, 12)
    }

    fn sized(
        seed: u64,
        store_dir: impl Into<PathBuf>,
        subscriptions: usize,
        tenants: usize,
        rounds: u64,
    ) -> ServeStormConfig {
        let per_tenant = subscriptions / tenants.max(1);
        let per_check = BudgetSpec {
            timeout: Some(Duration::from_millis(5)),
            max_cliques: Some(50_000),
            max_worlds: Some(50_000),
            max_tuples: None,
        };
        let serve = ServeConfig {
            monitor: MonitorConfig {
                budget: per_check,
                retry: RetryPolicy::new(1, Duration::from_micros(200), seed),
                snapshot_every: 4,
                ..MonitorConfig::default()
            },
            limits: ServeLimits {
                max_subscriptions: subscriptions + 4 * per_tenant + 64,
                max_tenants: tenants + 8,
                // Latest-state-only on purpose: stalled notification
                // clients must exercise coalescing (every flip past the
                // first displaces the queued one), not memory growth.
                queue_capacity: 1,
            },
            // Generous for honest tenants (they spend far less); the
            // adversary burns its full per-check timeout every time and
            // runs dry partway through its queue.
            envelope: Duration::from_millis((per_tenant as u64 * 4).max(60)),
            min_check: Duration::from_micros(200),
            shed: ShedConfig {
                yellow_backlog: 2_000,
                red_backlog: 8_000,
            },
            shared_cache: true,
            round_threads: 0,
        };
        ServeStormConfig {
            seed,
            subscriptions,
            tenants,
            adversary_subs: (per_tenant * 2).max(16),
            rounds,
            store_dir: store_dir.into(),
            scenario: ScenarioConfig {
                seed,
                wallets: 12,
                blocks: 10,
                txs_per_block: 6,
                pending_txs: 24,
                contradictions: 4,
                chain_dependency_pct: 30,
                ..ScenarioConfig::default()
            },
            serve,
            oracle_sample: 48,
            oracle_budget: BudgetSpec {
                timeout: Some(Duration::from_millis(250)),
                max_cliques: None,
                max_worlds: None,
                max_tuples: None,
            },
            panic_window: (rounds / 3, rounds / 3 + 2),
            panic_tx: 2,
            kill_at: Some(rounds / 2),
        }
    }
}

/// What a serve-storm run did and found.
#[derive(Clone, Debug, Default)]
pub struct ServeStormReport {
    /// Rounds completed.
    pub rounds: u64,
    /// Live subscriptions at the end.
    pub subscriptions: usize,
    /// Tenants at the end (including the adversary).
    pub tenants: usize,
    /// Events ingested.
    pub events: u64,
    /// Chain faults injected.
    pub faults_injected: u64,
    /// Blocks mined.
    pub blocks_mined: u64,
    /// Reorgs injected.
    pub reorgs: u64,
    /// Re-checks run.
    pub checks: u64,
    /// Envelope refusals (adversary starvation is self-inflicted).
    pub refusals: u64,
    /// Shed-tightened checks.
    pub sheds: u64,
    /// Verdict flips observed.
    pub flips: u64,
    /// Notifications coalesced off stalled clients' queues.
    pub coalesced: u64,
    /// Panics contained into `Unknown` by the per-check harness.
    pub panics_contained: u64,
    /// Rounds in which the adversary's envelope ran dry.
    pub adversary_exhausted_rounds: u64,
    /// Whether the kill/recover drill ran.
    pub kill_recover: bool,
    /// Subscriptions restored by the drill.
    pub recovered_subs: usize,
    /// WAL-tail records replayed by the drill.
    pub recovery_wal_tail: usize,
    /// Oracle cross-checks performed.
    pub oracle_checks: u64,
    /// Definite-verdict fraction among non-adversarial subscriptions at
    /// the end of the run.
    pub definite_fraction: f64,
    /// Whether every adversarial subscription ended `Unknown`.
    pub adversary_all_unknown: bool,
    /// Verdict-flip latency, log-bucket quantiles in nanoseconds
    /// (p50, p95, p99) from `server.flip_latency_ns`.
    pub flip_latency_ns: (u64, u64, u64),
    /// Wall-clock milliseconds.
    pub elapsed_ms: u64,
    /// Shared-cache hits across the whole drill (component replays plus
    /// verdict-memo answers).
    pub cache_hits: u64,
    /// Fresh enumerations across the whole drill.
    pub cache_misses: u64,
    /// Cache entries invalidated by chain deltas across the drill.
    pub cache_invalidations: u64,
    /// Hit ratio of the duplicate-shape measurement cohort: a fresh
    /// cache-enabled core re-serving the honest fleet (whose constraint
    /// texts repeat heavily across tenants) over mutating rounds.
    pub cache_hit_ratio: f64,
    /// Wall-time ratio of cache-off to cache-on rounds over the same
    /// duplicate-shape workload (>1 = the shared cache pays).
    pub cache_speedup: f64,
    /// Wall-time ratio of 1-thread to K-thread round execution, cache
    /// off (>1 = the parallel executor pays). On a single-core host K=1
    /// and this is ~1.0 by construction.
    pub parallel_speedup: f64,
    /// The K used for the parallel measurement (OS parallelism).
    pub round_parallel_workers: usize,
    /// Cross-tenant divergences vs the single-tenant oracle, plus any
    /// verdict mismatch between thread counts. Empty on a passing run.
    pub divergences: Vec<String>,
}

impl ServeStormReport {
    /// A run passes iff no divergence, the adversary ended `Unknown`,
    /// honest tenants stayed ≥99% definite, and every injected failure
    /// mode actually fired.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
            && self.adversary_all_unknown
            && self.definite_fraction >= 0.99
            && self.panics_contained > 0
            && self.coalesced > 0
            && self.adversary_exhausted_rounds > 0
            && self.kill_recover
    }
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chain-level storm actions (journal faults are the soak's business;
/// this harness kills the whole process instead).
#[derive(Clone, Copy, Debug)]
enum Action {
    Fault(Fault),
    Mine,
}

fn storm(rng: &mut StdRng) -> Vec<Action> {
    let steps = rng.random_range(1..=3usize);
    (0..steps)
        .map(|_| match rng.random_range(0..100u32) {
            0..=29 => Action::Fault(Fault::ConflictFlood {
                count: rng.random_range(2..=5),
            }),
            30..=49 => Action::Fault(Fault::EvictionStorm {
                count: rng.random_range(1..=3),
            }),
            50..=59 => Action::Fault(Fault::DuplicateReplay { count: 3 }),
            60..=69 => Action::Fault(Fault::OrphanReplay { count: 2 }),
            70..=84 => Action::Fault(Fault::Reorg {
                depth: rng.random_range(1..=2),
            }),
            _ => Action::Mine,
        })
        .collect()
}

/// The well-behaved constraint templates, instantiated per subscription.
/// Texts repeat across tenants on purpose — real fleets watch the same
/// patterns, and the solver's base-verdict cache should profit.
///
/// The conjunctive templates join on the *spent output* `(prevTxId,
/// prevSer)`: a valid base chain never satisfies them, but the mempool's
/// contradictions do — over the union of all pending transactions the
/// query is true, while every conflict-free possible world excludes one
/// side of each double spend. Deciding them therefore exercises the real
/// per-world machinery (component enumeration on the opt path) instead
/// of short-circuiting on a base witness.
fn tenant_constraint(i: usize, wallets: &[(String, i64)]) -> String {
    match i % 3 {
        0 => "q() <- TxIn(p, s, k1, a1, n1, g1), TxIn(p, s, k2, a2, n2, g2), n1 != n2".to_string(),
        1 => {
            let (pk, _) = &wallets[i % wallets.len().max(1)];
            format!(
                "q() <- TxIn(p, s, '{pk}', a1, n1, g1), TxIn(p, s, k2, a2, n2, g2), n1 != n2"
            )
        }
        _ => {
            // A whale alarm with a threshold straddling the wallet's
            // *base* balance: the verdict depends on which pending
            // credits land, and flips as storms evict and mine them.
            let (pk, base_sum) = &wallets[i % wallets.len().max(1)];
            let threshold = base_sum + [1, 200, 1_000_000_000][(i / 3) % 3];
            format!("[q(sum(a)) <- TxOut(ntx, s, '{pk}', a)] >= {threshold}")
        }
    }
}

/// The adversary's constraint: a three-way self-join with all-distinct
/// inequalities under an unreachable aggregate threshold. Proving it
/// *holds* requires bounding the sum over every possible world — there
/// is no early witness to stop at — so it burns whatever budget it is
/// given and exhausts, exactly the pathological tenant the fair-share
/// envelope exists for.
fn adversary_constraint() -> String {
    "[q(sum(a1)) <- TxIn(p1, s1, k1, a1, n1, g1), TxIn(p2, s2, k2, a2, n2, g2), \
     TxIn(p3, s3, k3, a3, n3, g3), n1 != n2, n2 != n3, n1 != n3] > 900000000000000"
        .to_string()
}

/// Base-state wallets `(pk, total TxOut amount)`, the anchors for the
/// pk-pinned and whale templates.
fn base_wallets(ex: &RelationalExport) -> Vec<(String, i64)> {
    let Some(txout) = ex.catalog.resolve("TxOut") else {
        return Vec::new();
    };
    let mut sums: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for (rel, t) in &ex.base {
        if *rel != txout {
            continue;
        }
        if let (Some(Value::Text(pk)), Some(Value::Int(amount))) = (t.get(2), t.get(3)) {
            *sums.entry(pk.to_string()).or_insert(0) += *amount;
        }
    }
    let mut wallets: Vec<(String, i64)> = sums.into_iter().collect();
    wallets.truncate(16);
    wallets
}

struct Fleet {
    /// (sub id, tenant, constraint text) for every admitted subscription.
    subs: Vec<(u64, String, String)>,
}

fn subscribe_fleet(
    core: &mut ServerCore,
    cfg: &ServeStormConfig,
    ex: &RelationalExport,
) -> Result<Fleet, crate::ServerError> {
    let wallets = base_wallets(ex);
    let mut subs = Vec::new();
    for i in 0..cfg.subscriptions {
        let tenant = format!("t{:03}", i % cfg.tenants);
        let weight = (i % cfg.tenants) as u32 % 3 + 1;
        let text = tenant_constraint(i, &wallets);
        // Every 7th subscription simulates a stalled notification client:
        // notify=true but nobody ever drains its queue.
        let notify = i % 7 == 0;
        let id = core.subscribe(&tenant, &format!("w{i}"), &text, weight, notify)?;
        subs.push((id, tenant, text));
    }
    for i in 0..cfg.adversary_subs {
        let text = adversary_constraint();
        let id = core.subscribe(ADVERSARY, &format!("adv{i}"), &text, 1, false)?;
        subs.push((id, ADVERSARY.to_string(), text));
    }
    Ok(Fleet { subs })
}

/// Cross-checks a sample of live verdicts against a cold single-tenant
/// solver over the current export. Only definite-vs-definite mismatches
/// count — degradation to `Unknown` is the service working as designed.
fn oracle_audit(
    round: u64,
    core: &ServerCore,
    fleet: &Fleet,
    ex: &RelationalExport,
    cfg: &ServeStormConfig,
    rng: &mut StdRng,
    report: &mut ServeStormReport,
) {
    let mut cold_db = BlockchainDb::new(ex.catalog.clone(), ex.constraints.clone());
    for (rel, tuple) in &ex.base {
        if cold_db.insert_current(*rel, tuple.clone()).is_err() {
            report
                .divergences
                .push(format!("round {round}: oracle rebuild failed on base row"));
            return;
        }
    }
    for (name, tuples) in &ex.pending {
        if cold_db
            .add_transaction(name.clone(), tuples.iter().cloned())
            .is_err()
        {
            report
                .divergences
                .push(format!("round {round}: oracle rebuild failed on pending tx"));
            return;
        }
    }
    let mut oracle = Solver::builder(cold_db)
        .budget(cfg.oracle_budget)
        .build();

    // Sample honest subscriptions; always include the adversary's.
    let mut picks: Vec<usize> = Vec::new();
    let honest: Vec<usize> = (0..fleet.subs.len())
        .filter(|&i| fleet.subs[i].1 != ADVERSARY)
        .collect();
    for _ in 0..cfg.oracle_sample.min(honest.len()) {
        picks.push(honest[rng.random_range(0..honest.len())]);
    }
    picks.extend((0..fleet.subs.len()).filter(|&i| fleet.subs[i].1 == ADVERSARY).take(4));
    picks.sort_unstable();
    picks.dedup();

    for i in picks {
        let (id, tenant, text) = &fleet.subs[i];
        let Ok(snap) = core.poll(*id) else { continue };
        if snap.verdict != "holds" && snap.verdict != "violated" {
            continue; // indefinite: degradation, not divergence
        }
        let Ok(dc) = parse_denial_constraint(text, &ex.catalog) else {
            continue;
        };
        let Ok(cold) = oracle.check(&dc) else { continue };
        report.oracle_checks += 1;
        let cold_label = match cold.verdict {
            Verdict::Holds => "holds",
            Verdict::Violated(_) => "violated",
            Verdict::Unknown(_) => continue, // oracle gave up; no signal
        };
        if cold_label != snap.verdict {
            report.divergences.push(format!(
                "round {round}: sub {id} (tenant {tenant}) diverged: live {} vs oracle {cold_label} [{text}]",
                snap.verdict
            ));
        }
    }
}

/// Silences the global panic hook for the storm's duration (restoring
/// the previous hook on drop, panic-safe). The harness injects panics
/// by the hundred, every one contained by the per-check harness — the
/// default hook would print a full backtrace for each.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanicHook(Option<PanicHook>);

impl QuietPanicHook {
    fn install() -> QuietPanicHook {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanicHook(Some(prev))
    }
}

impl Drop for QuietPanicHook {
    fn drop(&mut self) {
        if let Some(prev) = self.0.take() {
            std::panic::set_hook(prev);
        }
    }
}

/// A/B measurement of the reuse machinery over the storm's end state:
/// fresh in-memory cores serve the honest fleet (a duplicate-shape
/// cohort — its constraint texts repeat heavily across tenants) through
/// identical mutating rounds, varying one knob at a time:
///
/// * cache **on** vs **off** at 1 thread → `cache_speedup` and the
///   cohort `cache_hit_ratio`;
/// * 1 thread vs OS-parallelism threads, cache off → `parallel_speedup`,
///   with the verdict vectors compared subscription-by-subscription (any
///   mismatch is a divergence — the round executor must be
///   thread-count-deterministic).
///
/// Envelopes are opened wide so refusals cannot skew the comparison.
fn measure_reuse(
    cfg: &ServeStormConfig,
    ex: &RelationalExport,
    report: &mut ServeStormReport,
) -> Result<(), crate::ServerError> {
    const MEASURE_ROUNDS: usize = 2;
    let wallets = base_wallets(ex);
    let build = |shared: bool, threads: usize| -> Result<ServerCore, crate::ServerError> {
        let mut serve = cfg.serve.clone();
        serve.shared_cache = shared;
        serve.round_threads = threads;
        serve.envelope = Duration::from_secs(10);
        let mut core =
            ServerCore::new_in_memory(ex.catalog.clone(), ex.constraints.clone(), serve);
        core.ingest(&reorg_event(ex, 0))?;
        for i in 0..cfg.subscriptions {
            let tenant = format!("t{:03}", i % cfg.tenants);
            let text = tenant_constraint(i, &wallets);
            core.subscribe(&tenant, &format!("m{i}"), &text, 1, false)?;
        }
        core.run_round(); // settle initial verdicts, unmeasured
        Ok(core)
    };
    // Each measured round is preceded by a full pending-set resync that
    // dirties every subscription (and bumps the cache generation), so
    // cache-on rounds win by intra-round sharing, not stale answers.
    let drive = |core: &mut ServerCore| -> Result<(Duration, Vec<&'static str>), crate::ServerError> {
        let mut spent = Duration::ZERO;
        for _ in 0..MEASURE_ROUNDS {
            core.ingest(&reorg_event(ex, 0))?;
            let t0 = std::time::Instant::now();
            core.run_round();
            spent += t0.elapsed();
        }
        let mut verdicts = Vec::new();
        for id in core.subscription_ids() {
            verdicts.push(core.poll(id).map_or("?", |s| s.verdict));
        }
        Ok((spent, verdicts))
    };

    let mut cached = build(true, 1)?;
    let (t_cached, _) = drive(&mut cached)?;
    let cstats = cached.stats();
    let looked_up = cstats.cache_hits + cstats.cache_misses;
    report.cache_hit_ratio = if looked_up == 0 {
        0.0
    } else {
        cstats.cache_hits as f64 / looked_up as f64
    };

    let mut serial = build(false, 1)?;
    let (t_serial, v_serial) = drive(&mut serial)?;
    report.cache_speedup = t_serial.as_secs_f64() / t_cached.as_secs_f64().max(1e-9);

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.round_parallel_workers = workers;
    let mut wide = build(false, workers)?;
    let (t_wide, v_wide) = drive(&mut wide)?;
    report.parallel_speedup = t_serial.as_secs_f64() / t_wide.as_secs_f64().max(1e-9);
    let mismatches = v_serial
        .iter()
        .zip(&v_wide)
        .filter(|(a, b)| a != b)
        .count();
    if v_serial.len() != v_wide.len() || mismatches > 0 {
        report.divergences.push(format!(
            "thread-count divergence: {mismatches} verdicts differ between 1-thread and \
             {workers}-thread rounds"
        ));
    }
    Ok(())
}

/// Runs the storm. The run passed iff [`ServeStormReport::passed`].
pub fn run_serve_storm(cfg: &ServeStormConfig) -> Result<ServeStormReport, crate::ServerError> {
    let started = std::time::Instant::now();
    let _quiet = QuietPanicHook::install();
    bcdb_telemetry::set_enabled(true);
    let flip_hist_before = histogram_count("server.flip_latency_ns");
    let mut report = ServeStormReport::default();

    // Counters the kill/recover drill would otherwise wipe: the drill
    // rebuilds a fresh core (and a fresh monitor session), so everything
    // counted before the kill is banked here and added back at the end.
    let mut carried_events = 0u64;
    let mut carried_checks = 0u64;
    let mut carried_refusals = 0u64;
    let mut carried_sheds = 0u64;
    let mut carried_flips = 0u64;
    let mut carried_coalesced = 0u64;
    let mut carried_panics = 0u64;
    let mut carried_exhausted = 0u64;
    let mut carried_cache_hits = 0u64;
    let mut carried_cache_misses = 0u64;
    let mut carried_cache_invalidations = 0u64;

    // Fresh store.
    let _ = std::fs::remove_dir_all(&cfg.store_dir);
    let mut scenario = generate(&cfg.scenario);
    let ex0 = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
    let mut core = ServerCore::open(
        ex0.catalog.clone(),
        ex0.constraints.clone(),
        &cfg.store_dir,
        cfg.serve.clone(),
    )?;

    // Seed the chain state (journaled like any event), admit the fleet,
    // and settle initial verdicts.
    core.ingest(&reorg_event(&ex0, 0))?;
    let fleet = subscribe_fleet(&mut core, cfg, &ex0)?;
    core.run_round();

    for round in 0..cfg.rounds {
        // Toggle the poisoned transaction at the window edges.
        if round == cfg.panic_window.0 {
            core.set_fault_inject_panic_tx(Some(cfg.panic_tx));
        }
        if round == cfg.panic_window.1 {
            core.set_fault_inject_panic_tx(None);
        }

        // Kill/recover drill: drop the core with no shutdown call at all,
        // then rebuild purely from the store directory.
        if cfg.kill_at == Some(round) {
            let pre = core.stats();
            carried_events += pre.events;
            carried_checks += pre.checks;
            carried_refusals += pre.refusals;
            carried_sheds += pre.sheds;
            carried_flips += pre.flips;
            carried_coalesced += pre.coalesced;
            carried_panics += pre.monitor.panics_contained;
            carried_exhausted += core.tenant_exhausted_rounds(ADVERSARY);
            carried_cache_hits += pre.cache_hits;
            carried_cache_misses += pre.cache_misses;
            carried_cache_invalidations += pre.cache_invalidations;
            drop(core);
            let (rebuilt, recovery) = ServerCore::recover(
                ex0.catalog.clone(),
                ex0.constraints.clone(),
                &cfg.store_dir,
                cfg.serve.clone(),
            )?;
            core = rebuilt;
            report.kill_recover = true;
            report.recovered_subs = recovery.subscriptions_restored;
            report.recovery_wal_tail = recovery.monitor.wal_tail_records;
            if recovery.subscriptions_restored != fleet.subs.len() {
                report.divergences.push(format!(
                    "round {round}: recovery restored {} of {} subscriptions",
                    recovery.subscriptions_restored,
                    fleet.subs.len()
                ));
            }
            // The panic window must survive the restart too.
            if round >= cfg.panic_window.0 && round < cfg.panic_window.1 {
                core.set_fault_inject_panic_tx(Some(cfg.panic_tx));
            }
            core.run_round();
        }

        // One chain storm: mutate the scenario, ingest the diff.
        let mut rng = StdRng::seed_from_u64(mix(cfg.seed, round));
        for (i, action) in storm(&mut rng).into_iter().enumerate() {
            let derived = mix(cfg.seed, round * 131 + i as u64 + 1);
            match action {
                Action::Fault(fault) => {
                    let before = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
                    inject(&mut scenario, fault, derived);
                    report.faults_injected += 1;
                    let after = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
                    if let Fault::Reorg { depth } = fault {
                        report.reorgs += 1;
                        core.ingest(&reorg_event(&after, depth))?;
                    } else {
                        for event in pending_diff_events(&before, &after) {
                            core.ingest(&event)?;
                        }
                    }
                }
                Action::Mine => {
                    let keys = scenario.keys.clone();
                    let ring = Keyring::new(&keys);
                    let miner = &keys[(scenario.chain.height() as usize + 1) % keys.len()];
                    let block =
                        build_block_template(&scenario.chain, &scenario.mempool, &ring, miner);
                    let mined: Vec<Digest> =
                        block.transactions[1..].iter().map(|t| t.txid()).collect();
                    scenario
                        .chain
                        .append(block, &ring)
                        .expect("template blocks validate against their own chain");
                    scenario.mempool.purge_after_block(&scenario.chain, &mined);
                    report.blocks_mined += 1;
                    let after = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
                    let names = mined.iter().map(|d| d.short()).collect();
                    core.ingest(&mined_event(&after, names))?;
                }
            }
        }
        // Inside the panic window, guarantee the poisoned component is
        // actually visited before this round's checks run. Three things
        // can hide it: the storm above may have mined or evicted every
        // conflict (a conflict-free union short-circuits at the solver's
        // precheck before any component is enumerated), the mempool may
        // have drained entirely, and the incremental event path re-checks
        // only the components a diff touched. So — after the storm, not
        // before it — refill the pool from the chain tip if it is dry,
        // flood in fresh double spends, and force a full pending-set
        // resync that dirties every component.
        if round >= cfg.panic_window.0 && round < cfg.panic_window.1 {
            if scenario.mempool.len() <= cfg.panic_tx {
                inject(
                    &mut scenario,
                    Fault::Reorg { depth: 2 },
                    mix(cfg.seed, 0xFEED + round),
                );
                report.faults_injected += 1;
                report.reorgs += 1;
            }
            inject(
                &mut scenario,
                Fault::ConflictFlood { count: 6 },
                mix(cfg.seed, 0xF00D + round),
            );
            report.faults_injected += 1;
            let ex = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
            core.ingest(&reorg_event(&ex, 0))?;
        }

        core.run_round();

        // Audit (outside the panic window — the oracle would hit the
        // same injected panic through its shared solver code otherwise).
        if round < cfg.panic_window.0 || round >= cfg.panic_window.1 {
            let ex = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
            let mut audit_rng = StdRng::seed_from_u64(mix(cfg.seed, 0xA0D1 + round));
            oracle_audit(round, &core, &fleet, &ex, cfg, &mut audit_rng, &mut report);
        }
        report.rounds = round + 1;
    }

    // Settle: injection off, one full resync (poisoned-component
    // verdicts are parked at `Unknown(WorkerPanicked)` until something
    // dirties them again), then a final clean round. The adversary's
    // constraints still exhaust their budget here — `Unknown` is their
    // steady state, not a leftover.
    core.set_fault_inject_panic_tx(None);
    let ex = export(&scenario).map_err(bcdb_monitor::MonitorError::from)?;
    core.ingest(&reorg_event(&ex, 0))?;
    core.run_round();

    // End-state criteria.
    let mut honest_total = 0u64;
    let mut honest_definite = 0u64;
    let mut adversary_unknown = true;
    for (id, tenant, _) in &fleet.subs {
        let Ok(snap) = core.poll(*id) else { continue };
        if tenant == ADVERSARY {
            if snap.verdict == "holds" || snap.verdict == "violated" {
                adversary_unknown = false;
            }
        } else {
            honest_total += 1;
            if snap.verdict == "holds" || snap.verdict == "violated" {
                honest_definite += 1;
            }
        }
    }
    report.definite_fraction = if honest_total == 0 {
        0.0
    } else {
        honest_definite as f64 / honest_total as f64
    };
    report.adversary_all_unknown = adversary_unknown;
    report.adversary_exhausted_rounds =
        carried_exhausted + core.tenant_exhausted_rounds(ADVERSARY);

    let stats = core.stats();
    report.subscriptions = stats.subscriptions;
    report.tenants = stats.tenants;
    report.events = carried_events + stats.events;
    report.checks = carried_checks + stats.checks;
    report.refusals = carried_refusals + stats.refusals;
    report.sheds = carried_sheds + stats.sheds;
    report.flips = carried_flips + stats.flips;
    report.coalesced = carried_coalesced + stats.coalesced;
    report.panics_contained = carried_panics + stats.monitor.panics_contained;
    report.cache_hits = carried_cache_hits + stats.cache_hits;
    report.cache_misses = carried_cache_misses + stats.cache_misses;
    report.cache_invalidations = carried_cache_invalidations + stats.cache_invalidations;

    // A/B the reuse machinery over the end state (fresh cores; the main
    // core's own durable state is untouched).
    measure_reuse(cfg, &ex, &mut report)?;

    // Graceful shutdown at the end — the drill already covered the
    // ungraceful path.
    core.shutdown()?;

    let snap = bcdb_telemetry::snapshot();
    if let Some(h) = snap
        .histograms
        .iter()
        .find(|h| h.name == "server.flip_latency_ns")
    {
        // Quantiles include any pre-run samples recorded by the same
        // process; count-delta keeps the report honest about that.
        let _ = flip_hist_before;
        report.flip_latency_ns = (h.quantile(50), h.quantile(95), h.quantile(99));
    }
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

fn histogram_count(name: &str) -> u64 {
    bcdb_telemetry::snapshot()
        .histograms
        .iter()
        .find(|h| h.name == name)
        .map_or(0, |h| h.count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bcdb-serve-storm-{name}-{}", std::process::id()))
    }

    /// A miniature storm: every failure mode fires, nothing diverges.
    #[test]
    fn miniature_storm_passes() {
        let mut cfg = ServeStormConfig::sized(11, scratch("mini"), 120, 6, 6);
        cfg.oracle_sample = 12;
        let report = run_serve_storm(&cfg).expect("storm runs");
        assert!(
            report.divergences.is_empty(),
            "divergences: {:#?}",
            report.divergences
        );
        assert!(report.kill_recover, "drill must run");
        assert_eq!(report.recovered_subs, 120 + cfg.adversary_subs);
        assert!(report.adversary_all_unknown, "adversary must end Unknown");
        assert!(
            report.definite_fraction >= 0.99,
            "honest tenants degraded: {}",
            report.definite_fraction
        );
        assert!(report.panics_contained > 0, "panic window must fire");
        assert!(report.coalesced > 0, "stalled clients must coalesce");
        assert!(
            report.adversary_exhausted_rounds > 0,
            "adversary envelope must run dry"
        );
        assert!(
            report.cache_hits > 0,
            "duplicate shapes must hit the shared cache"
        );
        assert!(
            report.cache_hit_ratio > 0.0 && report.cache_speedup > 0.0,
            "measurement phase must run: {report:?}"
        );
        assert!(report.round_parallel_workers >= 1);
        assert!(report.passed(), "overall: {report:?}");
    }
}

