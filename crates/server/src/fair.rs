//! Weighted-fair scheduling of re-check work across tenants.
//!
//! Every tenant carries a *virtual time*: its cumulative re-check cost
//! divided by its weight. Each scheduling step picks the backlogged
//! tenant with the least virtual time, runs one unit of its work, and
//! charges the measured cost. Over any interval, tenants with equal
//! weights receive equal solver time and a tenant with weight `w`
//! receives `w×` a weight-1 tenant's share — regardless of how expensive
//! any single tenant's constraints are. A pathological constraint can
//! only inflate its own tenant's virtual time, pushing that tenant to
//! the back of the queue; it cannot starve anyone else.
//!
//! On top of the long-run fairness, each round hands every tenant a
//! budget *envelope* proportional to its weight. Work beyond the
//! envelope is refused for the rest of the round (the refusal is typed,
//! counted, and surfaces as `Verdict::Unknown` for the refused
//! subscriptions only).

use std::time::Duration;

/// Fixed-point scale for virtual time (cost is nanoseconds).
const VTIME_SCALE: u128 = 1 << 16;

/// Per-tenant fair-share accounting.
#[derive(Clone, Debug)]
pub struct TenantClock {
    /// Scheduling weight (≥ 1). A weight-2 tenant gets twice the solver
    /// time of a weight-1 tenant under contention.
    pub weight: u32,
    /// Cumulative weighted cost, in scaled units.
    vtime: u128,
    /// Nanoseconds spent inside the current round's envelope.
    round_spent_ns: u64,
    /// Nanoseconds granted for the current round.
    round_grant_ns: u64,
}

impl TenantClock {
    /// A fresh clock with the given weight (clamped to ≥ 1).
    pub fn new(weight: u32) -> TenantClock {
        TenantClock {
            weight: weight.max(1),
            vtime: 0,
            round_spent_ns: 0,
            round_grant_ns: 0,
        }
    }

    /// Starts a new round: grants `envelope × weight` nanoseconds.
    pub fn start_round(&mut self, envelope: Duration) {
        self.round_spent_ns = 0;
        self.round_grant_ns =
            (envelope.as_nanos() as u64).saturating_mul(u64::from(self.weight));
    }

    /// Remaining envelope this round.
    pub fn remaining(&self) -> Duration {
        Duration::from_nanos(self.round_grant_ns.saturating_sub(self.round_spent_ns))
    }

    /// Whether the round envelope has at least `floor` left. Refusing
    /// below a floor avoids scheduling a check whose budget is too small
    /// to produce anything but an instant `Unknown`.
    pub fn can_afford(&self, floor: Duration) -> bool {
        self.remaining() >= floor
    }

    /// Charges one unit of work against both the round envelope and the
    /// long-run virtual clock.
    pub fn charge(&mut self, cost: Duration) {
        let ns = cost.as_nanos() as u64;
        self.round_spent_ns = self.round_spent_ns.saturating_add(ns);
        self.vtime += u128::from(ns) * VTIME_SCALE / u128::from(self.weight);
    }

    /// Reconciles an estimated charge with the measured cost after the
    /// fact. The two-phase round executor charges an *estimate* at
    /// scheduling time — so the schedule, and every refusal, is decided
    /// before any check runs and cannot depend on execution timing —
    /// then settles the difference here once the actual cost is known.
    /// After settling, both the round envelope and the long-run virtual
    /// clock read exactly as if `actual` had been charged directly.
    pub fn settle(&mut self, estimate: Duration, actual: Duration) {
        // Reverse exactly what `charge(estimate)` added (same floored
        // fixed-point term), then add what `charge(actual)` would have —
        // so settling is rounding-identical to a direct charge.
        let est = estimate.as_nanos() as u64;
        let act = actual.as_nanos() as u64;
        self.round_spent_ns = self.round_spent_ns.saturating_sub(est).saturating_add(act);
        self.vtime = self
            .vtime
            .saturating_sub(u128::from(est) * VTIME_SCALE / u128::from(self.weight))
            .saturating_add(u128::from(act) * VTIME_SCALE / u128::from(self.weight));
    }

    /// The long-run virtual time (scaled weighted cost).
    pub fn vtime(&self) -> u128 {
        self.vtime
    }

    /// Brings a newly active tenant up to the current minimum virtual
    /// time so it cannot replay an idle period as a burst of priority
    /// (the classic start-time fairness rule).
    pub fn join_at(&mut self, floor: u128) {
        self.vtime = self.vtime.max(floor);
    }
}

/// Picks the index of the backlogged tenant with the least virtual time.
/// `candidates` yields `(index, &clock)` pairs for tenants that still
/// have work and envelope this round.
pub fn pick_min_vtime<'a, I>(candidates: I) -> Option<usize>
where
    I: Iterator<Item = (usize, &'a TenantClock)>,
{
    candidates
        .min_by_key(|(_, c)| c.vtime())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_share_equally() {
        let mut a = TenantClock::new(1);
        let mut b = TenantClock::new(1);
        // a's work units are 10× more expensive.
        let mut picks = (0, 0);
        for _ in 0..110 {
            let clocks = [&a, &b];
            let i = pick_min_vtime(clocks.iter().map(|c| (0, *c)).enumerate().map(|(i, (_, c))| (i, c)))
                .unwrap();
            if i == 0 {
                a.charge(Duration::from_millis(10));
                picks.0 += 1;
            } else {
                b.charge(Duration::from_millis(1));
                picks.1 += 1;
            }
        }
        // b gets ~10× the turns; total *time* is near-equal.
        assert!(picks.1 > picks.0 * 8, "picks: {picks:?}");
        let (ta, tb) = (a.vtime(), b.vtime());
        let ratio = ta.max(tb) as f64 / ta.min(tb).max(1) as f64;
        assert!(ratio < 1.25, "virtual times diverged: {ta} vs {tb}");
    }

    #[test]
    fn weight_scales_share() {
        let mut heavy = TenantClock::new(4);
        let mut light = TenantClock::new(1);
        let mut time = (Duration::ZERO, Duration::ZERO);
        for _ in 0..200 {
            let clocks = [&heavy, &light];
            let i = pick_min_vtime(clocks.iter().enumerate().map(|(i, c)| (i, *c))).unwrap();
            let cost = Duration::from_millis(2);
            if i == 0 {
                heavy.charge(cost);
                time.0 += cost;
            } else {
                light.charge(cost);
                time.1 += cost;
            }
        }
        let ratio = time.0.as_nanos() as f64 / time.1.as_nanos() as f64;
        assert!((3.0..5.0).contains(&ratio), "share ratio {ratio}");
    }

    #[test]
    fn envelope_bounds_a_round() {
        let mut t = TenantClock::new(2);
        t.start_round(Duration::from_millis(10)); // grant = 20 ms
        assert!(t.can_afford(Duration::from_millis(1)));
        t.charge(Duration::from_millis(19));
        assert!(t.can_afford(Duration::from_millis(1)));
        t.charge(Duration::from_millis(1));
        assert!(!t.can_afford(Duration::from_micros(100)));
        // A new round restores the grant; the virtual clock keeps running.
        let v = t.vtime();
        t.start_round(Duration::from_millis(10));
        assert!(t.can_afford(Duration::from_millis(1)));
        assert_eq!(t.vtime(), v);
    }

    #[test]
    fn settle_reconciles_estimate_to_actual() {
        let mut estimated = TenantClock::new(3);
        let mut direct = TenantClock::new(3);
        estimated.start_round(Duration::from_millis(10));
        direct.start_round(Duration::from_millis(10));
        // Overshooting and undershooting estimates both settle to the
        // exact clock a direct charge would have produced.
        for (est, act) in [(5u64, 9u64), (8, 2), (1, 1)] {
            estimated.charge(Duration::from_millis(est));
            estimated.settle(Duration::from_millis(est), Duration::from_millis(act));
            direct.charge(Duration::from_millis(act));
        }
        assert_eq!(estimated.vtime(), direct.vtime());
        assert_eq!(estimated.remaining(), direct.remaining());
    }

    #[test]
    fn late_joiner_cannot_burst() {
        let mut old = TenantClock::new(1);
        old.charge(Duration::from_secs(1));
        let mut newcomer = TenantClock::new(1);
        newcomer.join_at(old.vtime());
        assert!(newcomer.vtime() >= old.vtime());
    }
}
