//! Line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, flat JSON objects only
//! (strings, integers, booleans — no nesting). Minimal by design: it is
//! implementable from any language's standard library, mirrors the
//! journal's "one record per line" discipline, and needs no external
//! parser crate. Notifications are pushed as lines with `"op":"notify"`
//! to clients that subscribed with `notify:true`.
//!
//! ```text
//! → {"op":"subscribe","tenant":"acme","name":"double-spend","constraint":"q() <- ...","weight":2,"notify":true}
//! ← {"v":1,"ok":true,"sub":17}
//! → {"v":1,"op":"poll","sub":17}
//! ← {"v":1,"ok":true,"sub":17,"verdict":"holds","flips":3,"epoch":42}
//! → {"op":"event","payload":"mined <block> ..."}
//! ← {"v":1,"ok":true,"epoch":43}
//! ← {"v":1,"op":"notify","sub":17,"verdict":"violated","epoch":43}
//! ```
//!
//! # Versioning
//!
//! Frames carry a protocol version in the `"v"` field. Every response
//! (and pushed notification) states the server's version,
//! [`PROTOCOL_VERSION`]. Requests *may* declare one: an absent `"v"`
//! means version 1 (the pre-versioning wire, so old clients keep
//! working), a matching `"v"` is accepted, and anything else is refused
//! with the typed [`ServerError::UnsupportedVersion`] (`error` code
//! `"unsupported_version"`) — never silently misinterpreted. A client
//! probing a server can therefore send `{"v":2,"op":"stats"}` and
//! distinguish "server too old" from "request malformed" by the error
//! code alone.
//!
//! The `stats` request optionally scopes to one tenant
//! (`{"op":"stats","tenant":"acme"}`): the response then carries the
//! flat `tenant_*` fields — per-tenant cache hit/miss attribution,
//! envelope-exhaustion rounds, weight — alongside the service-wide
//! counters. An unknown tenant is a `bad_request` error.

use crate::error::ServerError;
use crate::service::{Notification, PollSnapshot, ServeStats, TenantStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The wire-protocol version this server speaks. Bump only on a change
/// an existing client could misread; additive response fields are not
/// that.
pub const PROTOCOL_VERSION: i64 = 1;

/// A flat JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A JSON string.
    Str(String),
    /// A JSON number (integers only on this wire).
    Num(i64),
    /// A JSON boolean.
    Bool(bool),
}

/// Parses one flat JSON object line into key → scalar. Rejects nesting,
/// floats, nulls, and trailing garbage — the wire has no use for them,
/// and refusing keeps the parser small enough to audit.
pub fn parse_flat(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.scalar()?;
            out.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}'".to_string()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next().ok_or("unterminated string")? {
                b'"' => return Ok(out),
                b'\\' => match self.next().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("short \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                },
                // Multi-byte UTF-8: pass raw bytes through; the final
                // String::from_utf8 below validates. Collect them here.
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Re-assemble the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("bad UTF-8 lead byte".to_string()),
                    };
                    let end = start + len;
                    let slice = self.bytes.get(start..end).ok_or("truncated UTF-8")?;
                    let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.peek().ok_or("expected value")? {
            b'"' => Ok(Scalar::Str(self.string()?)),
            b't' => self.literal("true", Scalar::Bool(true)),
            b'f' => self.literal("false", Scalar::Bool(false)),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err("floats are not part of this wire".to_string());
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Scalar::Num)
                    .ok_or_else(|| "bad number".to_string())
            }
            other => Err(format!("unexpected value byte {:?}", other as char)),
        }
    }
    fn literal(&mut self, lit: &str, val: Scalar) -> Result<Scalar, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(format!("expected {lit}"))
        }
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a subscription.
    Subscribe {
        /// Tenant id (fair-share identity).
        tenant: String,
        /// Client label.
        name: String,
        /// Denial constraint text.
        constraint: String,
        /// Tenant weight (defaults to 1).
        weight: u32,
        /// Push verdict-flip notifications on this connection.
        notify: bool,
    },
    /// Retire a subscription.
    Unsubscribe {
        /// Subscription id.
        sub: u64,
    },
    /// Read a subscription's current verdict.
    Poll {
        /// Subscription id.
        sub: u64,
    },
    /// Ingest one chain event (single-line [`bcdb_monitor::ChainEvent`] encoding).
    Event {
        /// `ChainEvent::encode()` payload.
        payload: String,
    },
    /// Read service counters, optionally scoped to one tenant.
    Stats {
        /// When set, the response adds the tenant's own breakdown
        /// (`tenant_*` fields); unknown tenants are refused.
        tenant: Option<String>,
    },
    /// Begin graceful shutdown.
    Shutdown,
}

fn get_str(map: &BTreeMap<String, Scalar>, key: &str) -> Result<String, ServerError> {
    match map.get(key) {
        Some(Scalar::Str(s)) => Ok(s.clone()),
        _ => Err(ServerError::BadRequest(format!("missing string {key:?}"))),
    }
}

fn get_u64(map: &BTreeMap<String, Scalar>, key: &str) -> Result<u64, ServerError> {
    match map.get(key) {
        Some(Scalar::Num(n)) if *n >= 0 => Ok(*n as u64),
        _ => Err(ServerError::BadRequest(format!(
            "missing non-negative integer {key:?}"
        ))),
    }
}

/// Parses one request line. A `"v"` field other than
/// [`PROTOCOL_VERSION`] (or absent, which means version 1) is refused
/// before the op is even looked at.
pub fn parse_request(line: &str) -> Result<Request, ServerError> {
    let map = parse_flat(line).map_err(ServerError::BadRequest)?;
    match map.get("v") {
        None => {}
        Some(Scalar::Num(n)) if *n == PROTOCOL_VERSION => {}
        Some(Scalar::Num(n)) => {
            return Err(ServerError::UnsupportedVersion { requested: *n });
        }
        Some(_) => {
            return Err(ServerError::BadRequest("v must be an integer".into()));
        }
    }
    let op = get_str(&map, "op")?;
    match op.as_str() {
        "subscribe" => Ok(Request::Subscribe {
            tenant: get_str(&map, "tenant")?,
            name: get_str(&map, "name")?,
            constraint: get_str(&map, "constraint")?,
            weight: match map.get("weight") {
                Some(Scalar::Num(n)) if *n >= 1 => *n as u32,
                None => 1,
                _ => return Err(ServerError::BadRequest("weight must be ≥ 1".into())),
            },
            notify: matches!(map.get("notify"), Some(Scalar::Bool(true))),
        }),
        "unsubscribe" => Ok(Request::Unsubscribe {
            sub: get_u64(&map, "sub")?,
        }),
        "poll" => Ok(Request::Poll {
            sub: get_u64(&map, "sub")?,
        }),
        "event" => Ok(Request::Event {
            payload: get_str(&map, "payload")?,
        }),
        "stats" => Ok(Request::Stats {
            tenant: match map.get("tenant") {
                Some(Scalar::Str(s)) => Some(s.clone()),
                None => None,
                Some(_) => {
                    return Err(ServerError::BadRequest("tenant must be a string".into()))
                }
            },
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServerError::BadRequest(format!("unknown op {other:?}"))),
    }
}

/// Tiny single-line JSON object builder (the response side).
pub struct Line {
    buf: String,
    first: bool,
}

impl Line {
    /// Opens a response frame, stamped with [`PROTOCOL_VERSION`] as its
    /// first field.
    pub fn new() -> Line {
        let line = Line {
            buf: "{".to_string(),
            first: true,
        };
        line.num("v", PROTOCOL_VERSION as u64)
    }
    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }
    /// Adds a string field.
    pub fn str(mut self, key: &str, val: &str) -> Line {
        self.key(key);
        self.buf.push('"');
        escape_into(val, &mut self.buf);
        self.buf.push('"');
        self
    }
    /// Adds an integer field.
    pub fn num(mut self, key: &str, val: u64) -> Line {
        self.key(key);
        let _ = write!(self.buf, "{val}");
        self
    }
    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, val: bool) -> Line {
        self.key(key);
        self.buf.push_str(if val { "true" } else { "false" });
        self
    }
    /// Adds an optional string field (skipped when `None`).
    pub fn opt_str(self, key: &str, val: Option<&str>) -> Line {
        match val {
            Some(v) => self.str(key, v),
            None => self,
        }
    }
    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Line {
    fn default() -> Self {
        Line::new()
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders an error response.
pub fn error_line(err: &ServerError) -> String {
    Line::new()
        .bool("ok", false)
        .str("error", err.code())
        .str("detail", &err.to_string())
        .bool("retry_later", err.is_overload())
        .finish()
}

/// Renders a poll response.
pub fn poll_line(snap: &PollSnapshot) -> String {
    Line::new()
        .bool("ok", true)
        .num("sub", snap.sub)
        .str("tenant", &snap.tenant)
        .str("name", &snap.name)
        .str("verdict", snap.verdict)
        .opt_str("reason", snap.reason.as_deref())
        .opt_str("degraded_to", snap.degraded_to)
        .num("flips", snap.flips)
        .num("epoch", snap.checked_epoch)
        .finish()
}

/// Renders a pushed notification.
pub fn notify_line(n: &Notification) -> String {
    Line::new()
        .str("op", "notify")
        .num("sub", n.sub)
        .str("tenant", &n.tenant)
        .str("name", &n.name)
        .str("verdict", n.verdict)
        .opt_str("reason", n.reason.as_deref())
        .num("epoch", n.epoch)
        .finish()
}

/// Renders a stats response; `tenant` adds one tenant's flat
/// `tenant_*` breakdown to the service-wide counters.
pub fn stats_line(s: &ServeStats, tenant: Option<(&str, &TenantStats)>) -> String {
    let mut line = Line::new()
        .bool("ok", true)
        .num("subscriptions", s.subscriptions as u64)
        .num("tenants", s.tenants as u64)
        .num("epoch", s.epoch)
        .num("events", s.events)
        .num("rounds", s.rounds)
        .num("checks", s.checks)
        .num("refusals", s.refusals)
        .num("sheds", s.sheds)
        .num("flips", s.flips)
        .num("coalesced", s.coalesced)
        .num("cache_hits", s.cache_hits)
        .num("cache_misses", s.cache_misses)
        .num("cache_invalidations", s.cache_invalidations)
        .num("panics_contained", s.monitor.panics_contained)
        .num("retries", s.monitor.retries);
    if let Some((name, t)) = tenant {
        line = line
            .str("tenant", name)
            .num("tenant_subscriptions", t.subscriptions as u64)
            .num("tenant_weight", u64::from(t.weight))
            .num("tenant_exhausted_rounds", t.exhausted_rounds)
            .num("tenant_cache_hits", t.cache_hits)
            .num("tenant_cache_misses", t.cache_misses);
    }
    line.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subscribe_round_trip() {
        let line = r#"{"op":"subscribe","tenant":"acme","name":"ds","constraint":"q() <- TxOut(n, s, k, a)","weight":3,"notify":true}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Subscribe {
                tenant: "acme".into(),
                name: "ds".into(),
                constraint: "q() <- TxOut(n, s, k, a)".into(),
                weight: 3,
                notify: true,
            }
        );
    }

    #[test]
    fn weight_defaults_and_validates() {
        let ok = parse_request(r#"{"op":"subscribe","tenant":"t","name":"n","constraint":"c"}"#)
            .unwrap();
        assert!(matches!(ok, Request::Subscribe { weight: 1, notify: false, .. }));
        let err = parse_request(
            r#"{"op":"subscribe","tenant":"t","name":"n","constraint":"c","weight":0}"#,
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_nesting_floats_and_garbage() {
        assert!(parse_flat(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat(r#"{"a":1.5}"#).is_err());
        assert!(parse_flat(r#"{"a":1} extra"#).is_err());
        assert!(parse_flat(r#"{"a":null}"#).is_err());
        assert!(parse_flat("{}").is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\there \"quoted\" back\\slash ünïcode \u{1F600}";
        let line = Line::new().str("v", s).finish();
        let parsed = parse_flat(&line).unwrap();
        assert_eq!(parsed["v"], Scalar::Str(s.to_string()));
    }

    #[test]
    fn unicode_escape_parses() {
        let parsed = parse_flat("{\"v\":\"\\u0041é\\n\"}").unwrap();
        assert_eq!(parsed["v"], Scalar::Str("Aé\n".to_string()));
    }

    #[test]
    fn version_field_is_checked_and_stamped() {
        // Absent v means version 1; matching v is accepted.
        assert!(parse_request(r#"{"op":"stats"}"#).is_ok());
        assert!(parse_request(&format!(r#"{{"v":{PROTOCOL_VERSION},"op":"stats"}}"#)).is_ok());
        // A future version is a typed refusal, checked before the op.
        let err = parse_request(r#"{"v":99,"op":"warp"}"#).unwrap_err();
        assert!(matches!(
            err,
            ServerError::UnsupportedVersion { requested: 99 }
        ));
        assert_eq!(err.code(), "unsupported_version");
        let parsed = parse_flat(&error_line(&err)).unwrap();
        assert_eq!(parsed["error"], Scalar::Str("unsupported_version".into()));
        // Non-integer v is malformed, not a version mismatch.
        assert!(matches!(
            parse_request(r#"{"v":"two","op":"stats"}"#),
            Err(ServerError::BadRequest(_))
        ));
        // Every response frame states the server's version.
        let line = Line::new().bool("ok", true).finish();
        assert_eq!(
            parse_flat(&line).unwrap()["v"],
            Scalar::Num(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn stats_parses_optional_tenant_scope() {
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { tenant: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","tenant":"acme"}"#).unwrap(),
            Request::Stats {
                tenant: Some("acme".into())
            }
        );
        assert!(parse_request(r#"{"op":"stats","tenant":7}"#).is_err());
        let tstats = TenantStats {
            cache_hits: 5,
            subscriptions: 2,
            ..TenantStats::default()
        };
        let line = stats_line(&ServeStats::default(), Some(("acme", &tstats)));
        let parsed = parse_flat(&line).unwrap();
        assert_eq!(parsed["tenant"], Scalar::Str("acme".into()));
        assert_eq!(parsed["tenant_cache_hits"], Scalar::Num(5));
        assert_eq!(parsed["tenant_subscriptions"], Scalar::Num(2));
    }

    #[test]
    fn error_lines_carry_typed_codes() {
        let line = error_line(&ServerError::AdmissionLimit(10));
        let parsed = parse_flat(&line).unwrap();
        assert_eq!(parsed["error"], Scalar::Str("admission_limit".into()));
        assert_eq!(parsed["retry_later"], Scalar::Bool(true));
        let line = error_line(&ServerError::BadRequest("nope".into()));
        let parsed = parse_flat(&line).unwrap();
        assert_eq!(parsed["retry_later"], Scalar::Bool(false));
    }
}
