//! # bcdb-server — a fault-isolated multi-tenant solver service
//!
//! One long-running daemon ingests a single chain-event stream and
//! multiplexes it to many *subscriptions*, each a tenant id plus a
//! denial constraint plus an optional verdict-flip notification flag.
//! The hard part is not the multiplexing — it is keeping tenants from
//! hurting each other on a shared solver:
//!
//! * [`fair`] — weighted fair queueing over re-check work plus
//!   per-round budget envelopes. A pathological constraint degrades its
//!   own tenant's verdicts to `Unknown`; every other tenant keeps its
//!   share.
//! * [`shed`] — overload walks the degradation ladder (tighter budgets
//!   for the most expensive work first) instead of dropping work or
//!   stalling ingest.
//! * [`service`] — the serving core: cross-tenant shared enumeration
//!   cache, a round executor that schedules serially and executes on a
//!   worker pool (identical verdicts at any thread count), admission
//!   control with
//!   typed refusals, bounded per-subscription notification queues with
//!   coalescing, panic containment and transient retry per re-check
//!   (inherited from the monitor), graceful shutdown that flushes the
//!   journal and persists a snapshot, and unified recovery that
//!   restores every subscription from durable state.
//! * [`registry`] — the durable subscription log (CRC'd append-only
//!   lines, longest-valid-prefix recovery), the missing half of restart
//!   recovery next to the monitor's event journal.
//! * [`wire`] + [`net`] — a minimal line-delimited JSON protocol over
//!   TCP; std-only, one flat object per line, deadline-aware waits
//!   everywhere (no `std::thread::sleep` in this crate — CI greps).
//! * [`storm`] — the `serve-storm` chaos harness: thousands of
//!   subscriptions under fault storms, injected panics, client stalls,
//!   and a kill/recover drill, cross-checked against a single-tenant
//!   oracle.

#![warn(missing_docs)]

pub mod error;
pub mod fair;
pub mod net;
pub mod registry;
pub mod service;
pub mod shed;
pub mod storm;
pub mod wire;

pub use error::ServerError;
pub use net::{install_signal_handlers, serve, NetConfig, NetSummary, ShutdownFlag};
pub use registry::{Registry, RegistryRecovery, SubRecord};
pub use service::{
    Notification, PollSnapshot, RoundReport, ServeConfig, ServeLimits, ServeStats, ServerCore,
    ServerRecovery, ShutdownReport, TenantStats,
};
pub use shed::{ShedConfig, ShedLevel};
pub use storm::{run_serve_storm, ServeStormConfig, ServeStormReport};
