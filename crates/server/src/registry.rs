//! Durable subscription registry.
//!
//! The monitor journal makes the *database* recoverable; this file makes
//! the *subscriptions* recoverable, so a restarted server resumes
//! watching exactly what the killed one watched. Same durability recipe
//! as the journal: append-only single-line records, CRC-32 per line,
//! percent-escaped text fields, recovery to the longest valid prefix —
//! a torn tail costs the last registration, never the file.
//!
//! ```text
//! bcdb-subs v1
//! + <id> <tenant> <name> <weight> <notify> <constraint-text> <crc32-hex>
//! - <id> <crc32-hex>
//! ```

use bcdb_monitor::{crc32, decode_text, encode_text};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

const HEADER: &str = "bcdb-subs v1";

/// One durable subscription record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubRecord {
    /// Stable subscription id (assigned at admission, survives restart).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Client-chosen label.
    pub name: String,
    /// Fair-share weight of the owning tenant as of this subscription.
    pub weight: u32,
    /// Whether the client asked for verdict-flip notifications.
    pub notify: bool,
    /// The denial constraint, in the parser's text syntax.
    pub text: String,
}

/// What a registry scan recovered.
#[derive(Debug, Default)]
pub struct RegistryRecovery {
    /// Live subscriptions (adds minus removes), by id.
    pub live: BTreeMap<u64, SubRecord>,
    /// The next id to hand out (max seen + 1).
    pub next_id: u64,
    /// Lines dropped from a torn or corrupt tail.
    pub dropped_lines: usize,
}

/// Append-only registry file, flushed per record, fsynced on demand.
pub struct Registry {
    file: File,
    path: PathBuf,
}

fn with_crc(body: String) -> String {
    let crc = crc32(body.as_bytes());
    format!("{body} {crc:08X}")
}

fn check_crc(line: &str) -> Option<&str> {
    let (body, crc_tok) = line.rsplit_once(' ')?;
    if crc_tok.len() != 8 {
        return None;
    }
    let crc = u32::from_str_radix(crc_tok, 16).ok()?;
    (crc32(body.as_bytes()) == crc).then_some(body)
}

fn parse_add(body: &str) -> Option<SubRecord> {
    let mut it = body.split(' ');
    if it.next()? != "+" {
        return None;
    }
    let id = it.next()?.parse().ok()?;
    let tenant = decode_text(it.next()?).ok()?;
    let name = decode_text(it.next()?).ok()?;
    let weight = it.next()?.parse().ok()?;
    let notify = match it.next()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    let text = decode_text(it.next()?).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(SubRecord {
        id,
        tenant,
        name,
        weight,
        notify,
        text,
    })
}

fn parse_remove(body: &str) -> Option<u64> {
    let mut it = body.split(' ');
    if it.next()? != "-" {
        return None;
    }
    let id = it.next()?.parse().ok()?;
    it.next().is_none().then_some(id)
}

impl Registry {
    /// Creates a fresh registry file (truncating any existing one) and
    /// writes the header.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let path = path.into();
        let mut file = File::create(&path)?;
        writeln!(file, "{HEADER}")?;
        file.flush()?;
        Ok(Registry { file, path })
    }

    /// Scans an existing registry to its longest valid prefix and reopens
    /// it for appending. A missing file recovers to an empty registry.
    pub fn recover(path: impl Into<PathBuf>) -> std::io::Result<(Registry, RegistryRecovery)> {
        let path = path.into();
        let mut rec = RegistryRecovery::default();
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            let mut lines = reader.lines();
            match lines.next() {
                Some(Ok(h)) if h == HEADER => {
                    for line in lines {
                        let line = match line {
                            Ok(l) => l,
                            Err(_) => {
                                rec.dropped_lines += 1;
                                break;
                            }
                        };
                        let Some(body) = check_crc(&line) else {
                            // Torn or corrupt: everything from here on is
                            // untrusted. Count the rest and stop.
                            rec.dropped_lines += 1;
                            break;
                        };
                        if let Some(sub) = parse_add(body) {
                            rec.next_id = rec.next_id.max(sub.id + 1);
                            rec.live.insert(sub.id, sub);
                        } else if let Some(id) = parse_remove(body) {
                            rec.live.remove(&id);
                            rec.next_id = rec.next_id.max(id + 1);
                        } else {
                            rec.dropped_lines += 1;
                            break;
                        }
                    }
                }
                _ => rec.dropped_lines += 1,
            }
        }
        // Reopen for appends. A recovered torn tail is left in place; the
        // next append lands after it but a strict prefix scan will stop at
        // the tear, so rewrite the file from the recovered state instead.
        let mut file = File::create(&path)?;
        writeln!(file, "{HEADER}")?;
        for sub in rec.live.values() {
            writeln!(file, "{}", with_crc(add_body(sub)))?;
        }
        file.flush()?;
        file.sync_all()?;
        drop(file);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Registry { file, path }, rec))
    }

    /// Appends an add record. Flushed to the OS before returning, so a
    /// process kill (not machine crash) cannot lose an admitted
    /// subscription.
    pub fn record_add(&mut self, sub: &SubRecord) -> std::io::Result<()> {
        writeln!(self.file, "{}", with_crc(add_body(sub)))?;
        self.file.flush()
    }

    /// Appends a remove record.
    pub fn record_remove(&mut self, id: u64) -> std::io::Result<()> {
        writeln!(self.file, "{}", with_crc(format!("- {id}")))?;
        self.file.flush()
    }

    /// Forces the registry to stable storage (shutdown path).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.sync_all()
    }

    /// The registry's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn add_body(sub: &SubRecord) -> String {
    format!(
        "+ {} {} {} {} {} {}",
        sub.id,
        encode_text(&sub.tenant),
        encode_text(&sub.name),
        sub.weight,
        u8::from(sub.notify),
        encode_text(&sub.text),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(id: u64, tenant: &str, text: &str) -> SubRecord {
        SubRecord {
            id,
            tenant: tenant.to_string(),
            name: format!("watch-{id}"),
            weight: 2,
            notify: id.is_multiple_of(2),
            text: text.to_string(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bcdb-registry-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("subs.registry")
    }

    #[test]
    fn round_trips_adds_and_removes() {
        let path = tmp("roundtrip");
        let mut reg = Registry::create(&path).unwrap();
        let a = sub(0, "t-alpha", "q() <- TxOut(n, s, 'addr one', a)");
        let b = sub(1, "t-beta", "q() <- TxIn(p, s, k, a, n, g), TxIn(p2, s2, k, a2, n2, g2), n != n2");
        reg.record_add(&a).unwrap();
        reg.record_add(&b).unwrap();
        reg.record_remove(0).unwrap();
        drop(reg);
        let (_, rec) = Registry::recover(&path).unwrap();
        assert_eq!(rec.dropped_lines, 0);
        assert_eq!(rec.next_id, 2);
        assert_eq!(rec.live.len(), 1);
        assert_eq!(rec.live[&1], b);
    }

    #[test]
    fn torn_tail_recovers_to_valid_prefix() {
        let path = tmp("torn");
        let mut reg = Registry::create(&path).unwrap();
        reg.record_add(&sub(0, "t", "q() <- TxOut(n, s, k, a)")).unwrap();
        reg.record_add(&sub(1, "t", "q() <- TxOut(n, s, k, a)")).unwrap();
        drop(reg);
        // Tear the last line mid-record.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let (mut reg, rec) = Registry::recover(&path).unwrap();
        assert_eq!(rec.dropped_lines, 1);
        assert_eq!(rec.live.len(), 1, "torn add must not survive");
        assert!(rec.live.contains_key(&0));
        // The rewritten file is clean: append and recover again.
        reg.record_add(&sub(5, "t2", "q() <- TxIn(p, s, k, a, n, g)")).unwrap();
        drop(reg);
        let (_, rec2) = Registry::recover(&path).unwrap();
        assert_eq!(rec2.dropped_lines, 0);
        assert_eq!(rec2.live.len(), 2);
        assert_eq!(rec2.next_id, 6);
    }

    #[test]
    fn missing_file_is_an_empty_registry() {
        let path = tmp("missing").with_extension("nothere");
        let _ = std::fs::remove_file(&path);
        let (_, rec) = Registry::recover(&path).unwrap();
        assert!(rec.live.is_empty());
        assert_eq!(rec.next_id, 0);
    }

    #[test]
    fn escapes_hostile_text_fields() {
        let path = tmp("hostile");
        let mut reg = Registry::create(&path).unwrap();
        let s = sub(3, "tenant with spaces\nand newlines", "q() <- TxOut(n, s, '%2F weird', a)");
        reg.record_add(&s).unwrap();
        drop(reg);
        let (_, rec) = Registry::recover(&path).unwrap();
        assert_eq!(rec.live[&3], s);
    }
}
