//! The multi-tenant serving core.
//!
//! One [`MonitorSession`] ingests the chain-event stream; many
//! subscriptions — each a `(tenant, denial constraint)` pair — share its
//! solver. The service's job is to make that sharing safe:
//!
//! * **fair isolation** — re-check work is scheduled by weighted fair
//!   queueing over tenants ([`crate::fair`]), and each tenant gets a
//!   per-round budget envelope. A pathological constraint exhausts its
//!   own tenant's envelope and degrades *that tenant's* verdicts to
//!   `Unknown`; everyone else's share is untouched.
//! * **overload shedding** — when the dirty backlog grows, budgets are
//!   tightened down the degradation ladder ([`crate::shed`]) instead of
//!   dropping work or stalling ingest.
//! * **fault containment** — each re-check runs under the monitor's
//!   panic containment and transient-retry policy; a panicking
//!   constraint yields `Unknown` for its own subscription only.
//! * **durability** — events are journaled write-ahead by the session,
//!   subscriptions by the [`crate::registry::Registry`];
//!   [`ServerCore::shutdown`] flushes both and persists a snapshot, and
//!   [`ServerCore::recover`] rebuilds every subscription from durable
//!   state alone.

use crate::error::ServerError;
use crate::fair::{pick_min_vtime, TenantClock};
use crate::registry::{Registry, SubRecord};
use crate::shed::{median_cost, shed_budget, ShedConfig, ShedLevel};
use bcdb_core::Verdict;
use bcdb_governor::ExhaustionReason;
use bcdb_monitor::{ChainEvent, MonitorConfig, MonitorSession, MonitorStats, RecoveryReport};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{Catalog, ConstraintSet, DiskBackend};
use bcdb_telemetry::probes;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Maximum live subscriptions; admission refuses beyond this.
    pub max_subscriptions: usize,
    /// Maximum distinct tenants.
    pub max_tenants: usize,
    /// Per-subscription notification queue bound. Overflow coalesces:
    /// the oldest undelivered flip is dropped (and counted) so a stalled
    /// client sees the *latest* state when it returns, and its queue
    /// cannot grow without bound.
    pub queue_capacity: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_subscriptions: 100_000,
            max_tenants: 10_000,
            queue_capacity: 64,
        }
    }
}

/// Full serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Session config: per-check budget, retry policy, snapshot cadence.
    pub monitor: MonitorConfig,
    /// Admission and queue limits.
    pub limits: ServeLimits,
    /// Per-round time envelope granted to a weight-1 tenant. A tenant of
    /// weight `w` gets `w ×` this much solver time per round.
    pub envelope: Duration,
    /// Smallest per-check budget worth scheduling; a tenant whose
    /// envelope remainder is below this floor is refused for the round.
    pub min_check: Duration,
    /// Overload thresholds.
    pub shed: ShedConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            monitor: MonitorConfig::default(),
            limits: ServeLimits::default(),
            envelope: Duration::from_millis(250),
            min_check: Duration::from_micros(200),
            shed: ShedConfig::default(),
        }
    }
}

/// A verdict-flip notification queued for delivery.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The subscription whose verdict flipped.
    pub sub: u64,
    /// Its tenant.
    pub tenant: String,
    /// Its label.
    pub name: String,
    /// The new verdict label (`holds` / `violated` / `unknown`).
    pub verdict: &'static str,
    /// Exhaustion detail when the verdict is `unknown`.
    pub reason: Option<String>,
    /// Epoch at which the flip was observed.
    pub epoch: u64,
}

/// A subscription's current state, as returned by [`ServerCore::poll`].
#[derive(Clone, Debug)]
pub struct PollSnapshot {
    /// Subscription id.
    pub sub: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Label.
    pub name: String,
    /// The constraint text, exactly as subscribed.
    pub constraint: String,
    /// Current verdict label (`pending` before the first check).
    pub verdict: &'static str,
    /// Exhaustion detail when `unknown`.
    pub reason: Option<String>,
    /// Degraded-mode algorithm that produced the verdict, if any.
    pub degraded_to: Option<&'static str>,
    /// Verdict flips observed so far.
    pub flips: u64,
    /// Epoch of the last re-check.
    pub checked_epoch: u64,
}

/// Counters for one processing round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundReport {
    /// Subscriptions that were dirty at round start.
    pub backlog: usize,
    /// Re-checks actually run.
    pub checks: usize,
    /// Subscriptions refused because their tenant's envelope ran dry
    /// (each surfaced as `Unknown`, not skipped silently).
    pub refusals: usize,
    /// Checks run under a shed-tightened budget.
    pub shed: usize,
    /// Verdict flips observed.
    pub flips: usize,
    /// The shed level this round ran at.
    pub level: ShedLevel,
}

/// Cumulative service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Distinct tenants with live subscriptions.
    pub tenants: usize,
    /// Current epoch.
    pub epoch: u64,
    /// Events ingested.
    pub events: u64,
    /// Processing rounds run.
    pub rounds: u64,
    /// Re-checks run.
    pub checks: u64,
    /// Envelope refusals.
    pub refusals: u64,
    /// Shed-tightened checks.
    pub sheds: u64,
    /// Verdict flips.
    pub flips: u64,
    /// Notifications dropped by queue coalescing.
    pub coalesced: u64,
    /// The monitor session's own counters.
    pub monitor: MonitorStats,
}

/// What [`ServerCore::recover`] rebuilt.
#[derive(Debug)]
pub struct ServerRecovery {
    /// The monitor's unified recovery report (snapshot + WAL tail).
    pub monitor: RecoveryReport,
    /// Subscriptions restored from the registry.
    pub subscriptions_restored: usize,
    /// Registry records whose constraint no longer parses (catalog
    /// drift); they are dropped, not resurrected wrong.
    pub subscriptions_rejected: usize,
    /// Registry lines lost to a torn tail.
    pub registry_dropped_lines: usize,
}

/// What [`ServerCore::shutdown`] persisted.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Snapshot id persisted at shutdown, if a backend is attached.
    pub snapshot: Option<String>,
    /// Live subscriptions at shutdown (all recoverable).
    pub subscriptions: usize,
}

struct Subscription {
    id: u64,
    tenant: String,
    name: String,
    text: String,
    /// Slot index inside the monitor session.
    slot: usize,
    notify: bool,
    verdict: Option<Verdict>,
    degraded_to: Option<&'static str>,
    checked_epoch: u64,
    flips: u64,
    /// Nanoseconds the last re-check cost — the shed ladder's signal.
    last_cost_ns: u64,
    queue: VecDeque<Notification>,
    coalesced: u64,
}

struct Tenant {
    clock: TenantClock,
    subs: usize,
    /// Rounds in which this tenant's envelope ran dry.
    exhausted_rounds: u64,
}

/// The serving core. Single-threaded by design: the network front wraps
/// it in a mutex, so every state transition is serial and the fairness
/// accounting is exact.
pub struct ServerCore {
    session: MonitorSession,
    catalog: Catalog,
    config: ServeConfig,
    subs: FxHashMap<u64, Subscription>,
    slot_to_sub: FxHashMap<usize, u64>,
    tenants: FxHashMap<String, Tenant>,
    registry: Option<Registry>,
    next_id: u64,
    stats: ServeStats,
    /// When the current dirty backlog was ingested — flip latency is
    /// measured from here.
    last_ingest: Option<Instant>,
    draining: bool,
}

/// Files inside a server store directory.
fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}
fn registry_path(dir: &Path) -> PathBuf {
    dir.join("subs.registry")
}

/// The verdict label used on the wire and in reports.
pub fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

fn verdict_reason(v: &Verdict) -> Option<String> {
    match v {
        Verdict::Unknown(r) => Some(r.to_string()),
        _ => None,
    }
}

impl ServerCore {
    /// A fresh in-memory service (no durability). Tests and the storm
    /// harness's oracle use this; production goes through
    /// [`open`](ServerCore::open).
    pub fn new_in_memory(
        catalog: Catalog,
        constraints: ConstraintSet,
        config: ServeConfig,
    ) -> ServerCore {
        let mut session = MonitorSession::new(catalog.clone(), constraints);
        session.set_config(config.monitor.clone());
        ServerCore {
            session,
            catalog,
            config,
            subs: FxHashMap::default(),
            slot_to_sub: FxHashMap::default(),
            tenants: FxHashMap::default(),
            registry: None,
            next_id: 0,
            stats: ServeStats::default(),
            last_ingest: None,
            draining: false,
        }
    }

    /// A fresh durable service rooted at `dir`: disk-backed snapshots, a
    /// write-ahead event journal, and a subscription registry.
    pub fn open(
        catalog: Catalog,
        constraints: ConstraintSet,
        dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<ServerCore, ServerError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        let mut core = ServerCore::new_in_memory(catalog, constraints, config);
        let journal = bcdb_monitor::Journal::create(journal_path(&dir))
            .map_err(bcdb_monitor::MonitorError::from)?;
        core.session.attach_journal(journal);
        let backend = DiskBackend::new(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        core.session.attach_backend(Box::new(backend));
        core.registry = Some(
            Registry::create(registry_path(&dir)).map_err(bcdb_monitor::MonitorError::from)?,
        );
        Ok(core)
    }

    /// Rebuilds a service from its store directory: unified monitor
    /// recovery (latest loadable snapshot + WAL tail) plus a registry
    /// scan re-registering every live subscription. Verdicts start
    /// dirty — the first round after recovery recomputes them.
    pub fn recover(
        catalog: Catalog,
        constraints: ConstraintSet,
        dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<(ServerCore, ServerRecovery), ServerError> {
        let dir = dir.into();
        let backend = DiskBackend::new(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        let (mut session, monitor_report) = MonitorSession::recover(
            catalog.clone(),
            constraints,
            journal_path(&dir),
            Box::new(backend),
        )?;
        session.set_config(config.monitor.clone());
        let (registry, reg_rec) =
            Registry::recover(registry_path(&dir)).map_err(bcdb_monitor::MonitorError::from)?;
        let mut core = ServerCore {
            session,
            catalog,
            config,
            subs: FxHashMap::default(),
            slot_to_sub: FxHashMap::default(),
            tenants: FxHashMap::default(),
            registry: Some(registry),
            next_id: reg_rec.next_id,
            stats: ServeStats::default(),
            last_ingest: None,
            draining: false,
        };
        let mut restored = 0usize;
        let mut rejected = 0usize;
        for sub in reg_rec.live.values() {
            match parse_denial_constraint(&sub.text, &core.catalog) {
                Ok(dc) => {
                    core.install(sub.clone(), dc);
                    restored += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(core.subs.len() as u64);
        Ok((
            core,
            ServerRecovery {
                monitor: monitor_report,
                subscriptions_restored: restored,
                subscriptions_rejected: rejected,
                registry_dropped_lines: reg_rec.dropped_lines,
            },
        ))
    }

    /// Registers a parsed record into the session and the in-memory maps
    /// (no admission checks, no registry write — both callers have
    /// already done their half).
    fn install(&mut self, rec: SubRecord, dc: bcdb_query::DenialConstraint) {
        let slot = self.session.register(rec.name.clone(), dc);
        self.slot_to_sub.insert(slot, rec.id);
        let floor = self
            .tenants
            .values()
            .map(|t| t.clock.vtime())
            .min()
            .unwrap_or(0);
        let tenant = self
            .tenants
            .entry(rec.tenant.clone())
            .or_insert_with(|| Tenant {
                clock: TenantClock::new(rec.weight),
                subs: 0,
                exhausted_rounds: 0,
            });
        tenant.clock.join_at(floor);
        tenant.subs += 1;
        self.subs.insert(
            rec.id,
            Subscription {
                id: rec.id,
                tenant: rec.tenant,
                name: rec.name,
                text: rec.text,
                slot,
                notify: rec.notify,
                verdict: None,
                degraded_to: None,
                checked_epoch: 0,
                flips: 0,
                last_cost_ns: 0,
                queue: VecDeque::new(),
                coalesced: 0,
            },
        );
    }

    /// Admits a subscription: parses and validates the constraint,
    /// enforces admission limits, journals it to the registry, and
    /// registers it dirty (first verdict arrives next round). Returns
    /// the stable subscription id.
    pub fn subscribe(
        &mut self,
        tenant: &str,
        name: &str,
        constraint: &str,
        weight: u32,
        notify: bool,
    ) -> Result<u64, ServerError> {
        if self.draining {
            return Err(ServerError::ShuttingDown);
        }
        if self.subs.len() >= self.config.limits.max_subscriptions {
            return Err(ServerError::AdmissionLimit(
                self.config.limits.max_subscriptions,
            ));
        }
        if !self.tenants.contains_key(tenant)
            && self.tenants.len() >= self.config.limits.max_tenants
        {
            return Err(ServerError::TenantLimit(self.config.limits.max_tenants));
        }
        let dc = parse_denial_constraint(constraint, &self.catalog)
            .map_err(|e| ServerError::BadConstraint(e.to_string()))?;
        let id = self.next_id;
        self.next_id += 1;
        let rec = SubRecord {
            id,
            tenant: tenant.to_string(),
            name: name.to_string(),
            weight,
            notify,
            text: constraint.to_string(),
        };
        if let Some(reg) = &mut self.registry {
            reg.record_add(&rec).map_err(bcdb_monitor::MonitorError::from)?;
        }
        self.install(rec, dc);
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(self.subs.len() as u64);
        Ok(id)
    }

    /// Removes a subscription; its session slot is retired and will be
    /// reused by the next admission.
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), ServerError> {
        let sub = self
            .subs
            .remove(&id)
            .ok_or(ServerError::UnknownSubscription(id))?;
        self.slot_to_sub.remove(&sub.slot);
        self.session.unregister(sub.slot);
        if let Some(t) = self.tenants.get_mut(&sub.tenant) {
            t.subs -= 1;
            if t.subs == 0 {
                self.tenants.remove(&sub.tenant);
            }
        }
        if let Some(reg) = &mut self.registry {
            reg.record_remove(id).map_err(bcdb_monitor::MonitorError::from)?;
        }
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(self.subs.len() as u64);
        Ok(())
    }

    /// Applies one chain event to the shared session (journaled
    /// write-ahead). Dirty marking is the session's arrival rule; the
    /// verdicts refresh on the next [`run_round`](ServerCore::run_round).
    pub fn ingest(&mut self, event: &ChainEvent) -> Result<(), ServerError> {
        self.session.apply(event)?;
        self.stats.events += 1;
        self.last_ingest = Some(Instant::now());
        Ok(())
    }

    /// Runs one fair processing round over the dirty backlog. Each pick
    /// is the minimum-virtual-time tenant with envelope left; its next dirty
    /// subscription runs under a (possibly shed-tightened) budget clamped
    /// to the envelope remainder. Tenants whose envelope runs dry have
    /// their remaining dirty subscriptions refused — surfaced as
    /// `Unknown`, counted, never silently skipped.
    pub fn run_round(&mut self) -> RoundReport {
        let ingest_t = self.last_ingest.take();
        let epoch = self.session.epoch();
        let mut report = RoundReport::default();

        // Snapshot the dirty backlog, grouped per tenant.
        let dirty_slots = self.session.dirty_indices();
        let mut queues: Vec<(String, VecDeque<u64>)> = Vec::new();
        {
            let mut by_tenant: FxHashMap<&str, VecDeque<u64>> = FxHashMap::default();
            for slot in dirty_slots {
                if let Some(&id) = self.slot_to_sub.get(&slot) {
                    let tenant = self.subs[&id].tenant.as_str();
                    by_tenant.entry(tenant).or_default().push_back(id);
                }
            }
            for (t, q) in by_tenant {
                queues.push((t.to_string(), q));
            }
            // Deterministic scheduling order for ties.
            queues.sort_by(|a, b| a.0.cmp(&b.0));
        }
        report.backlog = queues.iter().map(|(_, q)| q.len()).sum();
        if report.backlog == 0 {
            return report;
        }

        // Decide the shed level and the expensive/cheap split.
        report.level = self.config.shed.level(report.backlog);
        let mut costs: Vec<u64> = queues
            .iter()
            .flat_map(|(_, q)| q.iter().map(|id| self.subs[id].last_cost_ns))
            .collect();
        let median = median_cost(&mut costs);

        // Open each involved tenant's round envelope.
        for (name, _) in &queues {
            if let Some(t) = self.tenants.get_mut(name) {
                t.clock.start_round(self.config.envelope);
            }
        }

        let mut exhausted: Vec<String> = Vec::new();
        loop {
            let pick = pick_min_vtime(queues.iter().enumerate().filter_map(|(i, (name, q))| {
                if q.is_empty() {
                    return None;
                }
                let t = self.tenants.get(name)?;
                Some((i, &t.clock))
            }));
            let Some(i) = pick else { break };
            let (tenant_name, queue) = &mut queues[i];
            let tenant = self.tenants.get_mut(tenant_name).expect("picked tenant");

            if !tenant.clock.can_afford(self.config.min_check) {
                // Envelope dry: refuse the tenant's remaining work for
                // this round, honestly.
                tenant.exhausted_rounds += 1;
                probes::SERVER_TENANT_BUDGET_EXHAUSTED.incr();
                let refused: Vec<u64> = queue.drain(..).collect();
                exhausted.push(tenant_name.clone());
                for id in refused {
                    report.refusals += 1;
                    self.stats.refusals += 1;
                    let spent = self.config.envelope;
                    self.refuse(id, epoch, spent, ingest_t, &mut report);
                }
                continue;
            }

            let id = queue.pop_front().expect("non-empty queue");
            let sub = self.subs.get(&id).expect("queued sub");
            let slot = sub.slot;
            let expensive = sub.last_cost_ns > median;
            let (mut budget, was_shed) =
                shed_budget(self.config.monitor.budget, report.level, expensive);
            if was_shed {
                report.shed += 1;
                self.stats.sheds += 1;
                probes::SERVER_SHED_TOTAL.incr();
            }
            // Clamp the per-check budget to the envelope remainder so a
            // single check cannot overdraw the tenant's round share.
            let remaining = tenant.clock.remaining();
            budget.timeout = Some(budget.timeout.map_or(remaining, |t| t.min(remaining)));

            let retry = self.config.monitor.retry.for_site(id);
            let t0 = Instant::now();
            let cv = self.session.recheck_with(slot, budget, retry);
            let cost = t0.elapsed();
            report.checks += 1;
            self.stats.checks += 1;

            let tenant = self.tenants.get_mut(tenant_name).expect("picked tenant");
            tenant.clock.charge(cost);
            let sub = self.subs.get_mut(&id).expect("queued sub");
            sub.last_cost_ns = cost.as_nanos() as u64;
            let flipped = sub.record_verdict(cv.verdict, cv.degraded_to, epoch);
            if flipped {
                report.flips += 1;
                self.stats.flips += 1;
                Self::enqueue_flip(
                    sub,
                    epoch,
                    ingest_t,
                    self.config.limits.queue_capacity,
                    &mut self.stats,
                );
            }
        }

        self.stats.rounds += 1;
        report
    }

    /// Marks a refused subscription `Unknown` without running it. The
    /// refusal is indistinguishable *in kind* from any other exhaustion —
    /// deliberately, so clients handle one degradation story.
    fn refuse(
        &mut self,
        id: u64,
        epoch: u64,
        spent: Duration,
        ingest_t: Option<Instant>,
        report: &mut RoundReport,
    ) {
        let cap = self.config.limits.queue_capacity;
        let sub = self.subs.get_mut(&id).expect("refused sub");
        let verdict = Verdict::Unknown(ExhaustionReason::DeadlineExceeded { elapsed: spent });
        let flipped = sub.record_verdict(verdict, None, epoch);
        if flipped {
            report.flips += 1;
            self.stats.flips += 1;
            Self::enqueue_flip(sub, epoch, ingest_t, cap, &mut self.stats);
        }
    }

    fn enqueue_flip(
        sub: &mut Subscription,
        epoch: u64,
        ingest_t: Option<Instant>,
        cap: usize,
        stats: &mut ServeStats,
    ) {
        if let Some(t) = ingest_t {
            probes::SERVER_FLIP_LATENCY_NS.record(t.elapsed().as_nanos() as u64);
        }
        if !sub.notify {
            return;
        }
        let verdict = sub.verdict.as_ref().expect("just recorded");
        let note = Notification {
            sub: sub.id,
            tenant: sub.tenant.clone(),
            name: sub.name.clone(),
            verdict: verdict_label(verdict),
            reason: verdict_reason(verdict),
            epoch,
        };
        if sub.queue.len() >= cap.max(1) {
            // Coalesce: drop the oldest undelivered flip. The queue then
            // always ends at the latest state, which is what a client
            // returning from a stall actually needs.
            sub.queue.pop_front();
            sub.coalesced += 1;
            stats.coalesced += 1;
        }
        sub.queue.push_back(note);
    }

    /// The current verdict (and flip count) of one subscription.
    pub fn poll(&self, id: u64) -> Result<PollSnapshot, ServerError> {
        let sub = self
            .subs
            .get(&id)
            .ok_or(ServerError::UnknownSubscription(id))?;
        Ok(PollSnapshot {
            sub: id,
            tenant: sub.tenant.clone(),
            name: sub.name.clone(),
            constraint: sub.text.clone(),
            verdict: sub.verdict.as_ref().map_or("pending", verdict_label),
            reason: sub.verdict.as_ref().and_then(verdict_reason),
            degraded_to: sub.degraded_to,
            flips: sub.flips,
            checked_epoch: sub.checked_epoch,
        })
    }

    /// Drains up to `max` queued notifications for the given
    /// subscriptions (a connection's own subs). Unknown ids are skipped —
    /// the caller may hold ids that were unsubscribed concurrently.
    pub fn take_notifications(&mut self, ids: &[u64], max: usize) -> Vec<Notification> {
        let mut out = Vec::new();
        for id in ids {
            let Some(sub) = self.subs.get_mut(id) else {
                continue;
            };
            while out.len() < max {
                match sub.queue.pop_front() {
                    Some(n) => out.push(n),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
        }
        out
    }

    /// Ids of every live subscription (deterministic order).
    pub fn subscription_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.subs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Rounds in which `tenant`'s envelope ran dry.
    pub fn tenant_exhausted_rounds(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.exhausted_rounds)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            subscriptions: self.subs.len(),
            tenants: self.tenants.len(),
            epoch: self.session.epoch(),
            monitor: self.session.stats(),
            ..self.stats
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.session.epoch()
    }

    /// Chaos-harness hook: re-applies the monitor config with a poisoned
    /// pending-transaction index (or clears it). A check whose component
    /// contains the poisoned transaction panics mid-solve; the per-check
    /// containment turns that into `Unknown` for the affected
    /// subscription only.
    #[doc(hidden)]
    pub fn set_fault_inject_panic_tx(&mut self, tx: Option<usize>) {
        let mut monitor = self.config.monitor.clone();
        monitor.opts = monitor.opts.with_fault_inject_panic_tx(tx);
        self.session.set_config(monitor);
    }

    /// Marks the service draining: admission refuses, existing
    /// subscriptions keep serving until [`shutdown`](ServerCore::shutdown).
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`drain`](ServerCore::drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Graceful shutdown: fsync the journal, persist a final epoch
    /// snapshot (when a backend is attached), and fsync the registry.
    /// After this returns, [`recover`](ServerCore::recover) on the same
    /// directory restores every subscription and replays at most the WAL
    /// tail since the final snapshot.
    pub fn shutdown(&mut self) -> Result<ShutdownReport, ServerError> {
        self.draining = true;
        self.session.sync_journal()?;
        let snapshot = self.session.persist_snapshot_now()?;
        if let Some(reg) = &mut self.registry {
            reg.sync().map_err(bcdb_monitor::MonitorError::from)?;
        }
        Ok(ShutdownReport {
            snapshot,
            subscriptions: self.subs.len(),
        })
    }
}

impl Subscription {
    /// Records a fresh verdict; returns whether the label flipped.
    fn record_verdict(
        &mut self,
        verdict: Verdict,
        degraded_to: Option<&'static str>,
        epoch: u64,
    ) -> bool {
        let flipped = match &self.verdict {
            Some(old) => verdict_label(old) != verdict_label(&verdict),
            None => true, // first verdict is a flip from `pending`
        };
        if flipped {
            self.flips += 1;
        }
        self.verdict = Some(verdict);
        self.degraded_to = degraded_to;
        self.checked_epoch = epoch;
        flipped
    }
}
