//! The multi-tenant serving core.
//!
//! One [`MonitorSession`] ingests the chain-event stream; many
//! subscriptions — each a `(tenant, denial constraint)` pair — share its
//! solver. The service's job is to make that sharing safe:
//!
//! * **fair isolation** — re-check work is scheduled by weighted fair
//!   queueing over tenants ([`crate::fair`]), and each tenant gets a
//!   per-round budget envelope. A pathological constraint exhausts its
//!   own tenant's envelope and degrades *that tenant's* verdicts to
//!   `Unknown`; everyone else's share is untouched.
//! * **overload shedding** — when the dirty backlog grows, budgets are
//!   tightened down the degradation ladder ([`crate::shed`]) instead of
//!   dropping work or stalling ingest.
//! * **fault containment** — each re-check runs under the monitor's
//!   panic containment and transient-retry policy; a panicking
//!   constraint yields `Unknown` for its own subscription only.
//! * **cross-tenant reuse** — all subscriptions share one
//!   [`SharedEnumCache`] (on by default, [`ServeConfig::shared_cache`]):
//!   tenants subscribing the same constraint shape pay for one
//!   enumeration, with hit/miss attribution kept per tenant.
//! * **parallel rounds** — re-check *execution* fans out across a worker
//!   pool ([`ServeConfig::round_threads`]) between two serial phases:
//!   scheduling (fair-share picks and refusals, charged at cost
//!   estimates) and merging (verdicts, flips, and clock settlement in
//!   schedule order). Verdicts and notification order are identical at
//!   any thread count.
//! * **durability** — events are journaled write-ahead by the session,
//!   subscriptions by the [`crate::registry::Registry`];
//!   [`ServerCore::shutdown`] flushes both and persists a snapshot, and
//!   [`ServerCore::recover`] rebuilds every subscription from durable
//!   state alone.

use crate::error::ServerError;
use crate::fair::{pick_min_vtime, TenantClock};
use crate::registry::{Registry, SubRecord};
use crate::shed::{median_cost, shed_budget, ShedConfig, ShedLevel};
use bcdb_core::{SharedEnumCache, Verdict};
use bcdb_governor::ExhaustionReason;
use bcdb_monitor::{
    ChainEvent, MonitorConfig, MonitorSession, MonitorStats, RecoveryReport, RoundCheck,
};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{Catalog, ConstraintSet, DiskBackend};
use bcdb_telemetry::probes;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Admission limits.
#[derive(Clone, Copy, Debug)]
pub struct ServeLimits {
    /// Maximum live subscriptions; admission refuses beyond this.
    pub max_subscriptions: usize,
    /// Maximum distinct tenants.
    pub max_tenants: usize,
    /// Per-subscription notification queue bound. Overflow coalesces:
    /// the oldest undelivered flip is dropped (and counted) so a stalled
    /// client sees the *latest* state when it returns, and its queue
    /// cannot grow without bound.
    pub queue_capacity: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_subscriptions: 100_000,
            max_tenants: 10_000,
            queue_capacity: 64,
        }
    }
}

/// Full serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Session config: per-check budget, retry policy, snapshot cadence.
    pub monitor: MonitorConfig,
    /// Admission and queue limits.
    pub limits: ServeLimits,
    /// Per-round time envelope granted to a weight-1 tenant. A tenant of
    /// weight `w` gets `w ×` this much solver time per round.
    pub envelope: Duration,
    /// Smallest per-check budget worth scheduling; a tenant whose
    /// envelope remainder is below this floor is refused for the round.
    pub min_check: Duration,
    /// Overload thresholds.
    pub shed: ShedConfig,
    /// Attach a cross-tenant [`SharedEnumCache`] to the session (on by
    /// default). Subscriptions with identical constraint shapes then
    /// share one enumeration; `false` restores fully isolated per-check
    /// reuse, mainly for oracle runs and A/B measurement.
    pub shared_cache: bool,
    /// Worker threads for round *execution* (`0` = ask the OS via
    /// `available_parallelism`). Scheduling and merging stay serial at
    /// any setting, so verdicts and notification order do not depend on
    /// this knob.
    pub round_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            monitor: MonitorConfig::default(),
            limits: ServeLimits::default(),
            envelope: Duration::from_millis(250),
            min_check: Duration::from_micros(200),
            shed: ShedConfig::default(),
            shared_cache: true,
            round_threads: 0,
        }
    }
}

/// A verdict-flip notification queued for delivery.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The subscription whose verdict flipped.
    pub sub: u64,
    /// Its tenant.
    pub tenant: String,
    /// Its label.
    pub name: String,
    /// The new verdict label (`holds` / `violated` / `unknown`).
    pub verdict: &'static str,
    /// Exhaustion detail when the verdict is `unknown`.
    pub reason: Option<String>,
    /// Epoch at which the flip was observed.
    pub epoch: u64,
}

/// A subscription's current state, as returned by [`ServerCore::poll`].
#[derive(Clone, Debug)]
pub struct PollSnapshot {
    /// Subscription id.
    pub sub: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Label.
    pub name: String,
    /// The constraint text, exactly as subscribed.
    pub constraint: String,
    /// Current verdict label (`pending` before the first check).
    pub verdict: &'static str,
    /// Exhaustion detail when `unknown`.
    pub reason: Option<String>,
    /// Degraded-mode algorithm that produced the verdict, if any.
    pub degraded_to: Option<&'static str>,
    /// Verdict flips observed so far.
    pub flips: u64,
    /// Epoch of the last re-check.
    pub checked_epoch: u64,
}

/// Counters for one processing round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundReport {
    /// Subscriptions that were dirty at round start.
    pub backlog: usize,
    /// Re-checks actually run.
    pub checks: usize,
    /// Subscriptions refused because their tenant's envelope ran dry
    /// (each surfaced as `Unknown`, not skipped silently).
    pub refusals: usize,
    /// Checks run under a shed-tightened budget.
    pub shed: usize,
    /// Verdict flips observed.
    pub flips: usize,
    /// The shed level this round ran at.
    pub level: ShedLevel,
    /// Worker threads the execution phase ran on (1 = serial).
    pub workers: usize,
}

/// Cumulative service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Live subscriptions.
    pub subscriptions: usize,
    /// Distinct tenants with live subscriptions.
    pub tenants: usize,
    /// Current epoch.
    pub epoch: u64,
    /// Events ingested.
    pub events: u64,
    /// Processing rounds run.
    pub rounds: u64,
    /// Re-checks run.
    pub checks: u64,
    /// Envelope refusals.
    pub refusals: u64,
    /// Shed-tightened checks.
    pub sheds: u64,
    /// Verdict flips.
    pub flips: u64,
    /// Notifications dropped by queue coalescing.
    pub coalesced: u64,
    /// Checks (or components within checks) answered from the shared
    /// enumeration cache: component replays plus verdict-memo hits.
    pub cache_hits: u64,
    /// Components enumerated fresh during checks.
    pub cache_misses: u64,
    /// Cache entries invalidated by chain-event deltas so far.
    pub cache_invalidations: u64,
    /// The monitor session's own counters.
    pub monitor: MonitorStats,
}

/// One tenant's slice of the service counters, as surfaced by
/// [`ServerCore::tenant_stats`] and the wire `stats` request.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Live subscriptions owned by the tenant.
    pub subscriptions: usize,
    /// Scheduling weight.
    pub weight: u32,
    /// Rounds in which the tenant's envelope ran dry.
    pub exhausted_rounds: u64,
    /// Shared-cache hits attributed to the tenant's checks.
    pub cache_hits: u64,
    /// Fresh enumerations attributed to the tenant's checks.
    pub cache_misses: u64,
}

/// What [`ServerCore::recover`] rebuilt.
#[derive(Debug)]
pub struct ServerRecovery {
    /// The monitor's unified recovery report (snapshot + WAL tail).
    pub monitor: RecoveryReport,
    /// Subscriptions restored from the registry.
    pub subscriptions_restored: usize,
    /// Registry records whose constraint no longer parses (catalog
    /// drift); they are dropped, not resurrected wrong.
    pub subscriptions_rejected: usize,
    /// Registry lines lost to a torn tail.
    pub registry_dropped_lines: usize,
}

/// What [`ServerCore::shutdown`] persisted.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Snapshot id persisted at shutdown, if a backend is attached.
    pub snapshot: Option<String>,
    /// Live subscriptions at shutdown (all recoverable).
    pub subscriptions: usize,
}

struct Subscription {
    id: u64,
    tenant: String,
    name: String,
    text: String,
    /// Slot index inside the monitor session.
    slot: usize,
    notify: bool,
    verdict: Option<Verdict>,
    degraded_to: Option<&'static str>,
    checked_epoch: u64,
    flips: u64,
    /// Nanoseconds the last re-check cost — the shed ladder's signal.
    last_cost_ns: u64,
    queue: VecDeque<Notification>,
    coalesced: u64,
}

struct Tenant {
    clock: TenantClock,
    subs: usize,
    /// Rounds in which this tenant's envelope ran dry.
    exhausted_rounds: u64,
    /// Shared-cache hits attributed to this tenant's checks.
    cache_hits: u64,
    /// Fresh enumerations attributed to this tenant's checks.
    cache_misses: u64,
}

/// The serving core. Every *state transition* is serial — the network
/// front wraps it in a mutex, and a round's scheduling and merge phases
/// run on the caller's thread, so the fairness accounting is exact. Only
/// check *execution* inside [`run_round`](ServerCore::run_round) fans
/// out, over read-only solver forks that cannot touch service state.
pub struct ServerCore {
    session: MonitorSession,
    catalog: Catalog,
    config: ServeConfig,
    subs: FxHashMap<u64, Subscription>,
    slot_to_sub: FxHashMap<usize, u64>,
    tenants: FxHashMap<String, Tenant>,
    registry: Option<Registry>,
    next_id: u64,
    stats: ServeStats,
    /// When the current dirty backlog was ingested — flip latency is
    /// measured from here.
    last_ingest: Option<Instant>,
    draining: bool,
    /// `invalidated_entries` already folded into `stats` and the
    /// telemetry probe (the cache's own counter is cumulative).
    cache_invalidations_seen: u64,
}

/// Files inside a server store directory.
fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}
fn registry_path(dir: &Path) -> PathBuf {
    dir.join("subs.registry")
}

/// The verdict label used on the wire and in reports.
pub fn verdict_label(v: &Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

fn verdict_reason(v: &Verdict) -> Option<String> {
    match v {
        Verdict::Unknown(r) => Some(r.to_string()),
        _ => None,
    }
}

impl ServerCore {
    /// A fresh in-memory service (no durability). Tests and the storm
    /// harness's oracle use this; production goes through
    /// [`open`](ServerCore::open).
    pub fn new_in_memory(
        catalog: Catalog,
        constraints: ConstraintSet,
        config: ServeConfig,
    ) -> ServerCore {
        let mut session = MonitorSession::new(catalog.clone(), constraints);
        session.set_config(config.monitor.clone());
        if config.shared_cache {
            session.attach_shared_cache(Arc::new(SharedEnumCache::new()));
        }
        ServerCore {
            session,
            catalog,
            config,
            subs: FxHashMap::default(),
            slot_to_sub: FxHashMap::default(),
            tenants: FxHashMap::default(),
            registry: None,
            next_id: 0,
            stats: ServeStats::default(),
            last_ingest: None,
            draining: false,
            cache_invalidations_seen: 0,
        }
    }

    /// A fresh durable service rooted at `dir`: disk-backed snapshots, a
    /// write-ahead event journal, and a subscription registry.
    pub fn open(
        catalog: Catalog,
        constraints: ConstraintSet,
        dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<ServerCore, ServerError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        let mut core = ServerCore::new_in_memory(catalog, constraints, config);
        let journal = bcdb_monitor::Journal::create(journal_path(&dir))
            .map_err(bcdb_monitor::MonitorError::from)?;
        core.session.attach_journal(journal);
        let backend = DiskBackend::new(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        core.session.attach_backend(Box::new(backend));
        core.registry = Some(
            Registry::create(registry_path(&dir)).map_err(bcdb_monitor::MonitorError::from)?,
        );
        Ok(core)
    }

    /// Rebuilds a service from its store directory: unified monitor
    /// recovery (latest loadable snapshot + WAL tail) plus a registry
    /// scan re-registering every live subscription. Verdicts start
    /// dirty — the first round after recovery recomputes them.
    pub fn recover(
        catalog: Catalog,
        constraints: ConstraintSet,
        dir: impl Into<PathBuf>,
        config: ServeConfig,
    ) -> Result<(ServerCore, ServerRecovery), ServerError> {
        let dir = dir.into();
        let backend = DiskBackend::new(&dir).map_err(bcdb_monitor::MonitorError::from)?;
        let (mut session, monitor_report) = MonitorSession::recover(
            catalog.clone(),
            constraints,
            journal_path(&dir),
            Box::new(backend),
        )?;
        session.set_config(config.monitor.clone());
        if config.shared_cache {
            session.attach_shared_cache(Arc::new(SharedEnumCache::new()));
        }
        let (registry, reg_rec) =
            Registry::recover(registry_path(&dir)).map_err(bcdb_monitor::MonitorError::from)?;
        let mut core = ServerCore {
            session,
            catalog,
            config,
            subs: FxHashMap::default(),
            slot_to_sub: FxHashMap::default(),
            tenants: FxHashMap::default(),
            registry: Some(registry),
            next_id: reg_rec.next_id,
            stats: ServeStats::default(),
            last_ingest: None,
            draining: false,
            cache_invalidations_seen: 0,
        };
        let mut restored = 0usize;
        let mut rejected = 0usize;
        for sub in reg_rec.live.values() {
            match parse_denial_constraint(&sub.text, &core.catalog) {
                Ok(dc) => {
                    core.install(sub.clone(), dc);
                    restored += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(core.subs.len() as u64);
        Ok((
            core,
            ServerRecovery {
                monitor: monitor_report,
                subscriptions_restored: restored,
                subscriptions_rejected: rejected,
                registry_dropped_lines: reg_rec.dropped_lines,
            },
        ))
    }

    /// Registers a parsed record into the session and the in-memory maps
    /// (no admission checks, no registry write — both callers have
    /// already done their half).
    fn install(&mut self, rec: SubRecord, dc: bcdb_query::DenialConstraint) {
        let slot = self.session.register(rec.name.clone(), dc);
        self.slot_to_sub.insert(slot, rec.id);
        let floor = self
            .tenants
            .values()
            .map(|t| t.clock.vtime())
            .min()
            .unwrap_or(0);
        let tenant = self
            .tenants
            .entry(rec.tenant.clone())
            .or_insert_with(|| Tenant {
                clock: TenantClock::new(rec.weight),
                subs: 0,
                exhausted_rounds: 0,
                cache_hits: 0,
                cache_misses: 0,
            });
        tenant.clock.join_at(floor);
        tenant.subs += 1;
        self.subs.insert(
            rec.id,
            Subscription {
                id: rec.id,
                tenant: rec.tenant,
                name: rec.name,
                text: rec.text,
                slot,
                notify: rec.notify,
                verdict: None,
                degraded_to: None,
                checked_epoch: 0,
                flips: 0,
                last_cost_ns: 0,
                queue: VecDeque::new(),
                coalesced: 0,
            },
        );
    }

    /// Admits a subscription: parses and validates the constraint,
    /// enforces admission limits, journals it to the registry, and
    /// registers it dirty (first verdict arrives next round). Returns
    /// the stable subscription id.
    pub fn subscribe(
        &mut self,
        tenant: &str,
        name: &str,
        constraint: &str,
        weight: u32,
        notify: bool,
    ) -> Result<u64, ServerError> {
        if self.draining {
            return Err(ServerError::ShuttingDown);
        }
        if self.subs.len() >= self.config.limits.max_subscriptions {
            return Err(ServerError::AdmissionLimit(
                self.config.limits.max_subscriptions,
            ));
        }
        if !self.tenants.contains_key(tenant)
            && self.tenants.len() >= self.config.limits.max_tenants
        {
            return Err(ServerError::TenantLimit(self.config.limits.max_tenants));
        }
        let dc = parse_denial_constraint(constraint, &self.catalog)
            .map_err(|e| ServerError::BadConstraint(e.to_string()))?;
        let id = self.next_id;
        self.next_id += 1;
        let rec = SubRecord {
            id,
            tenant: tenant.to_string(),
            name: name.to_string(),
            weight,
            notify,
            text: constraint.to_string(),
        };
        if let Some(reg) = &mut self.registry {
            reg.record_add(&rec).map_err(bcdb_monitor::MonitorError::from)?;
        }
        self.install(rec, dc);
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(self.subs.len() as u64);
        Ok(id)
    }

    /// Removes a subscription; its session slot is retired and will be
    /// reused by the next admission.
    pub fn unsubscribe(&mut self, id: u64) -> Result<(), ServerError> {
        let sub = self
            .subs
            .remove(&id)
            .ok_or(ServerError::UnknownSubscription(id))?;
        self.slot_to_sub.remove(&sub.slot);
        self.session.unregister(sub.slot);
        if let Some(t) = self.tenants.get_mut(&sub.tenant) {
            t.subs -= 1;
            if t.subs == 0 {
                self.tenants.remove(&sub.tenant);
            }
        }
        if let Some(reg) = &mut self.registry {
            reg.record_remove(id).map_err(bcdb_monitor::MonitorError::from)?;
        }
        probes::SERVER_SUBSCRIPTIONS_ACTIVE.set(self.subs.len() as u64);
        Ok(())
    }

    /// Applies one chain event to the shared session (journaled
    /// write-ahead). Dirty marking is the session's arrival rule; the
    /// verdicts refresh on the next [`run_round`](ServerCore::run_round).
    pub fn ingest(&mut self, event: &ChainEvent) -> Result<(), ServerError> {
        self.session.apply(event)?;
        self.stats.events += 1;
        self.last_ingest = Some(Instant::now());
        Ok(())
    }

    /// Runs one fair processing round over the dirty backlog, in three
    /// phases:
    ///
    /// 1. **Schedule** (serial): each pick is the minimum-virtual-time
    ///    tenant with envelope left; its next dirty subscription gets a
    ///    (possibly shed-tightened) budget clamped to the envelope
    ///    remainder, and its clock is charged a cost *estimate* (last
    ///    observed cost, floored at `min_check`). Tenants whose envelope
    ///    runs dry have their remaining dirty subscriptions refused —
    ///    surfaced as `Unknown`, counted, never silently skipped.
    ///    Charging estimates up front makes every pick and every refusal
    ///    a function of pre-round state alone.
    /// 2. **Execute**: the scheduled checks run on up to
    ///    [`round_threads`](ServeConfig::round_threads) workers over
    ///    read-only solver forks sharing the enumeration cache.
    /// 3. **Merge** (serial, schedule order): verdicts are recorded,
    ///    flips enqueued, per-tenant cache attribution accumulated, and
    ///    each clock settled from its estimate to the measured cost.
    ///
    /// Because scheduling and merging are serial and timing-independent,
    /// the round's verdicts and notification order are identical at any
    /// worker count.
    pub fn run_round(&mut self) -> RoundReport {
        let ingest_t = self.last_ingest.take();
        let epoch = self.session.epoch();
        let mut report = RoundReport::default();

        // Snapshot the dirty backlog, grouped per tenant.
        let dirty_slots = self.session.dirty_indices();
        let mut queues: Vec<(String, VecDeque<u64>)> = Vec::new();
        {
            let mut by_tenant: FxHashMap<&str, VecDeque<u64>> = FxHashMap::default();
            for slot in dirty_slots {
                if let Some(&id) = self.slot_to_sub.get(&slot) {
                    let tenant = self.subs[&id].tenant.as_str();
                    by_tenant.entry(tenant).or_default().push_back(id);
                }
            }
            for (t, q) in by_tenant {
                queues.push((t.to_string(), q));
            }
            // Deterministic scheduling order for ties.
            queues.sort_by(|a, b| a.0.cmp(&b.0));
        }
        report.backlog = queues.iter().map(|(_, q)| q.len()).sum();
        if report.backlog == 0 {
            return report;
        }

        // Decide the shed level and the expensive/cheap split.
        report.level = self.config.shed.level(report.backlog);
        let mut costs: Vec<u64> = queues
            .iter()
            .flat_map(|(_, q)| q.iter().map(|id| self.subs[id].last_cost_ns))
            .collect();
        let median = median_cost(&mut costs);

        // Open each involved tenant's round envelope.
        for (name, _) in &queues {
            if let Some(t) = self.tenants.get_mut(name) {
                t.clock.start_round(self.config.envelope);
            }
        }

        // Phase 1: schedule.
        struct Scheduled {
            id: u64,
            /// Index into `queues` — the owning tenant.
            tenant: usize,
            estimate: Duration,
            check: RoundCheck,
        }
        let min_check = self.config.min_check;
        let mut schedule: Vec<Scheduled> = Vec::new();
        loop {
            let pick = pick_min_vtime(queues.iter().enumerate().filter_map(|(i, (name, q))| {
                if q.is_empty() {
                    return None;
                }
                let t = self.tenants.get(name)?;
                Some((i, &t.clock))
            }));
            let Some(i) = pick else { break };
            let (tenant_name, queue) = &mut queues[i];
            let tenant = self.tenants.get_mut(tenant_name).expect("picked tenant");

            if !tenant.clock.can_afford(min_check) {
                // Envelope dry: refuse the tenant's remaining work for
                // this round, honestly.
                tenant.exhausted_rounds += 1;
                probes::SERVER_TENANT_BUDGET_EXHAUSTED.incr();
                let refused: Vec<u64> = queue.drain(..).collect();
                for id in refused {
                    report.refusals += 1;
                    self.stats.refusals += 1;
                    let spent = self.config.envelope;
                    self.refuse(id, epoch, spent, ingest_t, &mut report);
                }
                continue;
            }

            let id = queue.pop_front().expect("non-empty queue");
            let sub = self.subs.get(&id).expect("queued sub");
            let slot = sub.slot;
            let expensive = sub.last_cost_ns > median;
            let (mut budget, was_shed) =
                shed_budget(self.config.monitor.budget, report.level, expensive);
            if was_shed {
                report.shed += 1;
                self.stats.sheds += 1;
                probes::SERVER_SHED_TOTAL.incr();
            }
            // Clamp the per-check budget to the envelope remainder so a
            // single check cannot overdraw the tenant's round share.
            let remaining = tenant.clock.remaining();
            budget.timeout = Some(budget.timeout.map_or(remaining, |t| t.min(remaining)));

            let retry = self.config.monitor.retry.for_site(id);
            let estimate = Duration::from_nanos(sub.last_cost_ns).max(min_check);
            tenant.clock.charge(estimate);
            schedule.push(Scheduled {
                id,
                tenant: i,
                estimate,
                check: RoundCheck {
                    slot,
                    budget,
                    retry,
                },
            });
        }

        // Phase 2: execute.
        let workers = self.round_workers(schedule.len());
        report.workers = workers;
        probes::SERVER_ROUND_PARALLEL_WORKERS.set(workers as u64);
        let checks: Vec<RoundCheck> = schedule.iter().map(|s| s.check).collect();
        let results = self.session.recheck_round(&checks, workers);

        // Phase 3: merge, in schedule order.
        for (sched, res) in schedule.iter().zip(results) {
            report.checks += 1;
            self.stats.checks += 1;
            let tenant_name = queues[sched.tenant].0.as_str();
            let tenant = self.tenants.get_mut(tenant_name).expect("scheduled tenant");
            tenant.clock.settle(sched.estimate, Duration::from_nanos(res.cost_ns));
            tenant.cache_hits += res.cache_hits;
            tenant.cache_misses += res.cache_misses;
            self.stats.cache_hits += res.cache_hits;
            self.stats.cache_misses += res.cache_misses;
            probes::SERVER_CACHE_HITS.add(res.cache_hits);
            let sub = self.subs.get_mut(&sched.id).expect("scheduled sub");
            sub.last_cost_ns = res.cost_ns;
            let flipped =
                sub.record_verdict(res.verdict.verdict, res.verdict.degraded_to, epoch);
            if flipped {
                report.flips += 1;
                self.stats.flips += 1;
                Self::enqueue_flip(
                    sub,
                    epoch,
                    ingest_t,
                    self.config.limits.queue_capacity,
                    &mut self.stats,
                );
            }
        }
        self.sync_cache_invalidations();

        self.stats.rounds += 1;
        report
    }

    /// Worker-thread count for one round's execution phase: the
    /// configured setting (0 = OS parallelism), never more than the
    /// number of scheduled checks, never less than 1.
    fn round_workers(&self, scheduled: usize) -> usize {
        let configured = match self.config.round_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        configured.clamp(1, scheduled.max(1))
    }

    /// Folds the shared cache's cumulative invalidation counter into the
    /// service stats and the telemetry probe, exactly once per entry.
    fn sync_cache_invalidations(&mut self) {
        let Some(cache) = self.session.shared_cache() else {
            return;
        };
        let seen = cache.stats().invalidated_entries;
        let delta = seen.saturating_sub(self.cache_invalidations_seen);
        if delta > 0 {
            self.cache_invalidations_seen = seen;
            self.stats.cache_invalidations += delta;
            probes::SERVER_CACHE_INVALIDATIONS.add(delta);
        }
    }

    /// Marks a refused subscription `Unknown` without running it. The
    /// refusal is indistinguishable *in kind* from any other exhaustion —
    /// deliberately, so clients handle one degradation story.
    fn refuse(
        &mut self,
        id: u64,
        epoch: u64,
        spent: Duration,
        ingest_t: Option<Instant>,
        report: &mut RoundReport,
    ) {
        let cap = self.config.limits.queue_capacity;
        let sub = self.subs.get_mut(&id).expect("refused sub");
        let verdict = Verdict::Unknown(ExhaustionReason::DeadlineExceeded { elapsed: spent });
        let flipped = sub.record_verdict(verdict, None, epoch);
        if flipped {
            report.flips += 1;
            self.stats.flips += 1;
            Self::enqueue_flip(sub, epoch, ingest_t, cap, &mut self.stats);
        }
    }

    fn enqueue_flip(
        sub: &mut Subscription,
        epoch: u64,
        ingest_t: Option<Instant>,
        cap: usize,
        stats: &mut ServeStats,
    ) {
        if let Some(t) = ingest_t {
            probes::SERVER_FLIP_LATENCY_NS.record(t.elapsed().as_nanos() as u64);
        }
        if !sub.notify {
            return;
        }
        let verdict = sub.verdict.as_ref().expect("just recorded");
        let note = Notification {
            sub: sub.id,
            tenant: sub.tenant.clone(),
            name: sub.name.clone(),
            verdict: verdict_label(verdict),
            reason: verdict_reason(verdict),
            epoch,
        };
        if sub.queue.len() >= cap.max(1) {
            // Coalesce: drop the oldest undelivered flip. The queue then
            // always ends at the latest state, which is what a client
            // returning from a stall actually needs.
            sub.queue.pop_front();
            sub.coalesced += 1;
            stats.coalesced += 1;
        }
        sub.queue.push_back(note);
    }

    /// The current verdict (and flip count) of one subscription.
    pub fn poll(&self, id: u64) -> Result<PollSnapshot, ServerError> {
        let sub = self
            .subs
            .get(&id)
            .ok_or(ServerError::UnknownSubscription(id))?;
        Ok(PollSnapshot {
            sub: id,
            tenant: sub.tenant.clone(),
            name: sub.name.clone(),
            constraint: sub.text.clone(),
            verdict: sub.verdict.as_ref().map_or("pending", verdict_label),
            reason: sub.verdict.as_ref().and_then(verdict_reason),
            degraded_to: sub.degraded_to,
            flips: sub.flips,
            checked_epoch: sub.checked_epoch,
        })
    }

    /// Drains up to `max` queued notifications for the given
    /// subscriptions (a connection's own subs). Unknown ids are skipped —
    /// the caller may hold ids that were unsubscribed concurrently.
    pub fn take_notifications(&mut self, ids: &[u64], max: usize) -> Vec<Notification> {
        let mut out = Vec::new();
        for id in ids {
            let Some(sub) = self.subs.get_mut(id) else {
                continue;
            };
            while out.len() < max {
                match sub.queue.pop_front() {
                    Some(n) => out.push(n),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
        }
        out
    }

    /// Ids of every live subscription (deterministic order).
    pub fn subscription_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.subs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Rounds in which `tenant`'s envelope ran dry.
    pub fn tenant_exhausted_rounds(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.exhausted_rounds)
    }

    /// One tenant's slice of the service counters, or `None` if the
    /// tenant has no live subscriptions.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.tenants.get(tenant).map(|t| TenantStats {
            subscriptions: t.subs,
            weight: t.clock.weight,
            exhausted_rounds: t.exhausted_rounds,
            cache_hits: t.cache_hits,
            cache_misses: t.cache_misses,
        })
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            subscriptions: self.subs.len(),
            tenants: self.tenants.len(),
            epoch: self.session.epoch(),
            monitor: self.session.stats(),
            ..self.stats
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.session.epoch()
    }

    /// Chaos-harness hook: re-applies the monitor config with a poisoned
    /// pending-transaction index (or clears it). A check whose component
    /// contains the poisoned transaction panics mid-solve; the per-check
    /// containment turns that into `Unknown` for the affected
    /// subscription only.
    #[doc(hidden)]
    pub fn set_fault_inject_panic_tx(&mut self, tx: Option<usize>) {
        let mut monitor = self.config.monitor.clone();
        monitor.opts = monitor.opts.with_fault_inject_panic_tx(tx);
        self.session.set_config(monitor);
    }

    /// Marks the service draining: admission refuses, existing
    /// subscriptions keep serving until [`shutdown`](ServerCore::shutdown).
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`drain`](ServerCore::drain) was called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Graceful shutdown: fsync the journal, persist a final epoch
    /// snapshot (when a backend is attached), and fsync the registry.
    /// After this returns, [`recover`](ServerCore::recover) on the same
    /// directory restores every subscription and replays at most the WAL
    /// tail since the final snapshot.
    pub fn shutdown(&mut self) -> Result<ShutdownReport, ServerError> {
        self.draining = true;
        self.session.sync_journal()?;
        let snapshot = self.session.persist_snapshot_now()?;
        if let Some(reg) = &mut self.registry {
            reg.sync().map_err(bcdb_monitor::MonitorError::from)?;
        }
        Ok(ShutdownReport {
            snapshot,
            subscriptions: self.subs.len(),
        })
    }
}

impl Subscription {
    /// Records a fresh verdict; returns whether the label flipped.
    fn record_verdict(
        &mut self,
        verdict: Verdict,
        degraded_to: Option<&'static str>,
        epoch: u64,
    ) -> bool {
        let flipped = match &self.verdict {
            Some(old) => verdict_label(old) != verdict_label(&verdict),
            None => true, // first verdict is a flip from `pending`
        };
        if flipped {
            self.flips += 1;
        }
        self.verdict = Some(verdict);
        self.degraded_to = degraded_to;
        self.checked_epoch = epoch;
        flipped
    }
}
