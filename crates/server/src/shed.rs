//! Load shedding: degrade, don't drop.
//!
//! When the dirty backlog outruns the solver, the service must not stall
//! the event stream (that corrupts *everyone's* view of the chain) and
//! must not silently discard re-checks (that turns "overloaded" into
//! "wrong"). Instead it walks the same ladder the governor's degradation
//! modes define: every queued re-check still runs, but under a tighter
//! budget, so the expensive ones resolve to an honest `Unknown` faster
//! and the cheap ones still come back definite.
//!
//! The cheapest work to refuse is the most expensive work to run: a
//! constraint that cost 80 ms last round buys 80× more relief than an
//! 1 ms one when squeezed. So `Yellow` tightens only subscriptions whose
//! last observed cost is above the round's median, and `Red` tightens
//! everything — expensive subscriptions hardest.

use bcdb_governor::BudgetSpec;
use std::time::Duration;

/// Overload level, decided per round from the dirty backlog.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// Backlog is comfortable; budgets pass through untouched.
    #[default]
    Green,
    /// Backlog above the yellow threshold: halve the budget of
    /// above-median-cost subscriptions.
    Yellow,
    /// Backlog above the red threshold: quarter everyone, eighth the
    /// above-median-cost subscriptions.
    Red,
}

impl ShedLevel {
    /// A stable label for reports and the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            ShedLevel::Green => "green",
            ShedLevel::Yellow => "yellow",
            ShedLevel::Red => "red",
        }
    }
}

/// Backlog thresholds for the shed ladder.
#[derive(Clone, Copy, Debug)]
pub struct ShedConfig {
    /// Dirty-subscription count at which `Yellow` engages.
    pub yellow_backlog: usize,
    /// Dirty-subscription count at which `Red` engages.
    pub red_backlog: usize,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            yellow_backlog: 2_048,
            red_backlog: 16_384,
        }
    }
}

impl ShedConfig {
    /// The level for a round with `backlog` dirty subscriptions.
    pub fn level(&self, backlog: usize) -> ShedLevel {
        if backlog >= self.red_backlog {
            ShedLevel::Red
        } else if backlog >= self.yellow_backlog {
            ShedLevel::Yellow
        } else {
            ShedLevel::Green
        }
    }
}

/// Divides every limit in `spec` by `div` (floor 1 for counts; the
/// timeout keeps sub-millisecond resolution).
fn squeeze(spec: BudgetSpec, div: u32) -> BudgetSpec {
    BudgetSpec {
        timeout: spec.timeout.map(|t| (t / div).max(Duration::from_micros(50))),
        max_cliques: spec.max_cliques.map(|c| (c / u64::from(div)).max(1)),
        max_worlds: spec.max_worlds.map(|w| (w / u64::from(div)).max(1)),
        max_tuples: spec.max_tuples.map(|t| (t / u64::from(div)).max(1)),
    }
}

/// The budget a subscription gets this round. `expensive` marks a
/// subscription whose last observed cost is above the round's median.
/// Returns the (possibly tightened) budget and whether it was shed —
/// callers count sheds into `server.shed_total`.
pub fn shed_budget(spec: BudgetSpec, level: ShedLevel, expensive: bool) -> (BudgetSpec, bool) {
    match (level, expensive) {
        (ShedLevel::Green, _) => (spec, false),
        (ShedLevel::Yellow, false) => (spec, false),
        (ShedLevel::Yellow, true) => (squeeze(spec, 2), true),
        (ShedLevel::Red, false) => (squeeze(spec, 4), true),
        (ShedLevel::Red, true) => (squeeze(spec, 8), true),
    }
}

/// The median of the last observed per-check costs (0 when empty). Used
/// to split "expensive" from "cheap" for the shed ladder.
pub fn median_cost(costs: &mut [u64]) -> u64 {
    if costs.is_empty() {
        return 0;
    }
    let mid = costs.len() / 2;
    *costs.select_nth_unstable(mid).1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BudgetSpec {
        BudgetSpec {
            timeout: Some(Duration::from_millis(80)),
            max_cliques: Some(1_000),
            max_worlds: Some(10_000),
            max_tuples: None,
        }
    }

    #[test]
    fn ladder_engages_by_backlog() {
        let cfg = ShedConfig {
            yellow_backlog: 10,
            red_backlog: 100,
        };
        assert_eq!(cfg.level(0), ShedLevel::Green);
        assert_eq!(cfg.level(9), ShedLevel::Green);
        assert_eq!(cfg.level(10), ShedLevel::Yellow);
        assert_eq!(cfg.level(99), ShedLevel::Yellow);
        assert_eq!(cfg.level(100), ShedLevel::Red);
    }

    #[test]
    fn green_passes_through() {
        let (b, shed) = shed_budget(spec(), ShedLevel::Green, true);
        assert!(!shed);
        assert_eq!(b.timeout, spec().timeout);
        assert_eq!(b.max_worlds, spec().max_worlds);
    }

    #[test]
    fn yellow_targets_expensive_work_only() {
        let (cheap, shed_cheap) = shed_budget(spec(), ShedLevel::Yellow, false);
        assert!(!shed_cheap);
        assert_eq!(cheap.timeout, spec().timeout);
        let (dear, shed_dear) = shed_budget(spec(), ShedLevel::Yellow, true);
        assert!(shed_dear);
        assert_eq!(dear.timeout, Some(Duration::from_millis(40)));
        assert_eq!(dear.max_cliques, Some(500));
    }

    #[test]
    fn red_squeezes_everyone_expensive_hardest() {
        let (cheap, s1) = shed_budget(spec(), ShedLevel::Red, false);
        let (dear, s2) = shed_budget(spec(), ShedLevel::Red, true);
        assert!(s1 && s2);
        assert_eq!(cheap.timeout, Some(Duration::from_millis(20)));
        assert_eq!(dear.timeout, Some(Duration::from_millis(10)));
        assert_eq!(dear.max_worlds, Some(1_250));
    }

    #[test]
    fn squeeze_never_zeroes_a_limit() {
        let tiny = BudgetSpec {
            timeout: Some(Duration::from_micros(100)),
            max_cliques: Some(3),
            max_worlds: Some(1),
            max_tuples: Some(2),
        };
        let (b, _) = shed_budget(tiny, ShedLevel::Red, true);
        assert!(b.timeout.unwrap() >= Duration::from_micros(50));
        assert_eq!(b.max_cliques, Some(1));
        assert_eq!(b.max_worlds, Some(1));
        assert_eq!(b.max_tuples, Some(1));
    }

    #[test]
    fn median_splits_costs() {
        let mut costs = [5, 1, 9, 3, 7];
        assert_eq!(median_cost(&mut costs), 5);
        assert_eq!(median_cost(&mut []), 0);
    }
}
