//! Typed errors for the serving layer.
//!
//! Overload is a *first-class answer*, not an I/O failure: admission
//! refusals and queue overflow carry the limit that was hit so clients
//! can tell "the service is full" apart from "my request was malformed"
//! and back off instead of retrying hot.

use bcdb_monitor::MonitorError;
use std::fmt;

/// What the service refused and why.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control: the configured subscription limit is reached.
    /// Carries the limit so the client can report it.
    AdmissionLimit(usize),
    /// Admission control: the configured tenant limit is reached.
    TenantLimit(usize),
    /// The subscription id is unknown (or already unsubscribed).
    UnknownSubscription(u64),
    /// The constraint text failed to parse or validate.
    BadConstraint(String),
    /// A malformed wire request (missing field, wrong type, unknown op).
    BadRequest(String),
    /// The request declared a wire-protocol version this server does not
    /// speak (see [`crate::wire::PROTOCOL_VERSION`]).
    UnsupportedVersion {
        /// The version the client asked for.
        requested: i64,
    },
    /// The underlying monitor session failed to apply an event or
    /// touch durable state.
    Monitor(MonitorError),
    /// The service is draining for shutdown and takes no new work.
    ShuttingDown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::AdmissionLimit(n) => {
                write!(f, "admission limit reached ({n} subscriptions)")
            }
            ServerError::TenantLimit(n) => write!(f, "tenant limit reached ({n} tenants)"),
            ServerError::UnknownSubscription(id) => write!(f, "unknown subscription {id}"),
            ServerError::BadConstraint(msg) => write!(f, "bad constraint: {msg}"),
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::UnsupportedVersion { requested } => write!(
                f,
                "unsupported protocol version {requested} (this server speaks {})",
                crate::wire::PROTOCOL_VERSION
            ),
            ServerError::Monitor(e) => write!(f, "monitor error: {e}"),
            ServerError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<MonitorError> for ServerError {
    fn from(e: MonitorError) -> Self {
        ServerError::Monitor(e)
    }
}

impl ServerError {
    /// A stable machine-readable code for the wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ServerError::AdmissionLimit(_) => "admission_limit",
            ServerError::TenantLimit(_) => "tenant_limit",
            ServerError::UnknownSubscription(_) => "unknown_subscription",
            ServerError::BadConstraint(_) => "bad_constraint",
            ServerError::BadRequest(_) => "bad_request",
            ServerError::UnsupportedVersion { .. } => "unsupported_version",
            ServerError::Monitor(_) => "monitor",
            ServerError::ShuttingDown => "shutting_down",
        }
    }

    /// Whether the client should back off and retry later (overload)
    /// rather than treat the refusal as final.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            ServerError::AdmissionLimit(_) | ServerError::TenantLimit(_)
        )
    }
}
