//! The TCP front: line-delimited JSON over per-connection threads.
//!
//! The solver core is single-threaded behind a mutex (fairness
//! accounting must be serial); connection threads only parse, lock,
//! execute, unlock, write. Every wait in this module is deadline-aware —
//! socket read/write timeouts, a condvar-timed accept loop — so shutdown
//! is prompt and nothing busy-spins. `std::thread::sleep` is banned from
//! this crate's request paths (CI greps for it): a sleeping thread can
//! neither notice shutdown nor serve a client.
//!
//! Slow-client policy: a write that times out (or fails) disconnects
//! *that connection only*. The subscription state lives in the core, not
//! the connection, so the client can reconnect and poll; meanwhile its
//! notification queue coalesces in the core rather than blocking the
//! solver.

use crate::service::{ServerCore, ShutdownReport};
use crate::wire::{self, Request};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A wakeable shutdown latch, settable from a Unix signal handler.
///
/// The handler path touches only the atomic (async-signal-safe); the
/// accept loop re-checks the flag on a bounded condvar wait, so a signal
/// is observed within one `accept_wait` even without a wakeup, and a
/// wire-initiated shutdown wakes the loop immediately.
pub struct ShutdownFlag {
    flag: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ShutdownFlag {
    /// A fresh, unset latch.
    pub fn new() -> Arc<ShutdownFlag> {
        Arc::new(ShutdownFlag {
            flag: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Sets the latch and wakes every waiter (normal path).
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _guard = self.lock.lock().unwrap();
        self.cv.notify_all();
    }

    /// Sets the latch without taking any lock — the only operation a
    /// signal handler may perform here.
    pub fn set_from_signal(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Waits up to `timeout` for the latch (early-woken by
    /// [`request`](ShutdownFlag::request)); returns whether it is set.
    pub fn wait(&self, timeout: Duration) -> bool {
        if self.is_set() {
            return true;
        }
        let guard = self.lock.lock().unwrap();
        let _ = self
            .cv
            .wait_timeout_while(guard, timeout, |_| !self.is_set())
            .unwrap();
        self.is_set()
    }
}

static SIGNAL_FLAG: OnceLock<Arc<ShutdownFlag>> = OnceLock::new();

/// Installs `flag` as the process-wide SIGTERM/SIGINT target, so
/// `kill <pid>` triggers the same graceful drain as the wire `shutdown`
/// op. Std-only: goes through libc's `signal(2)` directly.
#[cfg(unix)]
pub fn install_signal_handlers(flag: &Arc<ShutdownFlag>) {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        if let Some(f) = SIGNAL_FLAG.get() {
            f.set_from_signal();
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    let _ = SIGNAL_FLAG.set(Arc::clone(flag));
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// No-op on non-Unix targets (the wire `shutdown` op still works).
#[cfg(not(unix))]
pub fn install_signal_handlers(_flag: &Arc<ShutdownFlag>) {}

/// Network tunables.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Per-read timeout; also the notification-push cadence for idle
    /// connections.
    pub read_timeout: Duration,
    /// Per-write timeout; a slower client is disconnected.
    pub write_timeout: Duration,
    /// How long the accept loop waits between polls (early-woken on
    /// shutdown).
    pub accept_wait: Duration,
    /// Connection admission limit; excess connections get a typed
    /// refusal line and are dropped.
    pub max_connections: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(2),
            accept_wait: Duration::from_millis(200),
            max_connections: 1_024,
        }
    }
}

/// What one serve run did.
#[derive(Debug)]
pub struct NetSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused at the admission limit.
    pub refused: u64,
    /// The core's graceful-shutdown report.
    pub shutdown: ShutdownReport,
}

/// Runs the accept loop until `shutdown` is set, then drains connection
/// threads and gracefully shuts the core down (journal fsync + final
/// snapshot + registry fsync).
pub fn serve(
    core: Arc<Mutex<ServerCore>>,
    listener: TcpListener,
    shutdown: Arc<ShutdownFlag>,
    cfg: NetConfig,
) -> std::io::Result<NetSummary> {
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicU64::new(0));
    let mut accepted = 0u64;
    let mut refused = 0u64;
    let mut handles = Vec::new();
    while !shutdown.is_set() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if live.load(Ordering::SeqCst) >= cfg.max_connections as u64 {
                    refused += 1;
                    refuse_connection(stream, cfg);
                    continue;
                }
                accepted += 1;
                live.fetch_add(1, Ordering::SeqCst);
                let core = Arc::clone(&core);
                let shutdown = Arc::clone(&shutdown);
                let live = Arc::clone(&live);
                handles.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &core, &shutdown, cfg);
                    live.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                shutdown.wait(cfg.accept_wait);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let report = core
        .lock()
        .unwrap()
        .shutdown()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(NetSummary {
        connections: accepted,
        refused,
        shutdown: report,
    })
}

fn refuse_connection(mut stream: TcpStream, cfg: NetConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let line = wire::error_line(&crate::error::ServerError::AdmissionLimit(
        cfg.max_connections,
    ));
    let _ = writeln_all(&mut stream, &line);
}

fn writeln_all(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Accumulates socket bytes and hands out complete lines, preserving
/// partial lines across read timeouts (a `BufRead::read_line` would drop
/// them).
struct LineReader {
    stream: TcpStream,
    acc: Vec<u8>,
}

enum ReadOutcome {
    Line(String),
    /// No complete line yet (read timed out); partial input is kept.
    Idle,
    Closed,
}

impl LineReader {
    fn next_line(&mut self) -> std::io::Result<ReadOutcome> {
        loop {
            if let Some(pos) = self.acc.iter().position(|&b| b == b'\n') {
                let rest = self.acc.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.acc, rest);
                line.pop(); // the '\n'
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let text = String::from_utf8(line)
                    .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
                return Ok(ReadOutcome::Line(text));
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(ReadOutcome::Closed),
                Ok(n) => self.acc.extend_from_slice(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(ReadOutcome::Idle)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    core: &Arc<Mutex<ServerCore>>,
    shutdown: &Arc<ShutdownFlag>,
    cfg: NetConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader {
        stream,
        acc: Vec::new(),
    };
    // Subscriptions admitted on this connection with notify=true; their
    // queued flips are pushed here.
    let mut notify_subs: Vec<u64> = Vec::new();
    loop {
        if shutdown.is_set() {
            return Ok(());
        }
        match reader.next_line()? {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Idle => {
                // Push any queued notifications; a failed/slow write
                // disconnects this client only.
                push_notifications(&mut writer, core, &notify_subs)?;
            }
            ReadOutcome::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = match wire::parse_request(&line) {
                    Err(e) => wire::error_line(&e),
                    Ok(req) => execute(req, core, shutdown, &mut notify_subs),
                };
                writeln_all(&mut writer, &response)?;
                push_notifications(&mut writer, core, &notify_subs)?;
            }
        }
    }
}

fn push_notifications(
    writer: &mut TcpStream,
    core: &Arc<Mutex<ServerCore>>,
    notify_subs: &[u64],
) -> std::io::Result<()> {
    if notify_subs.is_empty() {
        return Ok(());
    }
    let notes = core.lock().unwrap().take_notifications(notify_subs, 256);
    for n in notes {
        writeln_all(writer, &wire::notify_line(&n))?;
    }
    Ok(())
}

fn execute(
    req: Request,
    core: &Arc<Mutex<ServerCore>>,
    shutdown: &Arc<ShutdownFlag>,
    notify_subs: &mut Vec<u64>,
) -> String {
    let mut core = core.lock().unwrap();
    match req {
        Request::Subscribe {
            tenant,
            name,
            constraint,
            weight,
            notify,
        } => match core.subscribe(&tenant, &name, &constraint, weight, notify) {
            Ok(id) => {
                if notify {
                    notify_subs.push(id);
                }
                wire::Line::new().bool("ok", true).num("sub", id).finish()
            }
            Err(e) => wire::error_line(&e),
        },
        Request::Unsubscribe { sub } => match core.unsubscribe(sub) {
            Ok(()) => {
                notify_subs.retain(|&s| s != sub);
                wire::Line::new().bool("ok", true).finish()
            }
            Err(e) => wire::error_line(&e),
        },
        Request::Poll { sub } => match core.poll(sub) {
            Ok(snap) => wire::poll_line(&snap),
            Err(e) => wire::error_line(&e),
        },
        Request::Event { payload } => match bcdb_monitor::ChainEvent::decode(&payload) {
            Err(e) => wire::error_line(&crate::error::ServerError::BadRequest(format!(
                "bad event payload: {}",
                e.0
            ))),
            Ok(event) => match core.ingest(&event) {
                Err(e) => wire::error_line(&e),
                Ok(()) => {
                    let round = core.run_round();
                    wire::Line::new()
                        .bool("ok", true)
                        .num("epoch", core.epoch())
                        .num("checked", round.checks as u64)
                        .num("refused", round.refusals as u64)
                        .num("flips", round.flips as u64)
                        .str("shed_level", round.level.label())
                        .finish()
                }
            },
        },
        Request::Stats { tenant } => {
            let stats = core.stats();
            match tenant {
                None => wire::stats_line(&stats, None),
                Some(name) => match core.tenant_stats(&name) {
                    Some(t) => wire::stats_line(&stats, Some((name.as_str(), &t))),
                    None => wire::error_line(&crate::error::ServerError::BadRequest(format!(
                        "unknown tenant {name:?}"
                    ))),
                },
            }
        }
        Request::Shutdown => {
            core.drain();
            shutdown.request();
            wire::Line::new().bool("ok", true).str("state", "draining").finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use bcdb_chain::{export, generate, ScenarioConfig};
    use bcdb_monitor::diff::reorg_event;
    use std::io::BufRead;

    fn request(
        reader: &mut std::io::BufReader<TcpStream>,
        writer: &mut TcpStream,
        line: &str,
    ) -> std::collections::BTreeMap<String, wire::Scalar> {
        writeln_all(writer, line).unwrap();
        loop {
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            let map = wire::parse_flat(resp.trim_end()).unwrap();
            // Skip interleaved notification pushes.
            if !map.contains_key("op") {
                return map;
            }
        }
    }

    /// End-to-end over a real socket: subscribe, ingest an event, poll,
    /// stats, graceful shutdown.
    #[test]
    fn wire_round_trip_over_tcp() {
        let scenario = generate(&ScenarioConfig {
            seed: 7,
            ..ScenarioConfig::default()
        });
        let ex = export(&scenario).unwrap();
        let core = Arc::new(Mutex::new(ServerCore::new_in_memory(
            ex.catalog.clone(),
            ex.constraints.clone(),
            ServeConfig::default(),
        )));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownFlag::new();
        let cfg = NetConfig {
            read_timeout: Duration::from_millis(50),
            accept_wait: Duration::from_millis(50),
            ..NetConfig::default()
        };
        let server = {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || serve(core, listener, shutdown, cfg))
        };

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);

        let resp = request(
            &mut reader,
            &mut writer,
            r#"{"op":"subscribe","tenant":"acme","name":"double-spend","constraint":"q() <- TxIn(p1, s1, k, a1, n1, g1), TxIn(p2, s2, k, a2, n2, g2), n1 != n2","weight":2}"#,
        );
        assert_eq!(resp["ok"], wire::Scalar::Bool(true), "subscribe: {resp:?}");
        let sub = match resp["sub"] {
            wire::Scalar::Num(n) => n,
            _ => panic!("no sub id"),
        };

        // Malformed request → typed error, connection stays up.
        let resp = request(&mut reader, &mut writer, r#"{"op":"warp"}"#);
        assert_eq!(resp["ok"], wire::Scalar::Bool(false));
        assert_eq!(resp["error"], wire::Scalar::Str("bad_request".into()));

        // Ingest the scenario snapshot as a resync event.
        let payload = reorg_event(&ex, 0).encode();
        let line = wire::Line::new()
            .str("op", "event")
            .str("payload", &payload)
            .finish();
        let resp = request(&mut reader, &mut writer, &line);
        assert_eq!(resp["ok"], wire::Scalar::Bool(true), "event: {resp:?}");

        let resp = request(&mut reader, &mut writer, &format!(r#"{{"op":"poll","sub":{sub}}}"#));
        assert_eq!(resp["ok"], wire::Scalar::Bool(true));
        let verdict = match &resp["verdict"] {
            wire::Scalar::Str(s) => s.clone(),
            _ => panic!("no verdict"),
        };
        assert!(
            ["holds", "violated", "unknown"].contains(&verdict.as_str()),
            "verdict {verdict:?}"
        );

        let resp = request(&mut reader, &mut writer, r#"{"op":"stats"}"#);
        assert_eq!(resp["subscriptions"], wire::Scalar::Num(1));

        let resp = request(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
        assert_eq!(resp["ok"], wire::Scalar::Bool(true));
        let summary = server.join().unwrap().unwrap();
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn shutdown_flag_wakes_waiters_early() {
        let flag = ShutdownFlag::new();
        let gate = Arc::new(std::sync::Barrier::new(2));
        let waiter = {
            let flag = Arc::clone(&flag);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let t0 = std::time::Instant::now();
                assert!(flag.wait(Duration::from_secs(10)));
                t0.elapsed()
            })
        };
        gate.wait();
        // Give the waiter a beat to enter the condvar wait (no sleep in
        // this crate — a timed park serves the same purpose).
        std::thread::park_timeout(Duration::from_millis(30));
        flag.request();
        let waited = waiter.join().unwrap();
        assert!(waited < Duration::from_secs(5), "woke after {waited:?}");
    }
}
