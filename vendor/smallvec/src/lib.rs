//! Offline stand-in for the `smallvec` crate.
//!
//! `SmallVec<[T; N]>` here is a thin wrapper over `Vec<T>` — it keeps the
//! type-level API (the `Array` bound, `smallvec!`) without the inline
//! storage optimization. Vendored because the build environment has no
//! registry access; see `vendor/README.md`. Swap back to the real crate
//! when a registry is available to regain the small-size optimization.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Types usable as the backing-array parameter of [`SmallVec`].
pub trait Array {
    /// The element type.
    type Item;
    /// The inline capacity the real crate would reserve.
    fn size() -> usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;

    fn size() -> usize {
        N
    }
}

/// A growable vector; inline-storage-free stand-in for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// An empty vector.
    #[inline]
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// An empty vector with at least `cap` capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Clears the vector.
    #[inline]
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Removes consecutive repeated elements.
    #[inline]
    pub fn dedup(&mut self)
    where
        A::Item: PartialEq,
    {
        self.inner.dedup();
    }

    /// Keeps only the elements the predicate accepts.
    #[inline]
    pub fn retain(&mut self, f: impl FnMut(&mut A::Item) -> bool) {
        self.inner.retain_mut(f);
    }

    /// Converts into a plain `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// Borrows the elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> std::ops::Deref for SmallVec<A> {
    type Target = [A::Item];

    #[inline]
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> std::ops::DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(inner: Vec<A::Item>) -> Self {
        SmallVec { inner }
    }
}

/// Constructs a [`SmallVec`], mirroring `vec!` syntax.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {
        $crate::SmallVec::from(vec![$($x),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut v: SmallVec<[i32; 4]> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 1);
        assert_eq!(v.pop(), Some(2));
        let w: SmallVec<[i32; 4]> = (0..3).collect();
        assert_eq!(w.as_slice(), &[0, 1, 2]);
        let m: SmallVec<[i32; 2]> = smallvec![7, 8, 9];
        assert_eq!(m.into_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn usable_as_map_key() {
        let mut m = std::collections::HashMap::new();
        let k: SmallVec<[u8; 4]> = smallvec![1, 2];
        m.insert(k.clone(), "x");
        assert_eq!(m.get(&k), Some(&"x"));
    }
}
