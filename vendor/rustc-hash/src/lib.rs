//! Offline stand-in for the `rustc-hash` crate.
//!
//! Provides [`FxHashMap`] / [`FxHashSet`] over the classic Fx hasher
//! (multiply-by-constant with word folding), API-compatible with the
//! subset of `rustc-hash` 2.x this workspace uses. Vendored because the
//! build environment has no registry access; see `vendor/README.md`.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasherDefault` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx hash function: fast, non-cryptographic, word-at-a-time.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u64> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
