//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements the pieces this workspace uses — [`SeedableRng`],
//! [`Rng::random_range`] / [`Rng::random_bool`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] — over a xoshiro256++ generator seeded via
//! SplitMix64. Deterministic given a seed, which is all the workload
//! generators and Monte Carlo estimators here require. Vendored because
//! the build environment has no registry access; see `vendor/README.md`.

use std::ops::{Bound, RangeBounds};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types samplable by [`Rng::random_range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Converts to the u64 sampling domain (order-preserving).
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
    /// The largest representable value.
    fn max_value() -> Self;
    /// The value one greater, saturating.
    fn succ(self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
            fn max_value() -> Self { <$t>::MAX }
            fn succ(self) -> Self { self.saturating_add(1) }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            // Order-preserving shift into the unsigned domain.
            fn to_u64(self) -> u64 { (self as i64).wrapping_sub(i64::MIN) as u64 }
            fn from_u64(v: u64) -> Self { (v as i64).wrapping_add(i64::MIN) as $t }
            fn max_value() -> Self { <$t>::MAX }
            fn succ(self) -> Self { self.saturating_add(1) }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (panics if the range is empty).
    fn random_range<T: UniformSample, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x.to_u64(),
            Bound::Excluded(&x) => x.to_u64() + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x.to_u64(),
            Bound::Excluded(&x) => x.to_u64().checked_sub(1).expect("empty range"),
            Bound::Unbounded => T::max_value().to_u64(),
        };
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        // Debiased multiply-shift rejection sampling (Lemire).
        let span = span + 1;
        loop {
            let x = self.next_u64();
            let (hi_part, lo_part) = {
                let wide = (x as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo_part >= span.wrapping_neg() % span {
                return T::from_u64(lo + hi_part);
            }
            // Extremely rare rejection; resample.
            let _ = lo_part;
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// (The real `StdRng` is ChaCha12; the workloads here need
    /// determinism-given-seed, not cryptographic quality.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is invalid for xoshiro; splitmix cannot
            // produce four zero words from any input, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(50..1000i64);
            assert!((50..1000).contains(&x));
            let y = rng.random_range(1..=5usize);
            assert!((1..=5).contains(&y));
            let z = rng.random_range(-3..3i64);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
