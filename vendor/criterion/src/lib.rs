//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness API subset this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`) with a
//! plain mean-of-N wall-clock measurement and one-line text output — no
//! statistics, plots, or comparison to previous runs. Vendored because
//! the build environment has no registry access; see `vendor/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored; every batch
/// runs one setup + one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Opaque blackbox to prevent the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted but ignored, except
    /// that a single positional filter argument is honored via
    /// `CRITERION_FILTER`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = id.into_id();
        self.run_one(&id, 10, f);
    }

    fn run_one(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Ok(filter) = std::env::var("CRITERION_FILTER") {
            if !id.contains(&filter) {
                return;
            }
        }
        // Warm-up run (not timed).
        let mut warmup = Bencher {
            iters: 1,
            total: Duration::ZERO,
        };
        f(&mut warmup);
        let mut b = Bencher {
            iters: sample_size as u64,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.total / sample_size as u32;
        println!("bench {id:<60} {:>12.3?}/iter (n={sample_size})", mean);
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the bench `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if let Some(filter) = std::env::args().nth(1).filter(|a| !a.starts_with('-')) {
                std::env::set_var("CRITERION_FILTER", filter);
            }
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().configure_from_args();
        sample_bench(&mut c);
    }
}
