//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest, a strategy here is just a generator: there is
/// no value tree and no shrinking. `new_value` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate (up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erases the strategy into a boxed generator function (used by
    /// `prop_oneof!`).
    fn boxed_gen(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(move |rng| self.new_value(rng))
    }
}

/// A type-erased generator function.
pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive values", self.whence);
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedGen<T>>,
}

impl<T> Union<T> {
    /// Wraps the given generator arms (must be non-empty).
    pub fn new(arms: Vec<BoxedGen<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// `prop::bool::ANY`.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $to:ident / $from:ident),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = $to(self.start);
                let hi = $to(self.end) - 1;
                $from(lo + rng.below(hi - lo + 1))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = $to(*self.start());
                let hi = $to(*self.end());
                if lo == 0 && hi == u64::MAX {
                    return $from(rng.next_u64());
                }
                $from(lo + rng.below(hi - lo + 1))
            }
        }
    )*};
}

fn unsigned_to_u64<T: Into<u64>>(x: T) -> u64 {
    x.into()
}

fn u64_to_usize(x: u64) -> usize {
    x as usize
}

fn usize_to_u64(x: usize) -> u64 {
    x as u64
}

fn u64_to_u64(x: u64) -> u64 {
    x
}

fn u64_to_u32(x: u64) -> u32 {
    x as u32
}

fn u64_to_u16(x: u64) -> u16 {
    x as u16
}

fn u64_to_u8(x: u64) -> u8 {
    x as u8
}

fn signed_to_u64(x: i64) -> u64 {
    x.wrapping_sub(i64::MIN) as u64
}

fn u64_to_i64(x: u64) -> i64 {
    (x as i64).wrapping_add(i64::MIN)
}

fn i32_to_u64(x: i32) -> u64 {
    signed_to_u64(x as i64)
}

fn u64_to_i32(x: u64) -> i32 {
    u64_to_i64(x) as i32
}

impl_range_strategy! {
    u8 => unsigned_to_u64 / u64_to_u8,
    u16 => unsigned_to_u64 / u64_to_u16,
    u32 => unsigned_to_u64 / u64_to_u32,
    u64 => u64_to_u64 / u64_to_u64,
    usize => usize_to_u64 / u64_to_usize,
    i32 => i32_to_u64 / u64_to_i32,
    i64 => signed_to_u64 / u64_to_i64,
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

/// An inclusive-exclusive size band for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length falls in `size` (see
/// `prop::collection::vec`).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
