//! The deterministic case runner and its configuration.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (the prelude re-exports this as `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejection is only used by
    /// `prop_filter`, which retries internally.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// A failed (or, for API compatibility, rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] for API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The runner's RNG: SplitMix64, seeded per (test name, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `0..n` (panics if `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift with one debiasing retry band (Lemire).
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The base seed for a property: `PROPTEST_SEED` (decimal or `0x`-hex) when
/// set — so CI can pin a whole run — mixed with the property name so two
/// properties pinned to the same seed still explore different inputs.
fn base_seed(name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            };
            let pinned =
                parsed.unwrap_or_else(|| panic!("PROPTEST_SEED must be a u64, got '{s}'"));
            pinned ^ fnv1a(name)
        }
        Err(_) => fnv1a(name),
    }
}

fn seed_for(base: u64, case: u64) -> u64 {
    base ^ (0x517c_c1b7_2722_0a95u64.wrapping_mul(case + 1))
}

/// Where regression seeds for `name` are persisted. Overridable with
/// `PROPTEST_REGRESSIONS_DIR`; defaults to `proptest-regressions/` under the
/// test binary's working directory (the crate root under `cargo test`).
fn regression_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::var("PROPTEST_REGRESSIONS_DIR")
        .unwrap_or_else(|_| "proptest-regressions".to_string());
    let file: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    std::path::Path::new(&dir).join(format!("{file}.txt"))
}

fn load_regression_seeds(name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(name)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let line = line.strip_prefix("0x").unwrap_or(line);
            u64::from_str_radix(line, 16).ok()
        })
        .collect()
}

fn persist_regression_seed(name: &str, seed: u64) {
    let path = regression_path(name);
    if load_regression_seeds(name).contains(&seed) {
        return;
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        format!(
            "# Seeds of failing cases for proptest property '{name}'.\n\
             # Replayed before fresh random cases on every run; safe to delete\n\
             # once the underlying bug is fixed.\n"
        )
    });
    text.push_str(&format!("0x{seed:016x}\n"));
    let _ = std::fs::write(&path, text);
}

/// Runs `cases` random cases of a property: generate an input tuple with
/// `generate`, check it with `check`, and panic with the offending input
/// on the first failure. Called by the `proptest!` macro expansion.
///
/// Before the random cases, any seeds recorded in
/// `proptest-regressions/<name>.txt` are replayed; a fresh failure appends
/// its seed there so the case is pinned on subsequent runs.
pub fn run_cases<V, G, F>(name: &str, config: &Config, mut generate: G, mut check: F)
where
    V: fmt::Debug,
    G: FnMut(&mut TestRng) -> V,
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    let mut run_one = |seed: u64, label: &str| {
        let mut rng = TestRng::new(seed);
        let value = generate(&mut rng);
        let described = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| check(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                persist_regression_seed(name, seed);
                panic!(
                    "proptest: property '{name}' failed at {label} (seed 0x{seed:016x}):\n{e}\ninput: {described}",
                )
            }
            Err(payload) => {
                persist_regression_seed(name, seed);
                eprintln!(
                    "proptest: property '{name}' panicked at {label} (seed 0x{seed:016x}) on input: {described}",
                );
                resume_unwind(payload);
            }
        }
    };
    for (i, seed) in load_regression_seeds(name).into_iter().enumerate() {
        run_one(seed, &format!("regression replay {i}"));
    }
    let base = base_seed(name);
    for case in 0..config.cases {
        run_one(
            seed_for(base, case as u64),
            &format!("case {case}/{}", config.cases),
        );
    }
}
