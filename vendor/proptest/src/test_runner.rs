//! The deterministic case runner and its configuration.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (the prelude re-exports this as `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejection is only used by
    /// `prop_filter`, which retries internally.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// A failed (or, for API compatibility, rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] for API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The runner's RNG: SplitMix64, seeded per (test name, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `0..n` (panics if `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift with one debiasing retry band (Lemire).
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `cases` random cases of a property: generate an input tuple with
/// `generate`, check it with `check`, and panic with the offending input
/// on the first failure. Called by the `proptest!` macro expansion.
pub fn run_cases<V, G, F>(name: &str, config: &Config, generate: G, check: F)
where
    V: fmt::Debug,
    G: Fn(&mut TestRng) -> V,
    F: Fn(V) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(base ^ (0x517c_c1b7_2722_0a95u64.wrapping_mul(case as u64 + 1)));
        let value = generate(&mut rng);
        let described = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| check(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest: property '{name}' failed at case {case}/{}:\n{e}\ninput: {described}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest: property '{name}' panicked at case {case}/{} on input: {described}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}
