//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`Strategy`](crate::strategy::Strategy) trait over integer ranges, tuples, `Just`, mapped /
//! flat-mapped strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, and a deterministic case runner. **No shrinking**: a failing
//! case reports its generated input verbatim instead of minimizing it.
//! Vendored because the build environment has no registry access; see
//! `vendor/README.md`.
//!
//! Determinism: each test derives its RNG seed from the test name (FNV)
//! and the case index, so failures reproduce across runs. Set
//! `PROPTEST_CASES` to override the per-test case count globally, and
//! `PROPTEST_SEED` to pin the base seed (it is mixed with the test name,
//! so distinct properties still explore distinct inputs).
//!
//! Regression persistence: the seed of a failing case is appended to
//! `proptest-regressions/<test_name>.txt` (override the directory with
//! `PROPTEST_REGRESSIONS_DIR`) and replayed before fresh random cases on
//! every subsequent run — check these files in so a found bug stays
//! covered until fixed.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }

    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::BoolAny as BoolStrategy;

        /// Generates `true` or `false` with equal probability.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |__rng| ( $( $crate::strategy::Strategy::new_value(&($strat), __rng) ),+ , ),
                    |( $($pat),+ , )| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            lhs, rhs, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            lhs
        );
    }};
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed_gen($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0..10i64, (a, b) in (0..5usize, 1..=3u64)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(prop::bool::ANY, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn flat_map_scales(v in (1..=4usize).prop_flat_map(|n|
            prop::collection::vec(0..100i64, n).prop_map(move |xs| (n, xs))))
        {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1i64), Just(2), 10..20i64]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }
    }

    /// Serializes the tests that touch `PROPTEST_REGRESSIONS_DIR`, and
    /// points it at a scratch directory so failing cases in this module
    /// never pollute the repository's real regression files.
    fn scratch_regressions_dir() -> (std::sync::MutexGuard<'static, ()>, std::path::PathBuf) {
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("proptest-regr-{}", std::process::id()));
        std::env::set_var("PROPTEST_REGRESSIONS_DIR", &dir);
        (guard, dir)
    }

    #[test]
    fn failing_property_panics_with_input() {
        let (_guard, dir) = scratch_regressions_dir();
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                "failing_property_panics_with_input",
                &crate::test_runner::Config {
                    cases: 8,
                    ..Default::default()
                },
                |rng| (crate::strategy::Strategy::new_value(&(0..100i64), rng),),
                |(x,)| {
                    prop_assert_eq!(x, -1i64);
                    Ok(())
                },
            );
        });
        std::env::remove_var("PROPTEST_REGRESSIONS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
        let msg = *result.expect_err("property must fail").downcast::<String>().unwrap();
        assert!(msg.contains("left"), "panic message shows the input: {msg}");
    }

    #[test]
    fn failing_seed_is_persisted_and_replayed_first() {
        let (_guard, dir) = scratch_regressions_dir();
        let name = "persist_and_replay_demo";
        let config = crate::test_runner::Config {
            cases: 4,
            ..Default::default()
        };
        let gen = |rng: &mut crate::test_runner::TestRng| rng.next_u64() % 1000;
        // First run: every case fails; the first failing seed is recorded.
        let failed = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(name, &config, gen, |_| {
                Err(TestCaseError::fail("always fails"))
            });
        })
        .is_err();
        assert!(failed);
        let path = dir.join(format!("{name}.txt"));
        let text = std::fs::read_to_string(&path).expect("regression file written");
        let seeds: Vec<&str> = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .collect();
        assert_eq!(seeds.len(), 1, "one failing seed recorded: {text}");

        // Second run: the recorded seed replays before the fresh cases, and
        // a duplicate failure does not grow the file.
        let mut inputs = Vec::new();
        let failed_again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::test_runner::run_cases(name, &config, gen, |v| {
                inputs.push(v);
                Err(TestCaseError::fail("still fails"))
            });
        }))
        .is_err();
        assert!(failed_again);
        assert_eq!(inputs.len(), 1, "replayed regression fails before fresh cases");
        let text2 = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, text2, "duplicate seed is not appended");

        // A passing property replays the regression and then runs all the
        // fresh cases: cases + 1 executions in total.
        let mut count = 0usize;
        crate::test_runner::run_cases(name, &config, gen, |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, config.cases as usize + 1);

        std::env::remove_var("PROPTEST_REGRESSIONS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_seed_changes_inputs_and_reproduces() {
        let config = crate::test_runner::Config {
            cases: 6,
            ..Default::default()
        };
        let gen = |rng: &mut crate::test_runner::TestRng| rng.next_u64();
        let collect = |name: &str| {
            let mut v = Vec::new();
            crate::test_runner::run_cases(name, &config, gen, |x| {
                v.push(x);
                Ok(())
            });
            v
        };
        // run_cases reads PROPTEST_SEED per call; pin it, sample, re-pin.
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("PROPTEST_SEED", "12345");
        let a = collect("pinned_seed_demo");
        let b = collect("pinned_seed_demo");
        let other = collect("pinned_seed_demo_other_name");
        std::env::set_var("PROPTEST_SEED", "0xdeadbeef");
        let c = collect("pinned_seed_demo");
        std::env::remove_var("PROPTEST_SEED");
        let unpinned = collect("pinned_seed_demo");
        assert_eq!(a, b, "same pinned seed reproduces");
        assert_ne!(a, other, "name still differentiates pinned runs");
        assert_ne!(a, c, "different pinned seed explores different inputs");
        assert_ne!(a, unpinned, "pinned run differs from the name-derived default");
    }
}
