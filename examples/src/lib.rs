//! Examples live in `src/bin`.
