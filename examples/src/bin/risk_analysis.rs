//! Likelihood-weighted reasoning (the paper's future-work item).
//!
//! A [`Solver`] check answers "can the bad outcome happen at all?". This
//! example goes one step further: given acceptance probabilities learned from fee rates
//! (miners prefer high-fee transactions), how *likely* is the bad outcome?
//!
//! Scenario: a merchant ships goods once a payment is "sure enough". A
//! pending payment to the merchant conflicts with a same-coin double spend
//! the buyer also broadcast. The solver says the merchant *might* be paid
//! (and might not); the risk analysis quantifies both futures under
//! different fee choices.
//!
//! Run with: `cargo run -p bcdb-examples --bin risk_analysis --release`

use bcdb_chain::{
    export, feerate_probabilities, Block, Blockchain, ChainParams, KeyPair, Keyring, Mempool,
    OutPoint, Scenario, ScenarioConfig, ScriptPubKey, ScriptSig, Transaction, TxInput, TxOutput,
};
use bcdb_core::{
    estimate_violation_risk, BlockchainDb, PerTxAcceptance, Precomputed, PreparedConstraint,
    Solver, UniformAcceptance,
};
use bcdb_query::parse_denial_constraint;

const BTC: u64 = 100_000_000;

fn p2pk(kp: &KeyPair, value: u64) -> TxOutput {
    TxOutput {
        value,
        script: ScriptPubKey::P2pk(kp.public().clone()),
    }
}

fn pay(from: &KeyPair, prev: OutPoint, outs: Vec<TxOutput>) -> Transaction {
    let msg = Transaction::signing_digest(&[prev], &outs);
    Transaction::new(
        vec![TxInput {
            prev,
            script_sig: ScriptSig::Sig(from.sign(&msg)),
            spender: from.public().clone(),
        }],
        outs,
    )
}

fn load(scenario: &Scenario) -> BlockchainDb {
    let e = export(scenario).expect("consistent scenario");
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    for (name, tuples) in e.pending {
        db.add_transaction(name, tuples).unwrap();
    }
    db
}

fn main() {
    let buyer = KeyPair::from_secret(31);
    let merchant = KeyPair::from_secret(32);
    let keys = vec![buyer.clone(), merchant.clone()];
    let ring = Keyring::new(&keys);

    let mut chain = Blockchain::new(ChainParams::default());
    let funding = Transaction::new(vec![], vec![p2pk(&buyer, 2 * BTC)]);
    chain
        .append(
            Block::new(1, chain.tip().hash(), vec![funding.clone()]),
            &ring,
        )
        .unwrap();

    // Two fee scenarios for the honest payment vs the double spend.
    for (label, merchant_fee, doublespend_fee) in [
        (
            "merchant payment carries the higher fee",
            80_000u64,
            2_000u64,
        ),
        ("double spend carries the higher fee", 2_000u64, 80_000u64),
    ] {
        let mut mempool = Mempool::new();
        // Honest payment: 1 BTC to the merchant.
        let honest = pay(
            &buyer,
            funding.outpoint(1),
            vec![p2pk(&merchant, BTC), p2pk(&buyer, BTC - merchant_fee)],
        );
        mempool.insert(&chain, honest).unwrap();
        // Double spend: everything back to the buyer.
        let dspend = pay(
            &buyer,
            funding.outpoint(1),
            vec![p2pk(&buyer, 2 * BTC - doublespend_fee)],
        );
        mempool.insert(&chain, dspend).unwrap();

        let scenario = Scenario {
            chain: chain.clone(),
            mempool,
            keys: keys.clone(),
            config: ScenarioConfig::default(),
        };
        let db = load(&scenario);

        // "The merchant is paid 1 BTC" — as a denial constraint this is the
        // *negated* outcome; here we use it as the event whose probability
        // we want.
        let paid = parse_denial_constraint(
            &format!(
                "q() <- TxOut(t, s, '{}', {})",
                merchant.public().as_str(),
                BTC
            ),
            db.database().catalog(),
        )
        .unwrap();

        let mut solver = Solver::builder(db).build();
        let outcome = solver.check_ungoverned(&paid).unwrap();
        let mut db = solver.into_db();
        let pre = Precomputed::build(&db);
        let pc = PreparedConstraint::prepare(db.database_mut(), &paid);

        // Fee-rate model: probabilities follow fee-rate rank.
        let probs = feerate_probabilities(&scenario, 0.25, 0.95);
        let feerate =
            estimate_violation_risk(&db, &pre, &pc, &PerTxAcceptance(probs.clone()), 5_000, 7);
        // Indifferent model for contrast.
        let uniform = estimate_violation_risk(&db, &pre, &pc, &UniformAcceptance(0.6), 5_000, 7);

        println!("--- {label} ---");
        println!(
            "  solver: payment possible = {} (and so is its absence: conflicting double spend)",
            !outcome.satisfied
        );
        println!(
            "  P(merchant paid) ≈ {:.3} under the fee-rate model (fees: honest {}, double spend {})",
            feerate.violation_probability, merchant_fee, doublespend_fee
        );
        println!(
            "  P(merchant paid) ≈ {:.3} under a uniform 0.6 model",
            uniform.violation_probability
        );
        assert!(!outcome.satisfied);
    }
    println!("risk_analysis: higher relative fee should raise the payment's probability");
}
