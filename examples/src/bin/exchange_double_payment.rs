//! The exchange's double-payment problem (the paper's motivating example
//! and Example 4), played out on the simulated chain.
//!
//! Alice (an exchange) pays Bob one bitcoin. The transaction lingers
//! unconfirmed, Bob complains, and Alice must reissue. She dry-runs the
//! denial constraint `q1` — "there exist two distinct transactions paying
//! Bob" — before broadcasting, under two strategies:
//!
//! * **careless**: reissue from a *different* coin — both payments can
//!   land, `q1` is unsatisfiable-proof fails, Alice holds off;
//! * **careful**: reissue spending the *same* coin (higher fee) — the key
//!   constraint on `TxIn` makes the two payments mutually exclusive, `q1`
//!   is satisfied, and the reissue is safe.
//!
//! Run with: `cargo run -p bcdb-examples --bin exchange_double_payment`

use bcdb_chain::{
    export, Block, Blockchain, ChainParams, KeyPair, Keyring, Mempool, Scenario, ScenarioConfig,
    ScriptPubKey, ScriptSig, Transaction, TxInput, TxOutput,
};
use bcdb_core::{BlockchainDb, Solver};
use bcdb_query::parse_denial_constraint;

const BTC: u64 = 100_000_000;

fn p2pk(kp: &KeyPair, value: u64) -> TxOutput {
    TxOutput {
        value,
        script: ScriptPubKey::P2pk(kp.public().clone()),
    }
}

fn pay(from: &KeyPair, prev: bcdb_chain::OutPoint, outs: Vec<TxOutput>) -> Transaction {
    let msg = Transaction::signing_digest(&[prev], &outs);
    Transaction::new(
        vec![TxInput {
            prev,
            script_sig: ScriptSig::Sig(from.sign(&msg)),
            spender: from.public().clone(),
        }],
        outs,
    )
}

fn load(scenario: &Scenario) -> BlockchainDb {
    let e = export(scenario).expect("consistent scenario");
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    for (name, tuples) in e.pending {
        db.add_transaction(name, tuples).unwrap();
    }
    db
}

fn q1_text(alice: &KeyPair, bob: &KeyPair) -> String {
    // Example 4's q1: two different transactions in which Alice pays Bob.
    format!(
        "q() <- TxIn(pt1, ps1, '{a}', am1, ntx1, sg1), TxOut(ntx1, ns1, '{b}', {v}), \
                TxIn(pt2, ps2, '{a}', am2, ntx2, sg2), TxOut(ntx2, ns2, '{b}', {v}), \
                ntx1 != ntx2",
        a = alice.public().as_str(),
        b = bob.public().as_str(),
        v = BTC
    )
}

fn main() {
    let alice = KeyPair::from_secret(1001);
    let bob = KeyPair::from_secret(1002);
    let miner = KeyPair::from_secret(1003);
    let keys = vec![alice.clone(), bob.clone(), miner.clone()];
    let ring = Keyring::new(&keys);

    // Fund Alice with two 2-BTC coins.
    let mut chain = Blockchain::new(ChainParams::default());
    let funding = Transaction::new(vec![], vec![p2pk(&alice, 2 * BTC), p2pk(&alice, 2 * BTC)]);
    chain
        .append(
            Block::new(1, chain.tip().hash(), vec![funding.clone()]),
            &ring,
        )
        .unwrap();

    // The original (stuck) payment: 1 BTC to Bob from coin #1, low fee.
    let stuck = pay(
        &alice,
        funding.outpoint(1),
        vec![p2pk(&bob, BTC), p2pk(&alice, BTC - 1_000)],
    );
    let mut mempool = Mempool::new();
    mempool.insert(&chain, stuck.clone()).unwrap();
    println!(
        "original payment {} is stuck in the mempool",
        stuck.txid().short()
    );

    let q1 = q1_text(&alice, &bob);

    // --- Careless reissue: a fresh coin. Both payments may confirm. ---
    {
        let mut pool = mempool.clone();
        let reissue = pay(
            &alice,
            funding.outpoint(2),
            vec![p2pk(&bob, BTC), p2pk(&alice, BTC - 50_000)],
        );
        pool.insert(&chain, reissue).unwrap();
        let scenario = Scenario {
            chain: chain.clone(),
            mempool: pool,
            keys: keys.clone(),
            config: ScenarioConfig::default(),
        };
        let db = load(&scenario);
        let dc = parse_denial_constraint(&q1, db.database().catalog()).unwrap();
        let outcome = Solver::builder(db).build().check_ungoverned(&dc).unwrap();
        println!(
            "careless reissue: q1 satisfied = {} -> {}",
            outcome.satisfied,
            if outcome.satisfied {
                "safe"
            } else {
                "DANGER: Bob can be paid twice; do not broadcast"
            }
        );
        assert!(!outcome.satisfied);
        let w = outcome.witness.unwrap();
        println!(
            "  witness world appends {} pending transaction(s) — both payments",
            w.tx_count()
        );
    }

    // --- Careful reissue: the SAME coin, higher fee. Mutually exclusive. ---
    {
        let mut pool = mempool.clone();
        let reissue = pay(
            &alice,
            funding.outpoint(1), // same input as the stuck payment
            vec![p2pk(&bob, BTC), p2pk(&alice, BTC - 50_000)],
        );
        pool.insert(&chain, reissue.clone()).unwrap();
        let scenario = Scenario {
            chain: chain.clone(),
            mempool: pool,
            keys: keys.clone(),
            config: ScenarioConfig::default(),
        };
        let db = load(&scenario);
        let dc = parse_denial_constraint(&q1, db.database().catalog()).unwrap();
        let outcome = Solver::builder(db).build().check_ungoverned(&dc).unwrap();
        println!(
            "careful reissue ({}): q1 satisfied = {} -> safe to broadcast",
            reissue.txid().short(),
            outcome.satisfied
        );
        assert!(outcome.satisfied);
    }
    println!("exchange_double_payment: done");
}
