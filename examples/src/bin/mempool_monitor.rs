//! A node-side safety monitor: re-checks denial constraints as blocks are
//! mined and the mempool churns.
//!
//! Simulates several rounds of network activity with `bcdb-chain`. Each
//! round: new payments (and an occasional double spend) enter the mempool,
//! the monitor exports the chain+mempool into a blockchain database,
//! opens a [`Solver`] session (which builds the steady-state structures of
//! §6.3 once), and evaluates a watch-list of denial constraints; then a
//! block is mined and the mempool purged. Within a round, a late-arriving
//! transaction is absorbed through the session's *incremental* update
//! rather than a rebuild.
//!
//! Run with: `cargo run -p bcdb-examples --bin mempool_monitor --release`

use bcdb_chain::{build_block_template, export, generate, Keyring, Scenario, ScenarioConfig};
use bcdb_core::{BlockchainDb, Solver};
use bcdb_query::parse_denial_constraint;
use std::time::Instant;

fn load(scenario: &Scenario) -> BlockchainDb {
    let e = export(scenario).expect("consistent scenario");
    let mut db = BlockchainDb::new(e.catalog, e.constraints);
    for (rel, t) in e.base {
        db.insert_current(rel, t).unwrap();
    }
    for (name, tuples) in e.pending {
        db.add_transaction(name, tuples).unwrap();
    }
    db
}

fn main() {
    // Seed scenario: a modest chain with an active mempool including
    // injected double spends.
    let mut scenario = generate(&ScenarioConfig {
        seed: 2024,
        wallets: 25,
        blocks: 30,
        txs_per_block: 12,
        pending_txs: 120,
        contradictions: 6,
        chain_dependency_pct: 35,
        ..ScenarioConfig::default()
    });

    println!(
        "monitor start: height {}, {} pending, {} double-spend pairs",
        scenario.chain.height(),
        scenario.mempool.len(),
        scenario.mempool.conflict_pairs().len()
    );

    for round in 1..=5 {
        let db = load(&scenario);
        let t0 = Instant::now();
        let mut solver = Solver::builder(db).build();
        let build_ms = t0.elapsed().as_millis();

        // Watch list: a canary address must never receive coins, and no
        // outpoint may be spendable twice.
        let watch = [
            (
                "canary address untouched",
                "q() <- TxOut(t, s, 'pkCANARY000', a)".to_string(),
            ),
            (
                "no double spends can confirm",
                "q() <- TxIn(pt, ps, pk, a, n1, g1), TxIn(pt, ps, pk2, a2, n2, g2), n1 != n2"
                    .to_string(),
            ),
        ];
        for (label, text) in &watch {
            let dc = parse_denial_constraint(text, solver.db().database().catalog()).unwrap();
            let t1 = Instant::now();
            let outcome = solver.check_ungoverned(&dc).unwrap();
            println!(
                "round {round}: [{}] {label}: satisfied = {} ({} ms, via {})",
                if outcome.satisfied { "OK " } else { "ALRT" },
                outcome.satisfied,
                t1.elapsed().as_millis(),
                outcome.stats.algorithm
            );
            assert!(outcome.satisfied, "watch-list constraint must hold");
        }
        println!(
            "round {round}: steady-state rebuild {build_ms} ms, {} pending, {} conflicts",
            scenario.mempool.len(),
            scenario.mempool.conflict_pairs().len()
        );

        // A transaction arrives mid-round: the session absorbs it through
        // the incremental steady-state update (§6.3 dynamics) instead of a
        // rebuild, then re-checks the watch list.
        let txout = solver.db().database().catalog().resolve("TxOut").unwrap();
        let t2 = Instant::now();
        solver
            .add_transaction(
                format!("late-{round}"),
                [(
                    txout,
                    bcdb_storage::tuple![format!("latetx{round}"), 1i64, "pkLATECOMER", 1000i64],
                )],
            )
            .unwrap();
        let dc = parse_denial_constraint(&watch[0].1, solver.db().database().catalog()).unwrap();
        let outcome = solver.check_ungoverned(&dc).unwrap();
        println!(
            "round {round}: late arrival absorbed incrementally in {} µs; watch[0] still {}",
            t2.elapsed().as_micros(),
            outcome.satisfied
        );

        // The network mines a block; the node purges its mempool.
        let keys = scenario.keys.clone();
        let ring = Keyring::new(&keys);
        let block = build_block_template(&scenario.chain, &scenario.mempool, &ring, &keys[0]);
        let mined: Vec<_> = block.transactions[1..].iter().map(|t| t.txid()).collect();
        scenario.chain.append(block, &ring).expect("template valid");
        scenario.mempool.purge_after_block(&scenario.chain, &mined);
        println!(
            "round {round}: block {} mined with {} txs; mempool now {}",
            scenario.chain.height(),
            mined.len(),
            scenario.mempool.len()
        );
    }
    println!("mempool_monitor: 5 rounds clean");
}
