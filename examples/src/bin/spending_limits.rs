//! Example 5's denial-constraint gallery: negation and aggregates.
//!
//! Over a small blockchain database (the paper's schema plus a `Trusted`
//! relation) this example checks:
//!
//! * `q2` — every coin Alice sends goes to a *trusted* key (a negated
//!   atom; not monotone, handled by the tractable/oracle path);
//! * `q3` — Alice spends at most five bitcoins in total (`sum` aggregate);
//! * `q4` — Alice pays Bob in at most ten distinct transactions (`cntd`).
//!
//! Run with: `cargo run -p bcdb-examples --bin spending_limits`

use bcdb_core::{Algorithm, BlockchainDb, DcSatOptions, Solver};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, Catalog, ConstraintSet, Fd, Ind, RelationSchema, ValueType};

const BTC: i64 = 100_000_000;

/// The paper's schema extended with Trusted(pk).
fn catalog_with_trusted() -> (Catalog, ConstraintSet) {
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "TxOut",
            [
                ("txId", ValueType::Text),
                ("ser", ValueType::Int),
                ("pk", ValueType::Text),
                ("amount", ValueType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(
        RelationSchema::new(
            "TxIn",
            [
                ("prevTxId", ValueType::Text),
                ("prevSer", ValueType::Int),
                ("pk", ValueType::Text),
                ("amount", ValueType::Int),
                ("newTxId", ValueType::Text),
                ("sig", ValueType::Text),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(RelationSchema::new("Trusted", [("pk", ValueType::Text)]).unwrap())
        .unwrap();
    let mut cs = ConstraintSet::new();
    cs.add_fd(Fd::named_key(&cat, "TxOut", &["txId", "ser"]).unwrap());
    cs.add_fd(Fd::named_key(&cat, "TxIn", &["prevTxId", "prevSer"]).unwrap());
    cs.add_ind(
        Ind::named(
            &cat,
            "TxIn",
            &["prevTxId", "prevSer", "pk", "amount"],
            "TxOut",
            &["txId", "ser", "pk", "amount"],
        )
        .unwrap(),
    );
    cs.add_ind(Ind::named(&cat, "TxIn", &["newTxId"], "TxOut", &["txId"]).unwrap());
    (cat, cs)
}

fn main() {
    let (cat, cs) = catalog_with_trusted();
    let txout = cat.resolve("TxOut").unwrap();
    let txin = cat.resolve("TxIn").unwrap();
    let trusted = cat.resolve("Trusted").unwrap();
    let mut db = BlockchainDb::new(cat, cs);

    // Alice owns three coins of 2 BTC each (outputs of transactions c1-c3).
    for (tx, ser) in [("c1", 1i64), ("c2", 1), ("c3", 1)] {
        db.insert_current(txout, tuple![tx, ser, "AlcPK", 2 * BTC])
            .unwrap();
    }
    // Bob and Carol are trusted; Mallory is not listed.
    db.insert_current(trusted, tuple!["BobPK"]).unwrap();
    db.insert_current(trusted, tuple!["CarolPK"]).unwrap();
    db.check_current_state().unwrap();

    // Pending: Alice pays Bob 2 BTC (t1), Carol 2 BTC (t2).
    db.add_transaction(
        "t1",
        [
            (txin, tuple!["c1", 1i64, "AlcPK", 2 * BTC, "t1", "AlcSig"]),
            (txout, tuple!["t1", 1i64, "BobPK", 2 * BTC]),
        ],
    )
    .unwrap();
    db.add_transaction(
        "t2",
        [
            (txin, tuple!["c2", 1i64, "AlcPK", 2 * BTC, "t2", "AlcSig"]),
            (txout, tuple!["t2", 1i64, "CarolPK", 2 * BTC]),
        ],
    )
    .unwrap();

    // q2: some coin of Alice's reaches an untrusted key. Both payees are
    // trusted, so the constraint is satisfied.
    let q2 = parse_denial_constraint(
        "q() <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), TxOut(ntx, s, pk, a2), !Trusted(pk)",
        db.database().catalog(),
    )
    .unwrap();
    // One solver session owns the database from here on: drafts are added
    // through it so the precomputed structures update incrementally.
    let mut solver = Solver::builder(db).build();
    let out = solver.check_ungoverned(&q2).unwrap();
    println!(
        "q2 (only trusted payees):  satisfied = {} via {}",
        out.satisfied, out.stats.algorithm
    );
    assert!(out.satisfied);

    // q3: Alice spends more than 5 BTC in total. Two pending spends of
    // 2 BTC each stay at 4 — satisfied.
    let q3 = parse_denial_constraint(
        &format!(
            "[q(sum(a)) <- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')] > {}",
            5 * BTC
        ),
        solver.db().database().catalog(),
    )
    .unwrap();
    let out = solver.check_ungoverned(&q3).unwrap();
    println!(
        "q3 (spend <= 5 BTC):       satisfied = {} via {}",
        out.satisfied, out.stats.algorithm
    );
    assert!(out.satisfied);

    // Now Alice drafts a third payment, to Mallory, from her last coin.
    // Dry-run before broadcasting (the paper's recommended workflow).
    solver
        .add_transaction(
            "t3-draft",
            [
                (txin, tuple!["c3", 1i64, "AlcPK", 2 * BTC, "t3", "AlcSig"]),
                (txout, tuple!["t3", 1i64, "MalloryPK", 2 * BTC]),
            ],
        )
        .unwrap();

    let out = solver.check_ungoverned(&q2).unwrap();
    println!(
        "q2 after drafting t3:      satisfied = {} (Mallory is untrusted!)",
        out.satisfied
    );
    assert!(!out.satisfied);
    let out = solver.check_ungoverned(&q3).unwrap();
    println!(
        "q3 after drafting t3:      satisfied = {} (6 BTC > 5 BTC now possible)",
        out.satisfied
    );
    assert!(!out.satisfied);

    // q4: at most ten distinct transactions pay Bob — comfortably
    // satisfied; checked with the forced Naive algorithm too.
    let q4 = parse_denial_constraint(
        "[q(cntd(ntx)) <- TxIn(pt, ps, 'AlcPK', a, ntx, 'AlcSig'), TxOut(ntx, s, 'BobPK', a2)] > 10",
        solver.db().database().catalog(),
    )
    .unwrap();
    let auto = solver.check_ungoverned(&q4).unwrap();
    solver.set_options(DcSatOptions::default().with_algorithm(Algorithm::Naive));
    let naive = solver.check_ungoverned(&q4).unwrap();
    println!(
        "q4 (<= 10 txs pay Bob):    satisfied = {} (auto via {}, naive agrees: {})",
        auto.satisfied,
        auto.stats.algorithm,
        naive.satisfied == auto.satisfied
    );
    assert!(auto.satisfied && naive.satisfied);
    println!("spending_limits: done — the t3 draft should not be broadcast");
}
