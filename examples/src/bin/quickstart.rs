//! Quickstart: the paper's running example (Figure 2), end to end.
//!
//! Builds the exact blockchain database of the paper — the simplified
//! Bitcoin schema of Example 1, the current state and five pending
//! transactions of Figure 2 — then:
//!
//! 1. enumerates `Poss(D)` and checks it matches Example 3's nine worlds;
//! 2. runs the denial constraint `qs() ← TxOut(t, s, 'U8Pk', a)` of
//!    Example 6 with `NaiveDCSat` and `OptDCSat`.
//!
//! Run with: `cargo run -p bcdb-examples --bin quickstart`

use bcdb_chain::bitcoin_catalog;
use bcdb_core::{possible_worlds, Algorithm, BlockchainDb, DcSatOptions, Solver};
use bcdb_query::parse_denial_constraint;
use bcdb_storage::{tuple, RelationId, Tuple};

/// 1 bitcoin in satoshis (Figure 2's fractional amounts stay exact).
const BTC: i64 = 100_000_000;

fn btc(x: f64) -> i64 {
    (x * BTC as f64).round() as i64
}

fn txout(txid: &str, ser: i64, pk: &str, amount: i64) -> Tuple {
    tuple![txid, ser, pk, amount]
}

#[allow(clippy::too_many_arguments)]
fn txin(prev: &str, pser: i64, pk: &str, amount: i64, new: &str, sig: &str) -> Tuple {
    tuple![prev, pser, pk, amount, new, sig]
}

fn build_figure2() -> (BlockchainDb, RelationId, RelationId) {
    let (catalog, constraints) = bitcoin_catalog();
    let out = catalog.resolve("TxOut").unwrap();
    let inp = catalog.resolve("TxIn").unwrap();
    let mut db = BlockchainDb::new(catalog, constraints);

    // Current state R (Figure 2, rows labelled R).
    for t in [
        txout("1", 1, "U1Pk", btc(1.0)),
        txout("2", 1, "U1Pk", btc(1.0)),
        txout("2", 2, "U2Pk", btc(4.0)),
        txout("3", 1, "U3Pk", btc(1.0)),
        txout("3", 2, "U4Pk", btc(0.5)),
        txout("3", 3, "U1Pk", btc(0.5)),
    ] {
        db.insert_current(out, t).unwrap();
    }
    for t in [
        txin("1", 1, "U1Pk", btc(1.0), "3", "U1Sig"),
        txin("2", 1, "U1Pk", btc(1.0), "3", "U1Sig"),
    ] {
        db.insert_current(inp, t).unwrap();
    }
    db.check_current_state()
        .expect("R |= I, as the paper requires");

    // Pending transactions T1..T5 (dotted boxes in Figure 1).
    db.add_transaction(
        "T1",
        [
            (inp, txin("2", 2, "U2Pk", btc(4.0), "4", "U2Sig")),
            (out, txout("4", 1, "U5Pk", btc(1.0))),
            (out, txout("4", 2, "U2Pk", btc(3.0))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T2",
        [
            (inp, txin("4", 2, "U2Pk", btc(3.0), "5", "U2Sig")),
            (out, txout("5", 1, "U4Pk", btc(3.0))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T3",
        [
            (inp, txin("3", 3, "U1Pk", btc(0.5), "6", "U1Sig")),
            (out, txout("6", 1, "U4Pk", btc(0.5))),
        ],
    )
    .unwrap();
    db.add_transaction(
        "T4",
        [
            (inp, txin("6", 1, "U4Pk", btc(0.5), "7", "U4Sig")),
            (inp, txin("5", 1, "U4Pk", btc(3.0), "7", "U4Sig")),
            (out, txout("7", 1, "U7Pk", btc(2.5))),
            (out, txout("7", 2, "U8Pk", btc(1.0))),
        ],
    )
    .unwrap();
    // T5 double-spends T1's input (2,2) — the reissued transaction.
    db.add_transaction(
        "T5",
        [
            (inp, txin("2", 2, "U2Pk", btc(4.0), "8", "U2Sig")),
            (out, txout("8", 1, "U7Pk", btc(4.0))),
        ],
    )
    .unwrap();
    (db, out, inp)
}

fn main() {
    let (db, _, _) = build_figure2();
    let mut solver = Solver::builder(db).build();

    // Example 3: Poss(D) has exactly nine worlds (the session already built
    // the steady-state structures the enumeration needs).
    let worlds = possible_worlds(solver.db(), solver.precomputed_ref());
    println!("Poss(D) contains {} possible worlds:", worlds.len());
    for w in &worlds {
        let names: Vec<&str> = w
            .txs()
            .map(|t| solver.db().transaction(t).name.as_str())
            .collect();
        if names.is_empty() {
            println!("  R");
        } else {
            println!("  R ∪ {{{}}}", names.join(", "));
        }
    }
    assert_eq!(worlds.len(), 9, "Example 3 lists nine possible worlds");

    // Example 6 / 8: can U8Pk ever receive bitcoins?
    let qs = parse_denial_constraint("q() <- TxOut(t, s, 'U8Pk', a)", solver.db().database().catalog())
        .unwrap();
    for (label, algorithm) in [
        ("NaiveDCSat", Algorithm::Naive),
        ("OptDCSat", Algorithm::Opt),
    ] {
        solver.set_options(
            DcSatOptions::default()
                .with_algorithm(algorithm)
                .with_precheck(false), // run the full algorithm, as in Example 6
        );
        let outcome = solver.check_ungoverned(&qs).unwrap();
        println!(
            "{label}: qs satisfied = {} (cliques enumerated: {}, worlds evaluated: {})",
            outcome.satisfied, outcome.stats.cliques_enumerated, outcome.stats.worlds_evaluated
        );
        assert!(!outcome.satisfied, "Example 6: qs is NOT satisfied");
        let witness = outcome.witness.unwrap();
        let names: Vec<&str> = witness
            .txs()
            .map(|t| solver.db().transaction(t).name.as_str())
            .collect();
        println!("  witness world: R ∪ {{{}}}", names.join(", "));
    }

    // And a constraint that IS satisfied: U2Pk's four bitcoins are spent
    // by T1 or T5 but never both, so 'two distinct spends of (2,2)' is
    // impossible.
    let no_double = parse_denial_constraint(
        "q() <- TxIn('2', 2, pk, a, n1, g1), TxIn('2', 2, pk2, a2, n2, g2), n1 != n2",
        solver.db().database().catalog(),
    )
    .unwrap();
    solver.set_options(DcSatOptions::default());
    let outcome = solver.check_ungoverned(&no_double).unwrap();
    println!(
        "double-spend constraint satisfied = {} (algorithm: {})",
        outcome.satisfied, outcome.stats.algorithm
    );
    assert!(outcome.satisfied);
    println!("quickstart: all paper-example checks passed");
}
